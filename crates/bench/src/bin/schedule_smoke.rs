//! One-shot timed run of the `validation/schedule-60-projects` workload —
//! the CI pipeline-bench smoke gate (`scripts/ci.sh` fails the build when
//! the wall time exceeds the ratcheted ceiling).
//!
//! Usage: `schedule_smoke [--ceiling-ms N] [--runs N] [--sequential]
//! [--projects N]`
//!
//! Prints one JSON line: `{"bench":"validation/schedule-60-projects",
//! "runs":N,"best_ms":…,"mean_ms":…,"validated":…,"ceiling_ms":…}` and
//! exits non-zero when the best run is slower than the ceiling (the best of
//! N absorbs scheduler noise on shared CI runners).

use std::time::Instant;
use zodiac_cloud::CloudSim;
use zodiac_corpus::CorpusConfig;
use zodiac_mining::{mine, MiningConfig};
use zodiac_model::Program;
use zodiac_validation::{Scheduler, SchedulerConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ceiling_ms: Option<u128> = None;
    let mut runs: usize = 1;
    let mut sequential = false;
    let mut projects: usize = 60;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ceiling-ms" => {
                ceiling_ms = it.next().and_then(|v| v.parse().ok());
            }
            "--runs" => {
                runs = it.next().and_then(|v| v.parse().ok()).unwrap_or(1).max(1);
            }
            "--sequential" => sequential = true,
            "--projects" => {
                projects = it.next().and_then(|v| v.parse().ok()).unwrap_or(60).max(1);
            }
            other => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
        }
    }

    let corpus: Vec<Program> = zodiac_corpus::generate(&CorpusConfig {
        projects,
        noise_rate: 0.02,
        ..Default::default()
    })
    .into_iter()
    .map(|p| p.program)
    .collect();
    let kb = zodiac_kb::azure_kb();
    let sim = CloudSim::new_azure();
    let mining = mine(&corpus, &kb, &MiningConfig::default());

    let mut times = Vec::with_capacity(runs);
    let mut validated = 0usize;
    for _ in 0..runs {
        let checks = mining.checks.clone();
        let cfg = SchedulerConfig {
            wave_parallel: !sequential,
            ..SchedulerConfig::default()
        };
        let start = Instant::now();
        let scheduler = Scheduler::new(&sim, &kb, &corpus, cfg);
        let outcome = scheduler.run(checks);
        times.push(start.elapsed().as_millis());
        validated = outcome.validated.len();
    }
    let best = *times.iter().min().unwrap_or(&0);
    let mean = times.iter().sum::<u128>() / times.len().max(1) as u128;
    println!(
        "{{\"bench\":\"validation/schedule-{projects}-projects\",\"runs\":{},\"best_ms\":{},\"mean_ms\":{},\"validated\":{},\"ceiling_ms\":{}}}",
        runs,
        best,
        mean,
        validated,
        ceiling_ms.map_or("null".to_string(), |c| c.to_string())
    );
    if let Some(ceiling) = ceiling_ms {
        if best > ceiling {
            eprintln!("schedule smoke: best run {best}ms exceeds ceiling {ceiling}ms");
            std::process::exit(1);
        }
    }
}
