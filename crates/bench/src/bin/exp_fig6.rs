//! Figure 6: blast radius of check violations.
//!
//! Deployment failures in *real* (unpruned) infrastructures halt the
//! not-yet-deployed resources and force recreation of everything that
//! depends on the fix target. We deploy a corpus of full-size projects with
//! injected violations and measure, per ground-truth-rule category, how many
//! resource types land in the halting and rollback radii.
//!
//! Paper: worst-case ≈7 types in the rollback radius and ≈6 halted;
//! intra-resource checks have the smallest rollback radius; inter-resource
//! (w/o aggregation) checks the largest.

use serde::Serialize;
use std::collections::BTreeMap;
use zodiac_bench::{print_table, ExpObs};
use zodiac_cloud::{CheckCategory, CloudSim, DeployOutcome};
use zodiac_corpus::CorpusConfig;

#[derive(Serialize, Default, Clone, Copy)]
struct Radius {
    cases: usize,
    avg_halting: f64,
    avg_rollback: f64,
    max_halting: usize,
    max_rollback: usize,
}

fn label(cat: CheckCategory) -> &'static str {
    match cat {
        CheckCategory::IntraResource => "intra-resource",
        CheckCategory::InterResource => "inter w/o agg",
        CheckCategory::InterAgg => "inter w/ agg",
        CheckCategory::Interpolation => "interpolation",
    }
}

fn main() {
    let exp = ExpObs::from_args();
    let sim = CloudSim::new_azure();
    let rule_category: BTreeMap<String, CheckCategory> = sim
        .rules()
        .iter()
        .map(|r| (r.id.clone(), r.category))
        .collect();

    // Full-size clean projects; each noise kind is injected explicitly so
    // every violation class contributes to the measurement.
    let corpus = zodiac_corpus::generate_obs(
        &CorpusConfig {
            projects: 250,
            seed: 0xB1A57,
            noise_rate: 0.0,
            min_motifs: 2,
            max_motifs: 4,
            ..Default::default()
        },
        &exp.obs,
    );
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let mut cases: Vec<zodiac_model::Program> = Vec::new();
    for kind in zodiac_corpus::NOISE_KINDS {
        let mut applied = 0;
        for project in &corpus {
            if applied >= 40 {
                break;
            }
            let mut program = project.program.clone();
            if zodiac_corpus::inject_kind(&mut rng, &mut program, kind) {
                cases.push(program);
                applied += 1;
            }
        }
    }
    println!("violating deployments: {}", cases.len());

    let mut per_cat: BTreeMap<CheckCategory, Radius> = BTreeMap::new();
    let mut overall = Radius::default();
    for program in &cases {
        let report = sim.deploy(program);
        let DeployOutcome::Failure { rule_id, .. } = &report.outcome else {
            continue;
        };
        let Some(&cat) = rule_category.get(rule_id) else {
            continue;
        };
        let halting = report.halting_radius();
        let rollback = report.rollback_radius();
        for r in [per_cat.entry(cat).or_default(), &mut overall] {
            r.cases += 1;
            r.avg_halting += halting as f64;
            r.avg_rollback += rollback as f64;
            r.max_halting = r.max_halting.max(halting);
            r.max_rollback = r.max_rollback.max(rollback);
        }
    }
    let finalize = |r: &mut Radius| {
        if r.cases > 0 {
            r.avg_halting /= r.cases as f64;
            r.avg_rollback /= r.cases as f64;
        }
    };
    for r in per_cat.values_mut() {
        finalize(r);
    }
    finalize(&mut overall);

    let mut rows: Vec<Vec<String>> = per_cat
        .iter()
        .map(|(c, r)| {
            vec![
                label(*c).to_string(),
                r.cases.to_string(),
                format!("{:.2}", r.avg_halting),
                format!("{:.2}", r.avg_rollback),
                r.max_halting.to_string(),
                r.max_rollback.to_string(),
            ]
        })
        .collect();
    rows.push(vec![
        "ALL".into(),
        overall.cases.to_string(),
        format!("{:.2}", overall.avg_halting),
        format!("{:.2}", overall.avg_rollback),
        overall.max_halting.to_string(),
        overall.max_rollback.to_string(),
    ]);
    print_table(
        "Figure 6 — blast radius by violated-rule category (resource types)",
        &[
            "category",
            "failures",
            "avg halting",
            "avg rollback",
            "max halting",
            "max rollback",
        ],
        &rows,
    );
    println!("\npaper worst case: rollback ≈7 types, halting ≈6 types");
    exp.write_json_with_metrics(
        "exp_fig6",
        &per_cat
            .iter()
            .map(|(c, r)| (label(*c).to_string(), *r))
            .collect::<BTreeMap<_, _>>(),
    );
}
