//! §5.1 headline numbers: hypothesized → filtered → validated check funnel,
//! plus the §5.6 false-positive accounting.
//!
//! Paper: ~9,800 hypothesized; ~5,600 filtered out statistically; 510
//! validated (indistinguishable groups counted as one); 539 initially
//! output, 29 (5.4%) identified as false positives — 17 (3.1%) by the
//! automated counterexample pass.
//!
//! Supports `--trace-out FILE` to stream `zodiac-obs` stage spans and the
//! final metrics snapshot as JSON lines (used by the CI smoke job).

use serde::Serialize;
use zodiac_bench::{print_table, run_eval_pipeline_obs, ExpObs};

#[derive(Serialize)]
struct Headline {
    corpus_projects: usize,
    hypothesized: usize,
    removed_by_confidence: usize,
    removed_by_lift: usize,
    llm_found: usize,
    llm_removed: usize,
    candidates_to_validation: usize,
    validated_raw: usize,
    validated_groups_as_one: usize,
    falsified_in_validation: usize,
    demoted_by_counterexamples: usize,
    final_checks: usize,
    counterexample_fp_rate_pct: f64,
    deploy_requests: u64,
    deploy_backend: u64,
    deploy_cache_hits: u64,
    deploy_cache_hit_rate_pct: f64,
    deploy_retries: u64,
}

fn main() {
    let t0 = std::time::Instant::now();
    let exp = ExpObs::from_args();
    let (result, _corpus) = run_eval_pipeline_obs(&exp.obs);
    let validated_raw = result.validation.validated.len();
    let tel = result.deploy_metrics.unwrap_or_default();
    let deploy_requests = tel.counter("deploy.requests");
    let deploy_backend = tel.counter("deploy.backend_deploys");
    let deploy_cache_hits = tel.counter("deploy.cache_hits");
    let headline = Headline {
        corpus_projects: result.corpus_projects,
        hypothesized: result.mining.hypothesized,
        removed_by_confidence: result.mining.removed_by_confidence,
        removed_by_lift: result.mining.removed_by_lift,
        llm_found: result.mining.llm_found,
        llm_removed: result.mining.llm_removed,
        candidates_to_validation: result.mining.checks.len(),
        validated_raw,
        validated_groups_as_one: result.validation.validated_groups_as_one(),
        falsified_in_validation: result.validation.false_positives.len(),
        demoted_by_counterexamples: result.demoted.len(),
        final_checks: result.final_checks.len(),
        counterexample_fp_rate_pct: if validated_raw > 0 {
            100.0 * result.demoted.len() as f64 / validated_raw as f64
        } else {
            0.0
        },
        deploy_requests,
        deploy_backend,
        deploy_cache_hits,
        deploy_cache_hit_rate_pct: if deploy_requests > 0 {
            100.0 * deploy_cache_hits as f64 / deploy_requests as f64
        } else {
            0.0
        },
        deploy_retries: tel.counter("deploy.retries"),
    };

    print_table(
        "Headline (§5.1 / §5.6)",
        &["stage", "count"],
        &[
            vec![
                "corpus projects".into(),
                headline.corpus_projects.to_string(),
            ],
            vec![
                "hypothesized checks".into(),
                headline.hypothesized.to_string(),
            ],
            vec![
                "removed by confidence".into(),
                headline.removed_by_confidence.to_string(),
            ],
            vec![
                "removed by lift".into(),
                headline.removed_by_lift.to_string(),
            ],
            vec![
                "oracle-interpolated (llm-found)".into(),
                headline.llm_found.to_string(),
            ],
            vec![
                "oracle-rejected (llm-remove)".into(),
                headline.llm_removed.to_string(),
            ],
            vec![
                "candidates to validation".into(),
                headline.candidates_to_validation.to_string(),
            ],
            vec!["validated (raw)".into(), headline.validated_raw.to_string()],
            vec![
                "validated (groups as one)".into(),
                headline.validated_groups_as_one.to_string(),
            ],
            vec![
                "falsified during validation".into(),
                headline.falsified_in_validation.to_string(),
            ],
            vec![
                "demoted by counterexamples".into(),
                format!(
                    "{} ({:.1}%)",
                    headline.demoted_by_counterexamples, headline.counterexample_fp_rate_pct
                ),
            ],
            vec!["final check set".into(), headline.final_checks.to_string()],
        ],
    );
    println!(
        "\ndeploy engine: {} requests, {} backend deploys, {} cache hits ({:.1}% hit rate), {} retries",
        headline.deploy_requests,
        headline.deploy_backend,
        headline.deploy_cache_hits,
        headline.deploy_cache_hit_rate_pct,
        headline.deploy_retries,
    );
    println!("total wall time: {:?}", t0.elapsed());
    exp.write_json_with_metrics("exp_headline", &headline);
}
