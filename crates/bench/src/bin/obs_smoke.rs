//! Telemetry-overhead smoke gate: the serving-boundary instrumentation
//! (request span + `op.*` rolling observations + exemplar offer) must stay
//! within a few percent of the unmetered dispatch path on the daemon's
//! memoized scan workload — the same 40-request batch recorded in
//! `BENCH_daemon.json`.
//!
//! Usage: `obs_smoke [--rounds N] [--requests N] [--max-overhead-pct P]
//! [--ceiling-ms N]`
//!
//! Measures metered (`Daemon::handle`) and unmetered
//! (`Daemon::handle_unmetered`) batches *interleaved in one process*, so
//! machine noise cancels instead of masquerading as overhead — a
//! wall-clock diff against a baseline recorded on a different (or merely
//! busier) run cannot distinguish a 5% regression from scheduler jitter.
//! Prints one JSON line and exits non-zero when best-of-N metered exceeds
//! best-of-N unmetered by more than the allowed overhead, or when the
//! metered batch blows the absolute ceiling (a backstop against both
//! paths regressing together, sized with the same generous noise headroom
//! as the pipeline gate).

use std::time::Instant;
use zodiac_daemon::protocol::Request;
use zodiac_daemon::{Daemon, DaemonConfig};
use zodiac_obs::Obs;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut rounds: usize = 30;
    let mut requests: usize = 40;
    let mut max_overhead_pct: f64 = 5.0;
    let mut ceiling_ms: Option<f64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--rounds" => rounds = it.next().and_then(|v| v.parse().ok()).unwrap_or(30).max(1),
            "--requests" => requests = it.next().and_then(|v| v.parse().ok()).unwrap_or(40).max(1),
            "--max-overhead-pct" => {
                max_overhead_pct = it.next().and_then(|v| v.parse().ok()).unwrap_or(5.0)
            }
            "--ceiling-ms" => ceiling_ms = it.next().and_then(|v| v.parse().ok()),
            other => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
        }
    }

    // The BENCH_daemon.json workload: generated corpus projects scanned
    // against the daemon's own mined check set, caches warmed once.
    let sources: Vec<String> = zodiac_corpus::generate(&zodiac_corpus::CorpusConfig {
        projects: requests,
        noise_rate: 0.05,
        ..Default::default()
    })
    .iter()
    .map(|p| p.to_hcl())
    .collect();
    let dir = std::env::temp_dir().join(format!("zodiacd-obs-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (daemon, _) = Daemon::open(&dir, DaemonConfig::default(), Obs::null()).unwrap();
    let kb = zodiac_kb::azure_kb();
    let programs: Vec<_> = sources
        .iter()
        .map(|s| zodiac_hcl::compile(s).unwrap())
        .collect();
    let report = zodiac_mining::mine(&programs, &kb, &DaemonConfig::default().mining);
    let checks: Vec<_> = report.checks.into_iter().map(|c| c.check).collect();
    assert!(!checks.is_empty(), "obs smoke corpus mined no checks");
    daemon.import_checks(&checks).unwrap();

    // The same LDJSON lines `BENCH_daemon.json`'s memoized bench replays:
    // the metered side is the production `handle_line` (parse → metered
    // dispatch → render); the unmetered side repeats parse and render so
    // the only difference between the two timings is the boundary
    // telemetry itself.
    let lines: Vec<String> = sources
        .iter()
        .map(|s| {
            format!(
                "{{\"op\":\"scan\",\"source\":{}}}",
                serde_json::to_string(&serde::Value::String(s.clone())).unwrap()
            )
        })
        .collect();
    let unmetered_line = |line: &str| match Request::parse(line) {
        Ok(req) => daemon.handle_unmetered(req).render(),
        Err(e) => zodiac_daemon::protocol::Response::err(&e).render(),
    };

    // Warm the compile memo and verdict cache through both entry points.
    for line in &lines {
        daemon.handle_line(line);
        unmetered_line(line);
    }

    // One sample = one untimed batch (retrains branch predictors after
    // switching paths — the unmetered path is a strict subset of the
    // metered one, so a fixed order would flatter it) then `REPS` timed
    // batches, long enough that a timer tick or a context switch does not
    // dominate. Rounds alternate which path goes first for the same
    // reason.
    const REPS: u64 = 5;
    let run_batch = |metered: bool| {
        for line in &lines {
            if metered {
                std::hint::black_box(daemon.handle_line(line));
            } else {
                std::hint::black_box(unmetered_line(line));
            }
        }
    };
    let sample = |metered: bool| {
        run_batch(metered);
        let t = Instant::now();
        for _ in 0..REPS {
            run_batch(metered);
        }
        t.elapsed().as_nanos() as u64 / REPS
    };
    let mut metered = Vec::with_capacity(rounds);
    let mut unmetered = Vec::with_capacity(rounds);
    for round in 0..rounds {
        if round % 2 == 0 {
            let m = sample(true);
            let u = sample(false);
            metered.push(m);
            unmetered.push(u);
        } else {
            let u = sample(false);
            let m = sample(true);
            metered.push(m);
            unmetered.push(u);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);

    let best = |v: &[u64]| *v.iter().min().unwrap_or(&0) as f64 / 1e6;
    let metered_ms = best(&metered);
    let unmetered_ms = best(&unmetered);
    // Each round times the two paths back to back, so the ratio within a
    // round is immune to the slow frequency/load drift that dominates
    // wall-clock variance; the median across rounds then discards the
    // rounds a scheduler preemption landed in.
    let mut ratios: Vec<f64> = metered
        .iter()
        .zip(&unmetered)
        .filter(|&(_, &u)| u > 0)
        .map(|(&m, &u)| m as f64 / u as f64)
        .collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let overhead_pct = if ratios.is_empty() {
        0.0
    } else {
        (ratios[ratios.len() / 2] - 1.0) * 100.0
    };
    println!(
        "{{\"bench\":\"obs/boundary-overhead-{requests}-scans\",\"rounds\":{rounds},\
         \"metered_best_ms\":{metered_ms:.4},\"unmetered_best_ms\":{unmetered_ms:.4},\
         \"overhead_pct\":{overhead_pct:.2},\"max_overhead_pct\":{max_overhead_pct},\
         \"ceiling_ms\":{}}}",
        ceiling_ms.map_or("null".to_string(), |c| format!("{c}")),
    );
    if overhead_pct > max_overhead_pct {
        eprintln!(
            "obs smoke: serving-boundary telemetry costs {overhead_pct:.2}% \
             (allowed {max_overhead_pct}%)"
        );
        std::process::exit(1);
    }
    if let Some(ceiling) = ceiling_ms {
        if metered_ms > ceiling {
            eprintln!("obs smoke: metered batch {metered_ms:.3}ms exceeds ceiling {ceiling}ms");
            std::process::exit(1);
        }
    }
}
