//! Repair funnel on the headline corpus: scan the 600-project evaluation
//! corpus with its validated check set, repair every flagged program
//! through the layered oracle stack, and report the funnel — violations
//! found, repairs proposed, verdicts per layer, rejections per layer,
//! accepted repairs — the table recorded in `EXPERIMENTS.md`.

use serde::Serialize;
use zodiac::scanner::scan_program;
use zodiac_bench::{print_table, run_eval_pipeline_obs, ExpObs};
use zodiac_cloud::CloudSim;
use zodiac_deployer::{DeployEngine, DeployerConfig};
use zodiac_obs::Obs;
use zodiac_repair::{repair_program, OracleLayer, RepairConfig, RepairOutcome};

#[derive(Default, Serialize)]
struct Funnel {
    flagged_programs: usize,
    violations_found: usize,
    repairs_proposed: usize,
    verdicts_l1: usize,
    verdicts_l2: usize,
    verdicts_l3: usize,
    rejected_l1: usize,
    rejected_l2: usize,
    rejected_l3: usize,
    accepted: usize,
    accepted_edits: usize,
    unrepairable: usize,
}

fn main() {
    let exp = ExpObs::from_args();
    let (result, corpus) = run_eval_pipeline_obs(&exp.obs);
    let checks: Vec<_> = result
        .final_checks
        .iter()
        .map(|v| v.mined.check.clone())
        .collect();
    let kb = zodiac_kb::azure_kb();
    let engine = DeployEngine::with_obs(
        CloudSim::new_azure(),
        DeployerConfig {
            workers: 1,
            ..Default::default()
        },
        exp.obs.clone(),
    );
    let cfg = RepairConfig::default();

    let mut funnel = Funnel::default();
    for program in &corpus {
        if scan_program(program, &checks, &kb).is_empty() {
            continue;
        }
        funnel.flagged_programs += 1;
        let report = repair_program(program, &checks, &kb, &engine, &cfg, &Obs::null());
        funnel.violations_found += report.violations;
        funnel.repairs_proposed += report.attempts.len();
        for attempt in &report.attempts {
            for verdict in &attempt.layers {
                match verdict.layer {
                    OracleLayer::DeploySucceeds => funnel.verdicts_l1 += 1,
                    OracleLayer::ChecksPass => funnel.verdicts_l2 += 1,
                    OracleLayer::IntentPreserved => funnel.verdicts_l3 += 1,
                }
            }
            if let Some(rejected) = attempt.rejected_at() {
                match rejected.layer {
                    OracleLayer::DeploySucceeds => funnel.rejected_l1 += 1,
                    OracleLayer::ChecksPass => funnel.rejected_l2 += 1,
                    OracleLayer::IntentPreserved => funnel.rejected_l3 += 1,
                }
            }
        }
        match &report.outcome {
            RepairOutcome::Accepted { edits, .. } => {
                funnel.accepted += 1;
                funnel.accepted_edits += edits.len();
            }
            RepairOutcome::Unrepairable { .. } => funnel.unrepairable += 1,
            RepairOutcome::Clean | RepairOutcome::Exhausted => {}
        }
    }

    let rows: Vec<Vec<String>> = [
        ("programs flagged by the scanner", funnel.flagged_programs),
        ("violations found", funnel.violations_found),
        ("repairs proposed", funnel.repairs_proposed),
        ("L1 deploy-succeeds verdicts", funnel.verdicts_l1),
        ("L2 checks-pass verdicts", funnel.verdicts_l2),
        ("L3 intent-preserved verdicts", funnel.verdicts_l3),
        ("rejected at L1", funnel.rejected_l1),
        ("rejected at L2", funnel.rejected_l2),
        ("rejected at L3", funnel.rejected_l3),
        ("accepted", funnel.accepted),
        ("accepted edits (total)", funnel.accepted_edits),
        ("unrepairable", funnel.unrepairable),
    ]
    .iter()
    .map(|(label, n)| vec![label.to_string(), n.to_string()])
    .collect();
    print_table(
        "Repair funnel (0xC0FFEE/600, validated check set)",
        &["stage", "count"],
        &rows,
    );

    exp.write_json_with_metrics("exp_repair", &funnel);
}
