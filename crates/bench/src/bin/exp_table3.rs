//! Table 3: at which deployment phase do check violations surface?
//!
//! Paper shares: plugin checks 9.00%, pre-deploy sync 5.84%, sending
//! request 74.94%, polling request 7.79%, post-deploy sync 2.43%.

use serde::Serialize;
use std::collections::BTreeMap;
use zodiac_bench::{negative_suite, print_table, run_eval_pipeline_obs, ExpObs};
use zodiac_cloud::{CloudSim, DeployOutcome, Phase};

#[derive(Serialize)]
struct Record {
    total_failures: usize,
    shares_pct: BTreeMap<String, f64>,
}

fn main() {
    let exp = ExpObs::from_args();
    let (result, corpus) = run_eval_pipeline_obs(&exp.obs);
    let kb = zodiac_kb::azure_kb();
    let sim = CloudSim::new_azure();

    // Failure phases come from (a) each validated check's own negative test,
    // and (b) a wider sampled negative suite, mirroring the paper's "Zodiac
    // test cases".
    let mut phase_counts: BTreeMap<Phase, usize> = BTreeMap::new();
    for v in &result.validation.validated {
        if let DeployOutcome::Failure { phase, .. } = &v.negative_report.outcome {
            *phase_counts.entry(*phase).or_default() += 1;
        }
    }
    let suite = negative_suite(
        &result
            .final_checks
            .iter()
            .map(|v| v.mined.clone())
            .collect::<Vec<_>>(),
        &corpus,
        &kb,
        500,
    );
    println!("negative suite size: {}", suite.len());
    for (_, program) in &suite {
        if let DeployOutcome::Failure { phase, .. } = &sim.deploy(program).outcome {
            *phase_counts.entry(*phase).or_default() += 1;
        }
    }

    let total: usize = phase_counts.values().sum();
    let mut rows = Vec::new();
    let mut shares = BTreeMap::new();
    for phase in [
        Phase::PluginCheck,
        Phase::PreDeploySync,
        Phase::SendingRequest,
        Phase::PollingRequest,
        Phase::PostDeploySync,
    ] {
        let n = phase_counts.get(&phase).copied().unwrap_or(0);
        let pct = if total > 0 {
            100.0 * n as f64 / total as f64
        } else {
            0.0
        };
        shares.insert(phase.to_string(), pct);
        let paper = match phase {
            Phase::PluginCheck => "9.00%",
            Phase::PreDeploySync => "5.84%",
            Phase::SendingRequest => "74.94%",
            Phase::PollingRequest => "7.79%",
            Phase::PostDeploySync => "2.43%",
        };
        rows.push(vec![
            phase.to_string(),
            n.to_string(),
            format!("{pct:.2}%"),
            paper.to_string(),
        ]);
    }
    print_table(
        "Table 3 — failure phases of violating deployments",
        &[
            "error phase",
            "failures",
            "share (measured)",
            "share (paper)",
        ],
        &rows,
    );
    exp.write_json_with_metrics(
        "exp_table3",
        &Record {
            total_failures: total,
            shares_pct: shares,
        },
    );
}
