//! Figure 7: mining-phase effectiveness.
//!
//! (a) The knowledge base constrains intra-resource template instantiation:
//!     without it, candidate counts per resource type grow by orders of
//!     magnitude (paper: >70,000 vs ~35× fewer with the KB).
//! (b) The statistical-filtering funnel: confidence removes 38.3% of mined
//!     checks, lift another 16.2%; interpolation generates 800+ queries of
//!     which ~40% are supported (llm-found) and the rest discarded.

use serde::Serialize;
use std::collections::BTreeMap;
use zodiac_bench::{eval_config, print_table, ExpObs};
use zodiac_mining::{mine, mine_obs, MiningConfig};
use zodiac_model::{Program, Symbol};

#[derive(Serialize)]
struct Record {
    per_type: Vec<(String, usize, usize, usize)>,
    total_with_kb: usize,
    total_without_kb: usize,
    funnel: BTreeMap<String, usize>,
    confidence_removed_pct: f64,
    lift_removed_pct: f64,
}

fn main() {
    let exp = ExpObs::from_args();
    let cfg = eval_config();
    let corpus: Vec<Program> = zodiac_corpus::generate_obs(&cfg.corpus, &exp.obs)
        .into_iter()
        .map(|p| p.program)
        .collect();
    let kb = zodiac_kb::azure_kb();

    let with_kb = mine_obs(&corpus, &kb, &MiningConfig::default(), &exp.obs);
    let without_kb = mine(
        &corpus,
        &kb,
        &MiningConfig {
            use_kb: false,
            ..Default::default()
        },
    );

    // ---- (a) per-resource-type intra candidates, w/ and w/o KB ----------
    let mut types: Vec<Symbol> = with_kb
        .intra_candidates_per_type
        .keys()
        .chain(without_kb.intra_candidates_per_type.keys())
        .copied()
        .collect();
    types.sort();
    types.dedup();
    let mut per_type = Vec::new();
    for t in &types {
        let attrs = kb.resource(t).map(|r| r.attrs.len()).unwrap_or(0);
        let w = with_kb
            .intra_candidates_per_type
            .get(t)
            .copied()
            .unwrap_or(0);
        let wo = without_kb
            .intra_candidates_per_type
            .get(t)
            .copied()
            .unwrap_or(0);
        per_type.push((t.to_string(), attrs, w, wo));
    }
    per_type.sort_by_key(|(_, attrs, _, _)| *attrs);
    let rows: Vec<Vec<String>> = per_type
        .iter()
        .map(|(t, attrs, w, wo)| {
            vec![
                zodiac_kb::short_name(t).to_string(),
                attrs.to_string(),
                w.to_string(),
                wo.to_string(),
                if *w > 0 {
                    format!("{:.1}x", *wo as f64 / *w as f64)
                } else {
                    "-".into()
                },
            ]
        })
        .collect();
    print_table(
        "Figure 7a — intra-resource candidates, w/ vs w/o knowledge base",
        &["type", "#attrs", "w/ KB", "w/o KB", "blow-up"],
        &rows,
    );
    let total_w: usize = with_kb.intra_candidates_per_type.values().sum();
    let total_wo: usize = without_kb.intra_candidates_per_type.values().sum();
    println!(
        "\ntotal intra candidates: w/ KB {total_w}, w/o KB {total_wo} ({:.1}x)",
        total_wo as f64 / total_w.max(1) as f64
    );

    // ---- (b) the filtering funnel ----------------------------------------
    let conf_pct =
        100.0 * with_kb.removed_by_confidence as f64 / with_kb.hypothesized.max(1) as f64;
    let lift_pct = 100.0 * with_kb.removed_by_lift as f64 / with_kb.hypothesized.max(1) as f64;
    print_table(
        "Figure 7b — statistical filtering and interpolation funnel",
        &["stage", "count", "share", "paper"],
        &[
            vec![
                "mined (hypothesized)".into(),
                with_kb.hypothesized.to_string(),
                "100%".into(),
                "~9,800".into(),
            ],
            vec![
                "removed by confidence".into(),
                with_kb.removed_by_confidence.to_string(),
                format!("{conf_pct:.1}%"),
                "38.3%".into(),
            ],
            vec![
                "removed by lift".into(),
                with_kb.removed_by_lift.to_string(),
                format!("{lift_pct:.1}%"),
                "16.2%".into(),
            ],
            vec![
                "llm-found (oracle-supported)".into(),
                with_kb.llm_found.to_string(),
                "-".into(),
                "~40% of 800+".into(),
            ],
            vec![
                "llm-removed (oracle-rejected)".into(),
                with_kb.llm_removed.to_string(),
                "-".into(),
                "~60% of 800+".into(),
            ],
            vec![
                "candidates to validation".into(),
                with_kb.checks.len().to_string(),
                "-".into(),
                "~4,200 projects' worth".into(),
            ],
        ],
    );

    let mut funnel = BTreeMap::new();
    funnel.insert("hypothesized".to_string(), with_kb.hypothesized);
    funnel.insert(
        "removed_by_confidence".to_string(),
        with_kb.removed_by_confidence,
    );
    funnel.insert("removed_by_lift".to_string(), with_kb.removed_by_lift);
    funnel.insert("llm_found".to_string(), with_kb.llm_found);
    funnel.insert("llm_removed".to_string(), with_kb.llm_removed);
    funnel.insert("kept".to_string(), with_kb.checks.len());
    exp.write_json_with_metrics(
        "exp_fig7",
        &Record {
            per_type,
            total_with_kb: total_w,
            total_without_kb: total_wo,
            funnel,
            confidence_removed_pct: conf_pct,
            lift_removed_pct: lift_pct,
        },
    );
}
