//! One-shot timed mining run at corpus scale — the CI `scale-smoke` gate
//! and the generator behind `BENCH_mining_scale.json`.
//!
//! Usage: `scale_smoke --projects N [--shards K|auto] [--stream]
//! [--seed S] [--floor PPS] [--quiet]`
//!
//! Generates (or streams) an `N`-project corpus and runs the full mining
//! phase — observation, template instantiation, statistical filtering,
//! oracle interpolation — printing one JSON line:
//!
//! ```text
//! {"bench":"mining/scale","projects":N,"shards":K,"mode":"stream",
//!  "wall_ms":…,"pps":…,"checks":…,"check_set_hash":"…","cores":…}
//! ```
//!
//! The wall clock covers corpus generation + mining in both modes, so
//! batch and streaming numbers are directly comparable (streaming
//! generates inside the mine; batch pays the same generation cost up
//! front). `check_set_hash` is a stable FNV-1a over the rendered check
//! set including float bit patterns — two runs that print different
//! hashes mined different checks, which is how CI diffs a sharded run
//! against a 1-shard run without storing either set. `--floor` exits
//! non-zero when throughput falls below a projects/sec floor (the
//! ratchet recorded in `BENCH_mining_scale.json`).

use std::time::Instant;
use zodiac_corpus::{CorpusConfig, ProjectStream};
use zodiac_mining::{
    mine_sharded, mine_streaming, MinedCheck, MiningConfig, MiningReport, ShardConfig,
};
use zodiac_model::Program;

/// FNV-1a over the canonical check-set rendering: stable across runs and
/// processes (no DefaultHasher seed dependence).
fn check_set_hash(checks: &[MinedCheck]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |bytes: &[u8]| {
        for b in bytes {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    for c in checks {
        eat(c.check.to_string().as_bytes());
        eat(c.family.as_bytes());
        eat(&(c.support as u64).to_le_bytes());
        eat(&c.confidence.to_bits().to_le_bytes());
        eat(&c.lift.map_or(0, f64::to_bits).to_le_bytes());
        eat(b"\n");
    }
    h
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut projects: usize = 600;
    let mut shards: usize = 1;
    let mut stream = false;
    let mut seed: u64 = 0xC0FFEE;
    let mut floor: Option<f64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--projects" => {
                projects = it.next().and_then(|v| v.parse().ok()).unwrap_or(600).max(1);
            }
            "--shards" => {
                shards = match it.next().map(String::as_str) {
                    Some("auto") => zodiac_mining::available_shards(),
                    Some(v) => v.parse().unwrap_or(1),
                    None => 1,
                }
                .max(1);
            }
            "--stream" => stream = true,
            "--seed" => {
                seed = it.next().and_then(|v| v.parse().ok()).unwrap_or(0xC0FFEE);
            }
            "--floor" => {
                floor = it.next().and_then(|v| v.parse().ok());
            }
            other => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
        }
    }

    let corpus_cfg = CorpusConfig {
        seed,
        projects,
        noise_rate: 0.02,
        rare_option_rate: 0.004,
        ..Default::default()
    };
    let kb = zodiac_kb::azure_kb();
    let mining_cfg = MiningConfig::default();
    let shard_cfg = ShardConfig::with_shards(shards);

    let start = Instant::now();
    let report: MiningReport = if stream {
        let source = ProjectStream::new(&corpus_cfg).map(|p| p.program);
        let (report, observed) = mine_streaming(source, &kb, &mining_cfg, &shard_cfg);
        assert_eq!(observed, projects, "stream lost projects");
        report
    } else {
        let programs: Vec<Program> = zodiac_corpus::generate(&corpus_cfg)
            .into_iter()
            .map(|p| p.program)
            .collect();
        mine_sharded(&programs, &kb, &mining_cfg, &shard_cfg)
    };
    let wall = start.elapsed();

    let wall_ms = wall.as_millis();
    let pps = projects as f64 / wall.as_secs_f64();
    println!(
        "{{\"bench\":\"mining/scale\",\"projects\":{projects},\"shards\":{shards},\
         \"mode\":\"{}\",\"wall_ms\":{wall_ms},\"pps\":{pps:.1},\"checks\":{},\
         \"check_set_hash\":\"{:016x}\",\"cores\":{}}}",
        if stream { "stream" } else { "batch" },
        report.checks.len(),
        check_set_hash(&report.checks),
        zodiac_mining::available_shards(),
    );

    if let Some(floor) = floor {
        if pps < floor {
            eprintln!("scale_smoke: {pps:.1} projects/sec is below the floor of {floor}");
            std::process::exit(1);
        }
    }
}
