//! Shared harness for the experiment binaries (`exp_*`).
//!
//! Every binary regenerates one table or figure from the paper's evaluation
//! (§5). They share the corpus/pipeline setup, the negative-test-suite
//! generator, category bucketing, and plain-text table/JSON reporting.

use serde::Serialize;
use std::path::PathBuf;
use std::sync::Arc;
use zodiac::{PipelineConfig, PipelineResult};
use zodiac_kb::KnowledgeBase;
use zodiac_mining::MinedCheck;
use zodiac_model::Program;
use zodiac_obs::{JsonLinesSink, MemoryRecorder, MetricsSnapshot, Obs, PerfettoSink, Recorder};
use zodiac_spec::{Check, ShapeCategory};
use zodiac_validation::{mdc, mutate, DeployOracle};

/// The evaluation-scale pipeline configuration shared by experiments.
pub fn eval_config() -> PipelineConfig {
    let mut cfg = PipelineConfig::evaluation();
    cfg.corpus.projects = 600;
    cfg.counterexample_projects = 300;
    cfg
}

/// Runs the shared pipeline and returns the result plus the mined corpus.
pub fn run_eval_pipeline() -> (PipelineResult, Vec<Program>) {
    run_eval_pipeline_obs(&Obs::null())
}

/// [`run_eval_pipeline`] recording funnel counters and stage spans into an
/// observability handle.
pub fn run_eval_pipeline_obs(obs: &Obs) -> (PipelineResult, Vec<Program>) {
    let cfg = eval_config();
    let corpus: Vec<Program> = zodiac_corpus::generate(&cfg.corpus)
        .into_iter()
        .map(|p| p.program)
        .collect();
    let result = zodiac::run_pipeline_obs(&cfg, obs);
    (result, corpus)
}

/// Observability harness shared by the experiment binaries: an always-on
/// in-memory registry (so every record gains a funnel-stage metrics dump),
/// plus an optional JSON-lines trace sink enabled by `--trace-out FILE`
/// and an optional Chrome/Perfetto exporter enabled by `--perfetto-out
/// FILE` on the process command line.
pub struct ExpObs {
    registry: Arc<MemoryRecorder>,
    trace: Option<Arc<JsonLinesSink>>,
    perfetto: Option<Arc<PerfettoSink>>,
    /// The handle to thread into pipeline runs and deploy engines.
    pub obs: Obs,
}

impl Default for ExpObs {
    fn default() -> Self {
        ExpObs::from_args()
    }
}

impl ExpObs {
    /// Builds the harness from the process arguments (`--trace-out FILE`,
    /// `--perfetto-out FILE`).
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let arg_value = |flag: &str| {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1).cloned())
        };
        let registry = Arc::new(MemoryRecorder::new());
        let mut sinks: Vec<Arc<dyn Recorder>> = vec![registry.clone()];
        let trace = arg_value("--trace-out").and_then(|path| match JsonLinesSink::create(&path) {
            Ok(sink) => Some(Arc::new(sink)),
            Err(e) => {
                eprintln!("warning: cannot create trace file {path}: {e}");
                None
            }
        });
        if let Some(sink) = &trace {
            sinks.push(sink.clone());
        }
        let perfetto = arg_value("--perfetto-out").map(|path| Arc::new(PerfettoSink::create(path)));
        if let Some(sink) = &perfetto {
            sinks.push(sink.clone());
        }
        let obs = Obs::fanout(sinks);
        ExpObs {
            registry,
            trace,
            perfetto,
            obs,
        }
    }

    /// A point-in-time snapshot of everything recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Writes the experiment record under `target/experiments/` with the
    /// funnel metrics embedded as a top-level `metrics` key, then appends
    /// the final snapshot line to the trace file (if `--trace-out` was
    /// given), flushes it, and writes the Perfetto export (if
    /// `--perfetto-out` was given).
    pub fn write_json_with_metrics<T: Serialize>(&self, name: &str, value: &T) {
        let snap = self.snapshot();
        let mut record = value.serialize();
        if let serde::Value::Object(fields) = &mut record {
            fields.insert("metrics".to_string(), snap.serialize());
        }
        write_json(name, &record);
        if let Some(sink) = &self.trace {
            sink.write_snapshot(&snap);
            let _ = sink.flush();
        }
        if let Some(sink) = &self.perfetto {
            if let Err(e) = sink.finish() {
                eprintln!("warning: cannot write perfetto trace: {e}");
            }
        }
    }
}

/// Table 2 / Figure 6 category of a check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub enum Category {
    /// Intra-resource.
    Intra,
    /// Inter-resource without aggregation.
    Inter,
    /// Inter-resource with aggregation.
    InterAgg,
    /// LLM/oracle-interpolated quantitative checks.
    Interpolation,
}

impl Category {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Category::Intra => "intra-resource",
            Category::Inter => "inter w/o agg",
            Category::InterAgg => "inter w/ agg",
            Category::Interpolation => "interpolation",
        }
    }
}

/// Buckets a mined check by provenance + shape.
pub fn category_of(mined: &MinedCheck) -> Category {
    if mined.family.starts_with("interp/") {
        return Category::Interpolation;
    }
    match mined.check.shape_category() {
        ShapeCategory::Intra => Category::Intra,
        ShapeCategory::Inter => Category::Inter,
        ShapeCategory::InterAgg => Category::InterAgg,
    }
}

/// Generates up to `n` negative test cases for random validated checks —
/// the "~500 negative test cases" used as inputs to Tables 3 and 4.
pub fn negative_suite(
    checks: &[MinedCheck],
    corpus: &[Program],
    kb: &KnowledgeBase,
    n: usize,
) -> Vec<(usize, Program)> {
    let mut out = Vec::new();
    if checks.is_empty() {
        return out;
    }
    let cfg = mutate::MutationConfig::default();
    let mut seed = 0usize;
    while out.len() < n && seed < n * 4 {
        let idx = seed % checks.len();
        let offset = seed / checks.len();
        seed += 1;
        let check = &checks[idx].check;
        // Vary the positive case by scanning from different corpus offsets.
        let start = (offset * 37) % corpus.len().max(1);
        let rotated: Vec<Program> = corpus[start..]
            .iter()
            .chain(corpus[..start].iter())
            .cloned()
            .collect();
        let Some(positive) = mdc::find_positive(check, &rotated, kb, 150) else {
            continue;
        };
        let others: Vec<(Check, u64)> = checks
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != idx)
            .map(|(_, c)| (c.check.clone(), 50))
            .collect();
        match mutate::negative_test(check, &positive, &[], &others, kb, corpus, &cfg) {
            mutate::MutationResult::Negative(neg) => out.push((idx, neg.program)),
            _ => continue,
        }
    }
    out
}

/// Renders an aligned plain-text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let joined: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("| {} |", joined.join(" | "));
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        line(row.clone());
    }
}

/// Writes an experiment's JSON record under `target/experiments/`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = PathBuf::from("target/experiments");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(json) = serde_json::to_string_pretty(value) {
        let _ = std::fs::write(&path, json);
        println!("\n[record written to {}]", path.display());
    }
}

/// Deploys a suite of programs and returns reports (in suite order). Goes
/// through [`DeployOracle::deploy_batch`] so an execution engine can fan
/// the suite across its worker pool.
pub fn deploy_all<D: DeployOracle>(
    oracle: &D,
    suite: &[(usize, Program)],
) -> Vec<zodiac_cloud::DeployReport> {
    let programs: Vec<Program> = suite.iter().map(|(_, p)| p.clone()).collect();
    oracle.deploy_batch(&programs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zodiac_spec::parse_check;

    #[test]
    fn category_bucketing() {
        let mk = |src: &str, family: &'static str| MinedCheck {
            check: parse_check(src).unwrap(),
            family,
            support: 1,
            confidence: 1.0,
            lift: None,
            interp: None,
        };
        assert_eq!(
            category_of(&mk(
                "let r:VM in r.priority == 'Spot' => r.eviction_policy != null",
                "intra/eq-notnull"
            )),
            Category::Intra
        );
        assert_eq!(
            category_of(&mk(
                "let r1:VM, r2:NIC in conn(r1.network_interface_ids -> r2.id) => r1.location == r2.location",
                "conn/attr-eq"
            )),
            Category::Inter
        );
        assert_eq!(
            category_of(&mk(
                "let r1:VM, r2:NIC in conn(r1.network_interface_ids -> r2.id) => indegree(r2, VM) == 1",
                "conn/indeg-one"
            )),
            Category::InterAgg
        );
        assert_eq!(
            category_of(&mk(
                "let r:VM in r.size == 'Standard_B1s' => outdegree(r, NIC) <= 2",
                "interp/degree-limit"
            )),
            Category::Interpolation
        );
    }
}
