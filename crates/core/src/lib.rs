//! # Zodiac
//!
//! A Rust reproduction of *"Unearthing Semantic Checks for Cloud
//! Infrastructure-as-Code Programs"* (SOSP 2024): an automated pipeline that
//! **mines** semantic checks for Terraform/Azure programs from a corpus of
//! repositories and **validates** them through deployment-based testing.
//!
//! The crates compose as in the paper's Figure 2:
//!
//! ```text
//! corpus ──► knowledge base ──► mining (templates + statistics + oracle)
//!    │                                        │ hypothesized checks
//!    │                                        ▼
//!    └────────────► validation (MDC + solver mutation + scheduler) ──► R_v
//!                          │ positive/negative test cases
//!                          ▼
//!                 cloud simulator (deploy / observe)
//! ```
//!
//! This crate ties the phases together behind [`run_pipeline`] and offers
//! the downstream use case — scanning user programs for violations of
//! validated checks ([`scanner`]).
//!
//! Every phase threads a `zodiac-obs` [`Obs`] handle: pass one to
//! [`run_pipeline_obs`] to collect funnel counters and
//! `pipeline/corpus` → `pipeline/mining` → `pipeline/validation` →
//! deployment stage spans across the whole run.
//!
//! # Examples
//!
//! ```no_run
//! use zodiac::{PipelineConfig, run_pipeline};
//!
//! let mut cfg = PipelineConfig::default();
//! cfg.corpus.projects = 300;
//! let result = run_pipeline(&cfg);
//! println!(
//!     "validated {} checks ({} false positives removed)",
//!     result.final_checks.len(),
//!     result.validation.false_positives.len()
//! );
//! ```

pub mod fixtures;
pub mod insights;
pub mod provenance;
pub mod scanner;

pub use scanner::{
    check_set_key, scan_corpus, scan_program, MisconfigReport, ScanCache, Violation,
};

use serde::Serialize;
use std::collections::BTreeSet;
use zodiac_cloud::CloudSim;
use zodiac_corpus::CorpusConfig;
use zodiac_deployer::{DeployEngine, DeployerConfig};
use zodiac_kb::KnowledgeBase;
use zodiac_mining::{MiningConfig, MiningReport};
use zodiac_model::Program;
use zodiac_obs::{MetricsSnapshot, Obs};
use zodiac_validation::{
    counterexample::{counterexample_pass_obs, CounterexampleReport},
    DeployOracle, Scheduler, SchedulerConfig, ValidatedCheck, ValidationOutcome,
};

/// End-to-end pipeline configuration.
#[derive(Debug, Clone, Default)]
pub struct PipelineConfig {
    /// Corpus generation (the crawled-repository substitute).
    pub corpus: CorpusConfig,
    /// Mining phase settings.
    pub mining: MiningConfig,
    /// Validation scheduler settings.
    pub scheduler: SchedulerConfig,
    /// Deployment execution engine settings (worker pool, memoization,
    /// fault injection). The engine is semantics-preserving, so these only
    /// affect speed and telemetry, never `R_v`.
    pub deployer: DeployerConfig,
    /// Extra projects generated for the §5.6 counterexample pass
    /// (0 disables the pass).
    pub counterexample_projects: usize,
    /// Violating programs examined per check in the counterexample pass.
    pub counterexample_budget: usize,
    /// Worker shards for the mining observation pass (0 or 1 = monolithic).
    /// Any value yields byte-identical mining results — the shard merge is
    /// exact — so this only trades threads for wall-clock.
    pub mining_shards: usize,
    /// Stream the corpus through mining one project at a time instead of
    /// materialising `Vec<Project>` — the 100k-project mode. Validation
    /// (which needs in-memory programs to deploy) then runs over a
    /// re-generated prefix of the same corpus; see
    /// [`PipelineConfig::validation_projects`].
    pub stream_corpus: bool,
    /// Cap on corpus projects materialised for validation. `None` means all
    /// projects in batch mode and `min(projects, 600)` in streaming mode —
    /// so at the default 600-project scale, streaming and batch runs are
    /// byte-identical end-to-end.
    pub validation_projects: Option<usize>,
}

impl PipelineConfig {
    /// The configuration used by the evaluation binaries: a moderately
    /// sized corpus with realistic noise.
    pub fn evaluation() -> Self {
        PipelineConfig {
            corpus: CorpusConfig {
                projects: 600,
                noise_rate: 0.02,
                rare_option_rate: 0.004,
                ..Default::default()
            },
            counterexample_projects: 300,
            counterexample_budget: 8,
            ..Default::default()
        }
    }
}

/// Everything the pipeline produced.
#[derive(Serialize)]
pub struct PipelineResult {
    /// Number of corpus projects mined.
    pub corpus_projects: usize,
    /// Mining report (funnel counters + surviving checks).
    pub mining: MiningReport,
    /// Validation outcome (R_v, false positives, trace).
    pub validation: ValidationOutcome,
    /// Checks demoted by the counterexample pass (indices into
    /// `validation.validated`).
    pub demoted: Vec<usize>,
    /// Counterexample-pass statistics.
    #[serde(skip)]
    pub counterexamples: CounterexampleReport,
    /// The final check set: validated minus demoted.
    pub final_checks: Vec<ValidatedCheck>,
    /// Execution-engine metrics for the whole run (the `deploy.*`
    /// namespace: requests, cache hits, retries, latency histograms), when
    /// deployment went through an engine.
    pub deploy_metrics: Option<MetricsSnapshot>,
}

/// Runs corpus generation → mining → validation → counterexample testing.
///
/// Deployment goes through a [`DeployEngine`] configured by
/// [`PipelineConfig::deployer`] wrapping the Azure simulator.
pub fn run_pipeline(cfg: &PipelineConfig) -> PipelineResult {
    run_pipeline_obs(cfg, &Obs::null())
}

/// [`run_pipeline`] with an observability handle: every phase records its
/// funnel counters and stage spans into `obs`, and the deploy engine fans
/// its `deploy.*` metrics out to it as well.
pub fn run_pipeline_obs(cfg: &PipelineConfig, obs: &Obs) -> PipelineResult {
    let kb = zodiac_kb::azure_kb();
    let engine = DeployEngine::with_obs(CloudSim::new_azure(), cfg.deployer.clone(), obs.clone());
    run_pipeline_with_obs(cfg, &kb, &engine, obs)
}

/// [`run_pipeline`] with an injected KB and deployment oracle — any
/// [`DeployOracle`]: the bare simulator, an execution engine wrapping it, or
/// a test double.
pub fn run_pipeline_with<D: DeployOracle>(
    cfg: &PipelineConfig,
    kb: &KnowledgeBase,
    sim: &D,
) -> PipelineResult {
    run_pipeline_with_obs(cfg, kb, sim, &Obs::null())
}

/// [`run_pipeline_with`] plus an observability handle threaded through
/// every phase.
pub fn run_pipeline_with_obs<D: DeployOracle>(
    cfg: &PipelineConfig,
    kb: &KnowledgeBase,
    sim: &D,
    obs: &Obs,
) -> PipelineResult {
    let pipeline_span = obs.start_span("pipeline");
    let (corpus_projects, mining, programs) = if cfg.stream_corpus {
        // Streaming mode: projects are generated on demand inside the shard
        // driver's producer loop and never live in memory all at once, so
        // there is no separate `pipeline/corpus` span — generation cost is
        // part of the mining span, and per-project corpus counters are
        // recorded as each project streams past.
        let shard = zodiac_mining::ShardConfig::with_shards(cfg.mining_shards);
        let stream = zodiac_corpus::ProjectStream::new(&cfg.corpus).map(|p| {
            zodiac_corpus::observe_project(&p, obs);
            p.program
        });
        let (mining, streamed) =
            zodiac_mining::mine_streaming_obs(stream, kb, &cfg.mining, &shard, obs);
        // Validation deploys programs, so it needs a materialised corpus:
        // re-generate a prefix of the same stream (byte-identical projects).
        let val_n = cfg
            .validation_projects
            .unwrap_or_else(|| cfg.corpus.projects.min(600))
            .min(cfg.corpus.projects);
        let programs: Vec<Program> = zodiac_corpus::ProjectStream::new(&cfg.corpus)
            .take(val_n)
            .map(|p| p.program)
            .collect();
        (streamed, mining, programs)
    } else {
        let corpus = zodiac_corpus::generate_obs(&cfg.corpus, obs);
        let mut programs: Vec<Program> = corpus.iter().map(|p| p.program.clone()).collect();
        let mining = if cfg.mining_shards > 1 {
            zodiac_mining::mine_sharded_obs(
                &programs,
                kb,
                &cfg.mining,
                &zodiac_mining::ShardConfig::with_shards(cfg.mining_shards),
                obs,
            )
        } else {
            zodiac_mining::mine_obs(&programs, kb, &cfg.mining, obs)
        };
        if let Some(n) = cfg.validation_projects {
            programs.truncate(n);
        }
        (corpus.len(), mining, programs)
    };

    let validation_span = obs.start_span("pipeline/validation");
    let scheduler = Scheduler::new(sim, kb, &programs, cfg.scheduler.clone()).with_obs(obs.clone());
    let validation = scheduler.run(mining.checks.clone());
    validation_span.finish();

    let (counterexamples, demoted) = if cfg.counterexample_projects > 0 {
        let extra_cfg = CorpusConfig {
            projects: cfg.counterexample_projects,
            seed: cfg.corpus.seed.wrapping_add(0x5EED),
            // The extra corpus leans on rare options so open-world false
            // positives surface (§5.6).
            rare_option_rate: (cfg.corpus.rare_option_rate * 4.0).clamp(0.0, 0.05),
            ..cfg.corpus.clone()
        };
        let extra: Vec<Program> = zodiac_corpus::generate(&extra_cfg)
            .into_iter()
            .map(|p| p.program)
            .collect();
        let report = counterexample_pass_obs(
            &validation.validated,
            &extra,
            kb,
            sim,
            cfg.counterexample_budget.max(1),
            obs,
        );
        let demoted = report.demoted.clone();
        (report, demoted)
    } else {
        (CounterexampleReport::default(), Vec::new())
    };

    // Set-membership filtering: `demoted` is sorted but can grow with the
    // validated set, and `Vec::contains` per element made this quadratic.
    let demoted_set: BTreeSet<usize> = demoted.iter().copied().collect();
    let final_checks: Vec<ValidatedCheck> = validation
        .validated
        .iter()
        .enumerate()
        .filter(|(i, _)| !demoted_set.contains(i))
        .map(|(_, v)| v.clone())
        .collect();

    obs.gauge_set("pipeline.final_checks", final_checks.len() as u64);
    pipeline_span.finish();

    PipelineResult {
        corpus_projects,
        mining,
        validation,
        demoted,
        counterexamples,
        final_checks,
        deploy_metrics: sim.telemetry(),
    }
}
