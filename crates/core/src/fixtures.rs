//! Reproductions of the paper's real-world misconfiguration case studies.
//!
//! §5.5 dissects the official `azurerm_network_interface_application_gateway_
//! backend_address_pool_association` usage example, which passes Terraform
//! validation but violates two Zodiac checks simultaneously: the application
//! gateway's frontend IP uses the Basic sku with dynamic allocation, and a
//! NIC shares the gateway's (exclusive) subnet.

/// The buggy documentation example, as HCL.
pub const APPGW_DOC_EXAMPLE: &str = r#"
resource "azurerm_resource_group" "example" {
  name     = "example-resources"
  location = "westeurope"
}

resource "azurerm_virtual_network" "example" {
  name                = "example-network"
  location            = "westeurope"
  resource_group_name = azurerm_resource_group.example.name
  address_space       = ["10.254.0.0/16"]
}

resource "azurerm_subnet" "frontend" {
  name                 = "frontend"
  resource_group_name  = azurerm_resource_group.example.name
  virtual_network_name = azurerm_virtual_network.example.name
  address_prefixes     = ["10.254.0.0/24"]
}

resource "azurerm_subnet" "backend" {
  name                 = "backend"
  resource_group_name  = azurerm_resource_group.example.name
  virtual_network_name = azurerm_virtual_network.example.name
  address_prefixes     = ["10.254.2.0/24"]
}

# Violation 1: the IP of an application gateway must have the Standard sku.
resource "azurerm_public_ip" "example" {
  name                = "example-pip"
  location            = "westeurope"
  resource_group_name = azurerm_resource_group.example.name
  sku                 = "Basic"
  allocation_method   = "Dynamic"
}

resource "azurerm_application_gateway" "network" {
  name                = "example-appgateway"
  location            = "westeurope"
  resource_group_name = azurerm_resource_group.example.name

  sku {
    name     = "Standard_Small"
    tier     = "Standard"
    capacity = 2
  }

  gateway_ip_configuration {
    name      = "my-gateway-ip-configuration"
    subnet_id = azurerm_subnet.frontend.id
  }

  frontend_ip_configuration {
    name                 = "frontend"
    public_ip_address_id = azurerm_public_ip.example.id
  }

  backend_address_pool {
    name = "backend-pool"
  }

  request_routing_rule {
    name      = "rule-1"
    rule_type = "Basic"
  }
}

# Violation 2: the application gateway's subnet is exclusive, yet this NIC
# shares subnet "frontend" with it (the declared "backend" subnet goes
# unused).
resource "azurerm_network_interface" "example" {
  name                = "example-nic"
  location            = "westeurope"
  resource_group_name = azurerm_resource_group.example.name

  ip_configuration {
    name                          = "testconfiguration1"
    subnet_id                     = azurerm_subnet.frontend.id
    private_ip_address_allocation = "Dynamic"
  }
}

resource "azurerm_network_interface_application_gateway_backend_address_pool_association" "example" {
  network_interface_id    = azurerm_network_interface.example.id
  ip_configuration_name   = "testconfiguration1"
  backend_address_pool_id = azurerm_application_gateway.network.backend_address_pool_id
}
"#;

/// The fixed example: Standard/Static frontend IP, and the NIC moved to the
/// backend subnet. Note the naive fix (just flipping the sku to Standard)
/// would trip the *other* check — `allocation == 'Dynamic' ⇒ sku == 'Basic'`
/// — so the allocation must change too.
pub const APPGW_DOC_EXAMPLE_FIXED: &str = r#"
resource "azurerm_resource_group" "example" {
  name     = "example-resources"
  location = "westeurope"
}

resource "azurerm_virtual_network" "example" {
  name                = "example-network"
  location            = "westeurope"
  resource_group_name = azurerm_resource_group.example.name
  address_space       = ["10.254.0.0/16"]
}

resource "azurerm_subnet" "frontend" {
  name                 = "frontend"
  resource_group_name  = azurerm_resource_group.example.name
  virtual_network_name = azurerm_virtual_network.example.name
  address_prefixes     = ["10.254.0.0/24"]
}

resource "azurerm_subnet" "backend" {
  name                 = "backend"
  resource_group_name  = azurerm_resource_group.example.name
  virtual_network_name = azurerm_virtual_network.example.name
  address_prefixes     = ["10.254.2.0/24"]
}

resource "azurerm_public_ip" "example" {
  name                = "example-pip"
  location            = "westeurope"
  resource_group_name = azurerm_resource_group.example.name
  sku                 = "Standard"
  allocation_method   = "Static"
}

resource "azurerm_application_gateway" "network" {
  name                = "example-appgateway"
  location            = "westeurope"
  resource_group_name = azurerm_resource_group.example.name

  sku {
    name     = "Standard_Small"
    tier     = "Standard"
    capacity = 2
  }

  gateway_ip_configuration {
    name      = "my-gateway-ip-configuration"
    subnet_id = azurerm_subnet.frontend.id
  }

  frontend_ip_configuration {
    name                 = "frontend"
    public_ip_address_id = azurerm_public_ip.example.id
  }

  backend_address_pool {
    name = "backend-pool"
  }

  request_routing_rule {
    name      = "rule-1"
    rule_type = "Basic"
  }
}

resource "azurerm_network_interface" "example" {
  name                = "example-nic"
  location            = "westeurope"
  resource_group_name = azurerm_resource_group.example.name

  ip_configuration {
    name                          = "testconfiguration1"
    subnet_id                     = azurerm_subnet.backend.id
    private_ip_address_allocation = "Dynamic"
  }
}

resource "azurerm_network_interface_application_gateway_backend_address_pool_association" "example" {
  network_interface_id    = azurerm_network_interface.example.id
  ip_configuration_name   = "testconfiguration1"
  backend_address_pool_id = azurerm_application_gateway.network.backend_address_pool_id
}
"#;

/// The two checks the buggy example violates, in check-language syntax.
pub const APPGW_CHECKS: [&str; 2] = [
    "let r1:APPGW, r2:IP in conn(r1.frontend_ip_configuration.public_ip_address_id -> r2.id) => r2.sku == 'Standard'",
    "let r1:APPGW, r2:SUBNET in conn(r1.gateway_ip_configuration.subnet_id -> r2.id) => indegree(r2, !APPGW) == 0",
];

/// The coupled check that makes the naive fix fail (§5.5 violation 1).
pub const IP_ALLOCATION_CHECK: &str =
    "let r:IP in r.allocation_method == 'Dynamic' => r.sku == 'Basic'";

#[cfg(test)]
mod tests {
    use super::*;
    use zodiac_cloud::{CloudSim, DeployOutcome};
    use zodiac_spec::parse_check;

    #[test]
    fn doc_example_compiles_but_fails_to_deploy() {
        let program = zodiac_hcl::compile(APPGW_DOC_EXAMPLE).expect("compiles fine");
        let sim = CloudSim::new_azure();
        let report = sim.deploy(&program);
        assert!(
            matches!(report.outcome, DeployOutcome::Failure { .. }),
            "the doc example must fail deployment"
        );
    }

    #[test]
    fn fixed_example_deploys() {
        let program = zodiac_hcl::compile(APPGW_DOC_EXAMPLE_FIXED).expect("compiles");
        let sim = CloudSim::new_azure();
        let report = sim.deploy(&program);
        assert!(
            report.outcome.is_success(),
            "fixed example should deploy: {:?}",
            report.outcome
        );
    }

    #[test]
    fn scanner_catches_both_violations() {
        let program = zodiac_hcl::compile(APPGW_DOC_EXAMPLE).unwrap();
        let checks: Vec<_> = APPGW_CHECKS
            .iter()
            .map(|s| parse_check(s).unwrap())
            .collect();
        let kb = zodiac_kb::azure_kb();
        let violations = crate::scanner::scan_program(&program, &checks, &kb);
        let violated: std::collections::BTreeSet<usize> =
            violations.iter().map(|v| v.check_index).collect();
        assert_eq!(violated.len(), 2, "both checks must fire: {violations:?}");
    }

    #[test]
    fn naive_fix_trips_the_coupled_check() {
        // Flip only the sku to Standard: allocation stays Dynamic.
        let naive = APPGW_DOC_EXAMPLE.replace(
            "sku                 = \"Basic\"",
            "sku                 = \"Standard\"",
        );
        let program = zodiac_hcl::compile(&naive).unwrap();
        let kb = zodiac_kb::azure_kb();
        let check = parse_check(IP_ALLOCATION_CHECK).unwrap();
        let violations = crate::scanner::scan_program(&program, &[check], &kb);
        assert!(!violations.is_empty(), "dynamic Standard IPs are illegal");
        let sim = CloudSim::new_azure();
        assert!(!sim.deploys_ok(&program));
    }
}
