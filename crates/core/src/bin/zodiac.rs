//! The `zodiac` command-line tool.
//!
//! ```text
//! zodiac mine   [--projects N] [--seed S] --out checks.txt
//! zodiac scan   --checks checks.txt FILE...
//! zodiac deploy FILE...
//! zodiac explain "<check>"
//! zodiac explain <fingerprint> --trace trace.jsonl
//! zodiac report --trace trace.jsonl
//! zodiac insights --checks checks.txt
//! ```
//!
//! `FILE` may be Terraform source (`.tf`) or a `terraform show -json` plan
//! (`.json`). `mine` runs the full pipeline against a synthetic corpus and
//! writes the validated checks one per line; `scan` applies a check file to
//! programs statically; `deploy` runs the cloud simulator and reports the
//! failure phase and blast radius.

use std::process::ExitCode;
use std::sync::Arc;
use zodiac::provenance;
use zodiac_model::Program;
use zodiac_obs::{JsonLinesSink, MemoryRecorder, MetricsSnapshot, Obs, PerfettoSink, Recorder};
use zodiac_spec::{parse_check, Check};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "mine" => cmd_mine(rest),
        "scan" => cmd_scan(rest),
        "repair" => cmd_repair(rest),
        "deploy" => cmd_deploy(rest),
        "explain" => cmd_explain(rest),
        "report" => cmd_report(rest),
        "insights" => cmd_insights(rest),
        "fuzz" => cmd_fuzz(rest),
        "client" => cmd_client(rest),
        "top" => cmd_top(rest),
        "deploy-cache" => cmd_deploy_cache(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!(
            "unknown command: {other} (commands: mine, scan, repair, deploy, explain, \
             report, insights, fuzz, client, top, deploy-cache; the serving daemon is the \
             separate `zodiacd` binary)\n{USAGE}"
        )),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "zodiac — mine and validate semantic checks for cloud IaC programs

USAGE:
    zodiac mine [--projects N] [--seed S] --out FILE   run the pipeline, write validated checks
                [--shards N|auto] [--stream]           (--shards fans mining over N worker
                [--validate-projects N]                threads — results are byte-identical for
                                                       any shard count; --stream generates the
                                                       corpus on the fly so 100k+ projects mine
                                                       without materialising, validating over a
                                                       re-generated prefix of
                                                       --validate-projects (default ≤600))
    zodiac scan --checks FILE [--no-confirm]           scan programs, deploy-confirm violations
                PROGRAM...                             (--no-confirm skips the deploy cross-check)
    zodiac repair --checks FILE [--max-edits N]        search for a minimal repair satisfying
                  [--explain] [--out DIR] PROGRAM...   every check, gated by the three-layer
                  [--candidate FILE]                   oracle stack (deploy-succeeds, checks-pass,
                                                       intent-preserved); --candidate verifies a
                                                       proposed fix instead of searching;
                                                       --explain prints per-layer verdicts
    zodiac deploy PROGRAM...                           simulate deployment and report outcome
    zodiac explain \"<check>\"                           render a check as a deployment insight
    zodiac explain <check-or-fp> --trace FILE          print one candidate's lifecycle ledger
                                                       from a recorded trace (fp = 16-hex
                                                       fingerprint)
    zodiac report --trace FILE [--top N]               funnel table + latency attribution from
                  [--perfetto OUT]                     a recorded trace; optionally re-export it
                                                       as Chrome/Perfetto trace-event JSON
    zodiac insights --checks FILE                      export a JSON-lines RAG knowledge base
    zodiac fuzz [--seed S] [--cases N]                 differential-fuzz the pipeline
                [--max-seconds T]                      (report on stdout; exit 1 on failures)
    zodiac deploy-cache stats FILE                     shape of a persistent deploy memo
    zodiac deploy-cache compact FILE                   drop duplicate memo records in place
    zodiac client --socket PATH OP [ARGS]              talk to a running `zodiacd` daemon:
        scan PROGRAM...                                  scan programs (output matches
                                                         `zodiac scan --no-confirm`)
        repair [--max-edits N] [--out DIR] PROGRAM...    repair programs against the live
                                                         check set (repaired source written
                                                         under --out)
        status | list-checks | shutdown                  serving counters / live checks / stop
        metrics                                          Prometheus exposition page on stdout
        explain <fp>                                     one check's stored provenance
        delta [--upsert ID=FILE]... [--remove ID]...     submit a corpus delta, re-mine
    zodiac top --socket PATH [--interval SECS]         live per-op dashboard for a running
               [--frames N]                            daemon: req/s, latency quantiles,
                                                       error rates, cache hit rate, heap,
                                                       and the slowest recent requests
                                                       (--frames bounds the refresh loop,
                                                       e.g. --frames 1 for one still frame)

    (start the daemon itself with `zodiacd --store DIR`; see `zodiacd --help`)

DEPLOYMENT OPTIONS (mine, scan, repair, deploy):
    --workers N          worker threads in the deployment engine (default 4)
    --no-deploy-cache    disable in-memory deploy-result memoization
    --deploy-cache FILE  persist deploy verdicts to FILE (created if missing)
                         and reuse them across runs and processes

OBSERVABILITY OPTIONS (mine, scan, repair, deploy, fuzz):
    --metrics            print the funnel/latency metrics summary on exit
    --trace-out FILE     stream structured spans + candidate lifecycle events
                         as JSON lines (schema v2), plus a final metrics
                         snapshot, to FILE
    --perfetto-out FILE  write the run's timeline as Chrome/Perfetto
                         trace-event JSON (opens in ui.perfetto.dev)

PROGRAM is .tf (Terraform source) or .json (terraform show -json plan).";

/// Pulls `--flag value` out of an argument list.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let idx = args.iter().position(|a| a == flag)?;
    if idx + 1 >= args.len() {
        return None;
    }
    let value = args.remove(idx + 1);
    args.remove(idx);
    Some(value)
}

/// Pulls a boolean `--switch` out of an argument list.
fn take_switch(args: &mut Vec<String>, switch: &str) -> bool {
    match args.iter().position(|a| a == switch) {
        Some(idx) => {
            args.remove(idx);
            true
        }
        None => false,
    }
}

/// Rejects any leftover `-`-prefixed argument: every subcommand consumes
/// the flags it knows with `take_flag`/`take_switch`, so anything
/// dash-shaped still present is a typo that must not fall through
/// silently.
fn reject_unknown_flags(cmd: &str, args: &[String]) -> Result<(), String> {
    match args.iter().find(|a| a.starts_with('-')) {
        Some(flag) => Err(format!("{cmd}: unknown flag: {flag}")),
        None => Ok(()),
    }
}

/// Rejects all leftover arguments, for subcommands that take no
/// positionals.
fn reject_leftovers(cmd: &str, args: &[String]) -> Result<(), String> {
    reject_unknown_flags(cmd, args)?;
    if args.is_empty() {
        Ok(())
    } else {
        Err(format!("{cmd}: unexpected arguments: {}", args.join(" ")))
    }
}

/// Parses the shared `--workers` / `--no-deploy-cache` / `--deploy-cache`
/// engine flags. A `--deploy-cache` path is opened (created if missing)
/// eagerly, so a corrupt or unwritable memo fails the command up front
/// instead of mid-pipeline.
fn take_deployer_flags(args: &mut Vec<String>) -> Result<zodiac_deployer::DeployerConfig, String> {
    let mut cfg = zodiac_deployer::DeployerConfig::default();
    if let Some(v) = take_flag(args, "--workers") {
        cfg.workers = v
            .parse()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or("--workers expects a number >= 1")?;
    }
    if take_switch(args, "--no-deploy-cache") {
        cfg.cache = false;
    }
    if let Some(path) = take_flag(args, "--deploy-cache") {
        let path = std::path::PathBuf::from(path);
        let (_, load) = zodiac_deployer::DeployMemo::open(&path)?;
        if load.entries > 0 || load.dropped_partial {
            eprintln!(
                "deploy cache {}: {} verdict(s) replayed{}",
                path.display(),
                load.entries,
                if load.dropped_partial {
                    " (torn final record dropped)"
                } else {
                    ""
                }
            );
        }
        cfg.persistent_cache = Some(path);
    }
    Ok(cfg)
}

/// Prints the engine's telemetry summary after a run.
fn print_telemetry(tel: &MetricsSnapshot) {
    let requests = tel.counter("deploy.requests");
    let cache_hits = tel.counter("deploy.cache_hits");
    let hit_rate = if requests == 0 {
        0.0
    } else {
        cache_hits as f64 / requests as f64
    };
    eprintln!(
        "deploys: {} requests, {} backend deploys, {} cache hits ({:.0}% hit rate), \
         {} retries, peak queue depth {}",
        requests,
        tel.counter("deploy.backend_deploys"),
        cache_hits,
        hit_rate * 100.0,
        tel.counter("deploy.retries"),
        tel.gauge("deploy.queue_depth.max"),
    );
    let persistent_hits = tel.counter("deploy.persistent_hits");
    let persistent_stores = tel.counter("deploy.persistent_stores");
    if persistent_hits > 0 || persistent_stores > 0 {
        eprintln!(
            "deploy cache: {persistent_hits} verdict(s) reused from disk, \
             {persistent_stores} newly recorded"
        );
    }
}

fn cmd_deploy_cache(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    reject_unknown_flags("deploy-cache", &args)?;
    let (op, path) = match args.len() {
        2 => (args.remove(0), args.remove(0)),
        _ => {
            return Err("deploy-cache requires an operation and a file: \
                 deploy-cache stats|compact FILE"
                .into())
        }
    };
    let path = std::path::PathBuf::from(path);
    let (mut memo, load) = zodiac_deployer::DeployMemo::open(&path)?;
    match op.as_str() {
        "stats" => {
            let stats = memo.stats();
            println!("path: {}", path.display());
            println!("entries: {}", stats.entries);
            println!("records: {}", stats.records);
            println!("bytes: {}", stats.bytes);
            println!("torn_tail_dropped: {}", load.dropped_partial);
            Ok(())
        }
        "compact" => {
            let before = memo.stats();
            memo.compact()?;
            memo.sync()?;
            let after = memo.stats();
            println!(
                "compacted {}: {} record(s) ({} bytes) -> {} record(s) ({} bytes)",
                path.display(),
                before.records,
                before.bytes,
                after.records,
                after.bytes
            );
            Ok(())
        }
        other => Err(format!(
            "deploy-cache: unknown operation {other:?} (expected stats or compact)"
        )),
    }
}

/// The CLI's observability wiring, parsed from
/// `--metrics`/`--trace-out`/`--perfetto-out`.
struct ObsFlags {
    metrics: bool,
    trace: Option<Arc<JsonLinesSink>>,
    perfetto: Option<Arc<PerfettoSink>>,
    registry: Arc<MemoryRecorder>,
    obs: Obs,
}

/// Parses the shared `--metrics` / `--trace-out FILE` / `--perfetto-out
/// FILE` observability flags. With no flag the returned handle is null, so
/// instrumented code paths stay free.
fn take_obs_flags(args: &mut Vec<String>) -> Result<ObsFlags, String> {
    let metrics = take_switch(args, "--metrics");
    let trace_path = take_flag(args, "--trace-out");
    let perfetto_path = take_flag(args, "--perfetto-out");
    let registry = Arc::new(MemoryRecorder::new());
    let mut sinks: Vec<Arc<dyn Recorder>> = vec![registry.clone()];
    let trace = match trace_path {
        Some(path) => {
            let sink = Arc::new(
                JsonLinesSink::create(&path).map_err(|e| format!("cannot create {path}: {e}"))?,
            );
            sinks.push(sink.clone());
            Some(sink)
        }
        None => None,
    };
    let perfetto = match perfetto_path {
        Some(path) => {
            let sink = Arc::new(PerfettoSink::create(&path));
            sinks.push(sink.clone());
            Some(sink)
        }
        None => None,
    };
    let obs = if metrics || trace.is_some() || perfetto.is_some() {
        Obs::fanout(sinks)
    } else {
        Obs::null()
    };
    Ok(ObsFlags {
        metrics,
        trace,
        perfetto,
        registry,
        obs,
    })
}

impl ObsFlags {
    /// Emits the end-of-run artifacts: the final snapshot line of the trace
    /// file, the Perfetto export, and the `--metrics` summary table.
    fn finish(&self) -> Result<(), String> {
        if let Some(sink) = &self.trace {
            sink.write_snapshot(&self.registry.snapshot());
            sink.flush()
                .map_err(|e| format!("cannot flush trace file: {e}"))?;
        }
        if let Some(sink) = &self.perfetto {
            sink.finish()
                .map_err(|e| format!("cannot write perfetto trace: {e}"))?;
        }
        if self.metrics {
            eprint!("{}", self.registry.snapshot().render());
        }
        Ok(())
    }
}

fn load_program(path: &str) -> Result<Program, String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if path.ends_with(".json") {
        zodiac_hcl::from_plan_json(&source).map_err(|e| format!("{path}: {e}"))
    } else {
        zodiac_hcl::compile(&source).map_err(|e| format!("{path}: {e}"))
    }
}

fn load_checks(path: &str) -> Result<Vec<Check>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut checks = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let check = parse_check(line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        checks.push(check);
    }
    Ok(checks)
}

fn cmd_mine(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let projects: usize = take_flag(&mut args, "--projects")
        .map(|v| {
            v.parse()
                .map_err(|_| "--projects expects a number".to_string())
        })
        .transpose()?
        .unwrap_or(300);
    let seed: u64 = take_flag(&mut args, "--seed")
        .map(|v| v.parse().map_err(|_| "--seed expects a number".to_string()))
        .transpose()?
        .unwrap_or(0xC0FFEE);
    let out = take_flag(&mut args, "--out").ok_or("mine requires --out FILE")?;
    let shards: usize = take_flag(&mut args, "--shards")
        .map(|v| match v.as_str() {
            "auto" => Ok(zodiac_mining::available_shards()),
            _ => v
                .parse()
                .map_err(|_| "--shards expects a number or 'auto'".to_string()),
        })
        .transpose()?
        .unwrap_or(1);
    let stream = take_switch(&mut args, "--stream");
    let validate_projects: Option<usize> = take_flag(&mut args, "--validate-projects")
        .map(|v| {
            v.parse()
                .map_err(|_| "--validate-projects expects a number".to_string())
        })
        .transpose()?;
    let deployer = take_deployer_flags(&mut args)?;
    let obs_flags = take_obs_flags(&mut args)?;
    reject_leftovers("mine", &args)?;

    let mut cfg = zodiac::PipelineConfig::evaluation();
    cfg.corpus.projects = projects;
    cfg.corpus.seed = seed;
    cfg.deployer = deployer;
    cfg.mining_shards = shards;
    cfg.stream_corpus = stream;
    cfg.validation_projects = validate_projects;
    let mode = if stream { "streaming" } else { "batch" };
    eprintln!(
        "mining + validating over {projects} synthetic projects ({mode}, {shards} shard(s))..."
    );
    let cli_span = obs_flags.obs.start_span("cli/mine");
    let result = zodiac::run_pipeline_obs(&cfg, &obs_flags.obs);
    cli_span.finish();
    eprintln!(
        "hypothesized {} → candidates {} → validated {} ({} demoted by counterexamples)",
        result.mining.hypothesized,
        result.mining.checks.len(),
        result.validation.validated.len(),
        result.demoted.len(),
    );
    if let Some(tel) = &result.deploy_metrics {
        print_telemetry(tel);
    }
    let mut lines = String::new();
    for v in &result.final_checks {
        lines.push_str(&v.mined.check.to_string());
        lines.push('\n');
    }
    std::fs::write(&out, lines).map_err(|e| format!("cannot write {out}: {e}"))?;
    eprintln!("{} checks written to {out}", result.final_checks.len());
    obs_flags.finish()
}

fn cmd_scan(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let checks_path = take_flag(&mut args, "--checks").ok_or("scan requires --checks FILE")?;
    let no_confirm = take_switch(&mut args, "--no-confirm");
    let deployer = take_deployer_flags(&mut args)?;
    let obs_flags = take_obs_flags(&mut args)?;
    reject_unknown_flags("scan", &args)?;
    if args.is_empty() {
        return Err("scan requires at least one program file".into());
    }
    let cli_span = obs_flags.obs.start_span("cli/scan");
    let checks = load_checks(&checks_path)?;
    let kb = zodiac_kb::azure_kb();
    // Identical programs share one verdict through the same memo the
    // daemon serves from.
    let cache = zodiac::ScanCache::new();
    let key = zodiac::check_set_key(&checks);
    let mut total_violations = 0usize;
    let mut flagged: Vec<(String, Program)> = Vec::new();
    for path in &args {
        let program = load_program(path)?;
        let (violations, _) = cache.scan(&program, &checks, key, &kb);
        if violations.is_empty() {
            println!("{path}: OK ({} resources)", program.len());
        } else {
            println!("{path}: {} violation(s)", violations.len());
            for v in violations.iter() {
                println!("  ✗ {}", v.check);
                for r in &v.resources {
                    println!("      involves {r}");
                }
            }
            total_violations += violations.len();
            flagged.push((path.clone(), program));
        }
    }
    // Cross-check flagged programs against the simulator (the paper's
    // precision claim: scanner hits should fail real deployment).
    if !no_confirm && !flagged.is_empty() {
        use zodiac_deployer::DeployOracle;
        let engine = zodiac_deployer::DeployEngine::with_obs(
            zodiac_cloud::CloudSim::new_azure(),
            deployer,
            obs_flags.obs.clone(),
        );
        let programs: Vec<Program> = flagged.iter().map(|(_, p)| p.clone()).collect();
        for ((path, _), report) in flagged.iter().zip(engine.deploy_batch(&programs)) {
            if report.outcome.is_success() {
                println!("{path}: violation NOT confirmed by simulated deployment");
            } else {
                println!("{path}: confirmed — deployment fails");
            }
        }
        print_telemetry(&engine.metrics());
    }
    cli_span.finish();
    obs_flags.finish()?;
    if total_violations > 0 {
        Err(format!("{total_violations} violation(s) found"))
    } else {
        Ok(())
    }
}

/// Renders one repair attempt's layer-by-layer verdicts.
fn render_attempt(index: usize, attempt: &zodiac_repair::RepairAttempt) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "  candidate {}: {} edit(s)",
        index + 1,
        attempt.edits.len()
    );
    for edit in &attempt.edits {
        let _ = writeln!(out, "    {edit}");
    }
    for v in &attempt.layers {
        let _ = write!(out, "    L{} {}: ", v.layer.index(), v.layer.label());
        if v.passed {
            let _ = writeln!(out, "pass");
        } else {
            let _ = writeln!(out, "FAIL ({})", v.reason);
        }
    }
    out
}

fn cmd_repair(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let checks_path = take_flag(&mut args, "--checks").ok_or("repair requires --checks FILE")?;
    let max_edits: Option<usize> = take_flag(&mut args, "--max-edits")
        .map(|v| {
            v.parse()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or("--max-edits expects a number >= 1".to_string())
        })
        .transpose()?;
    let explain = take_switch(&mut args, "--explain");
    let candidate_path = take_flag(&mut args, "--candidate");
    let out_dir = take_flag(&mut args, "--out");
    let deployer = take_deployer_flags(&mut args)?;
    let obs_flags = take_obs_flags(&mut args)?;
    reject_unknown_flags("repair", &args)?;
    if args.is_empty() {
        return Err("repair requires at least one program file".into());
    }
    if candidate_path.is_some() && args.len() != 1 {
        return Err("--candidate verifies one proposed fix against exactly one program".into());
    }
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
    }

    let cli_span = obs_flags.obs.start_span("cli/repair");
    let checks = load_checks(&checks_path)?;
    let kb = zodiac_kb::azure_kb();
    let engine = zodiac_deployer::DeployEngine::with_obs(
        zodiac_cloud::CloudSim::new_azure(),
        deployer,
        obs_flags.obs.clone(),
    );
    let mut cfg = zodiac_repair::RepairConfig::default();
    if let Some(n) = max_edits {
        cfg.max_edits = n;
    }

    let mut unresolved = 0usize;
    for path in &args {
        let program = load_program(path)?;
        match &candidate_path {
            // Verification mode: gate a proposed fix through the oracle
            // stack without searching.
            Some(cpath) => {
                let candidate = load_program(cpath)?;
                let fp = zodiac_repair::repair_fingerprint(&program, &checks);
                let graph = zodiac_graph::ResourceGraph::build(program.clone());
                let ctx = zodiac_spec::EvalContext {
                    graph: &graph,
                    kb: Some(&kb),
                };
                let violated: Vec<Check> = checks
                    .iter()
                    .filter(|c| !zodiac_spec::violations(c, ctx).is_empty())
                    .cloned()
                    .collect();
                let edits = zodiac_repair::diff_edits(&program, &candidate);
                let attempt = zodiac_repair::verify_candidate(
                    &program,
                    &candidate,
                    edits,
                    &checks,
                    &violated,
                    &kb,
                    &engine,
                    &obs_flags.obs,
                    fp,
                );
                println!("{path}: candidate {cpath} [repair {fp:016x}]");
                print!("{}", render_attempt(0, &attempt));
                match attempt.rejected_at() {
                    None => println!("  accepted"),
                    Some(v) => {
                        println!("  rejected at L{} ({})", v.layer.index(), v.reason);
                        unresolved += 1;
                    }
                }
            }
            // Search mode: minimal soft-constraint repair.
            None => {
                let report = zodiac_repair::repair_program(
                    &program,
                    &checks,
                    &kb,
                    &engine,
                    &cfg,
                    &obs_flags.obs,
                );
                let fp = report.fingerprint;
                match &report.outcome {
                    zodiac_repair::RepairOutcome::Clean => {
                        println!("{path}: OK (no violated checks)");
                    }
                    zodiac_repair::RepairOutcome::Accepted { program, edits } => {
                        println!(
                            "{path}: repaired — {} violation(s) of {} check(s) fixed with {} \
                             edit(s) [repair {fp:016x}]",
                            report.violations,
                            report.violated.len(),
                            edits.len()
                        );
                        for edit in edits {
                            println!("  {edit}");
                        }
                        if let Some(dir) = &out_dir {
                            let name = std::path::Path::new(path)
                                .file_name()
                                .map(|n| n.to_string_lossy().into_owned())
                                .unwrap_or_else(|| "repaired.tf".into());
                            let out = std::path::Path::new(dir).join(name);
                            std::fs::write(&out, zodiac_hcl::to_hcl(program))
                                .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
                            println!("  written to {}", out.display());
                        }
                    }
                    zodiac_repair::RepairOutcome::Exhausted => {
                        println!(
                            "{path}: no acceptable repair — {} candidate(s) all rejected \
                             [repair {fp:016x}]",
                            report.attempts.len()
                        );
                        unresolved += 1;
                    }
                    zodiac_repair::RepairOutcome::Unrepairable { reason } => {
                        println!("{path}: unrepairable — {reason} [repair {fp:016x}]");
                        unresolved += 1;
                    }
                }
                if explain {
                    for (i, attempt) in report.attempts.iter().enumerate() {
                        print!("{}", render_attempt(i, attempt));
                    }
                }
            }
        }
    }
    print_telemetry(&engine.metrics());
    cli_span.finish();
    obs_flags.finish()?;
    if unresolved > 0 {
        Err(format!("{unresolved} program(s) not repaired"))
    } else {
        Ok(())
    }
}

fn cmd_deploy(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let deployer = take_deployer_flags(&mut args)?;
    let obs_flags = take_obs_flags(&mut args)?;
    reject_unknown_flags("deploy", &args)?;
    if args.is_empty() {
        return Err("deploy requires at least one program file".into());
    }
    let cli_span = obs_flags.obs.start_span("cli/deploy");
    use zodiac_deployer::DeployOracle;
    let engine = zodiac_deployer::DeployEngine::with_obs(
        zodiac_cloud::CloudSim::new_azure(),
        deployer,
        obs_flags.obs.clone(),
    );
    let mut failed = false;
    let programs: Vec<(String, Program)> = args
        .iter()
        .map(|path| load_program(path).map(|p| (path.clone(), p)))
        .collect::<Result<_, _>>()?;
    let batch: Vec<Program> = programs.iter().map(|(_, p)| p.clone()).collect();
    for ((path, _), report) in programs.iter().zip(engine.deploy_batch(&batch)) {
        match &report.outcome {
            zodiac_cloud::DeployOutcome::Success => {
                println!("{path}: deployed {} resources", report.deployed.len());
            }
            zodiac_cloud::DeployOutcome::Failure {
                phase,
                rule_id,
                resource,
                message,
            } => {
                failed = true;
                println!("{path}: FAILED at {phase} on {resource}");
                println!("  rule: {rule_id}");
                println!("  {message}");
                println!(
                    "  deployed {} / halted {} / rollback spans {} resource type(s)",
                    report.deployed.len(),
                    report.halted.len(),
                    report.rollback_radius()
                );
            }
        }
    }
    print_telemetry(&engine.metrics());
    cli_span.finish();
    obs_flags.finish()?;
    if failed {
        Err("deployment failed".into())
    } else {
        Ok(())
    }
}

fn cmd_explain(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let trace_path = take_flag(&mut args, "--trace");
    reject_unknown_flags("explain", &args)?;
    let [src] = args.as_slice() else {
        return Err(
            "explain requires exactly one quoted check (or a 16-hex fingerprint with --trace)"
                .into(),
        );
    };
    match trace_path {
        // Provenance mode: replay one candidate's lifecycle from a trace.
        Some(path) => {
            let fp = provenance::resolve_fingerprint(src)?;
            let trace =
                provenance::Trace::load(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let events = trace.ledger_for(fp);
            print!("{}", provenance::render_ledger(fp, &events));
            Ok(())
        }
        // Insight mode: render the check as a deployment insight.
        None => {
            let check = parse_check(src).map_err(|e| e.to_string())?;
            println!("{}", zodiac::insights::explain(&check));
            Ok(())
        }
    }
}

fn cmd_report(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let trace_path = take_flag(&mut args, "--trace").ok_or("report requires --trace FILE")?;
    let top: usize = take_flag(&mut args, "--top")
        .map(|v| {
            v.parse()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or("--top expects a number >= 1".to_string())
        })
        .transpose()?
        .unwrap_or(10);
    let perfetto_out = take_flag(&mut args, "--perfetto");
    reject_leftovers("report", &args)?;
    let trace = provenance::Trace::load(&trace_path)
        .map_err(|e| format!("cannot read {trace_path}: {e}"))?;
    print!("{}", provenance::render_report(&trace, top));
    if let Some(out) = perfetto_out {
        std::fs::write(&out, trace.to_perfetto_json())
            .map_err(|e| format!("cannot write {out}: {e}"))?;
        eprintln!("perfetto trace written to {out}");
    }
    Ok(())
}

fn cmd_insights(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let checks_path = take_flag(&mut args, "--checks").ok_or("insights requires --checks FILE")?;
    reject_leftovers("insights", &args)?;
    let checks = load_checks(&checks_path)?;
    println!("{}", zodiac::insights::export_jsonl(&checks));
    Ok(())
}

/// Parses a `u64` seed in decimal or `0x`-prefixed hex, matching the
/// `{:#x}` replay seeds the fuzz report prints.
fn parse_seed(v: &str) -> Result<u64, String> {
    let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => v.parse(),
    };
    parsed.map_err(|_| format!("--seed expects a decimal or 0x-hex number, got {v}"))
}

fn cmd_fuzz(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let mut cfg = zodiac_testkit::FuzzConfig::default();
    if let Some(v) = take_flag(&mut args, "--seed") {
        cfg.seed = parse_seed(&v)?;
    }
    if let Some(v) = take_flag(&mut args, "--cases") {
        cfg.cases = v
            .parse()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or("--cases expects a number >= 1")?;
    }
    if let Some(v) = take_flag(&mut args, "--max-seconds") {
        cfg.max_seconds = Some(
            v.parse()
                .map_err(|_| "--max-seconds expects a number".to_string())?,
        );
    }
    let obs_flags = take_obs_flags(&mut args)?;
    reject_leftovers("fuzz", &args)?;
    eprintln!(
        "fuzzing the pipeline: {} cases from seed {:#x}...",
        cfg.cases, cfg.seed
    );
    let report = zodiac_testkit::run_fuzz_obs(&cfg, &obs_flags.obs);
    print!("{}", report.render());
    obs_flags.finish()?;
    if report.passed() {
        Ok(())
    } else {
        Err(format!("{} property failure(s)", report.failures.len()))
    }
}

/// A connection to a running `zodiacd`, speaking one LDJSON request /
/// response pair at a time. The client builds requests as raw JSON values
/// rather than importing the daemon crate — the wire protocol is the
/// contract.
struct DaemonClient {
    reader: std::io::BufReader<std::os::unix::net::UnixStream>,
    writer: std::os::unix::net::UnixStream,
}

impl DaemonClient {
    fn connect(socket: &str) -> Result<DaemonClient, String> {
        let stream = std::os::unix::net::UnixStream::connect(socket)
            .map_err(|e| format!("cannot connect to {socket}: {e} (is zodiacd running?)"))?;
        let writer = stream
            .try_clone()
            .map_err(|e| format!("cannot clone socket: {e}"))?;
        Ok(DaemonClient {
            reader: std::io::BufReader::new(stream),
            writer,
        })
    }

    fn call(&mut self, request: serde_json::Value) -> Result<serde_json::Value, String> {
        use std::io::{BufRead, Write};
        let line = request.to_string();
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .map_err(|e| format!("cannot send request: {e}"))?;
        let mut response = String::new();
        let n = self
            .reader
            .read_line(&mut response)
            .map_err(|e| format!("cannot read response: {e}"))?;
        if n == 0 {
            return Err("daemon closed the connection".into());
        }
        let v: serde_json::Value = serde_json::from_str(response.trim_end())
            .map_err(|e| format!("malformed response: {e}"))?;
        if v.get("ok").and_then(serde_json::Value::as_bool) != Some(true) {
            let msg = v
                .get("error")
                .and_then(serde_json::Value::as_str)
                .unwrap_or("unknown daemon error");
            return Err(format!("daemon: {msg}"));
        }
        Ok(v)
    }
}

/// Builds a one-op request object.
fn client_request(op: &str) -> serde_json::Map<String, serde_json::Value> {
    let mut m = serde_json::Map::new();
    m.insert("op".into(), serde_json::Value::String(op.into()));
    m
}

fn cmd_client(args: &[String]) -> Result<(), String> {
    use serde_json::Value;
    let mut args = args.to_vec();
    let socket = take_flag(&mut args, "--socket").ok_or("client requires --socket PATH")?;
    let Some((op, rest)) = args.split_first() else {
        return Err(
            "client requires an operation: scan, repair, status, list-checks, explain, delta, \
             shutdown"
                .into(),
        );
    };
    let mut rest = rest.to_vec();
    let mut client = DaemonClient::connect(&socket)?;
    match op.as_str() {
        // Scan prints byte-identically to `zodiac scan --no-confirm`, so
        // daemon and batch verdicts diff cleanly.
        "scan" => {
            reject_unknown_flags("client scan", &rest)?;
            if rest.is_empty() {
                return Err("client scan requires at least one program file".into());
            }
            let mut total_violations = 0u64;
            for path in &rest {
                let source = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                let mut req = client_request("scan");
                req.insert("source".into(), Value::String(source));
                req.insert(
                    "format".into(),
                    Value::String(
                        if path.ends_with(".json") {
                            "plan"
                        } else {
                            "tf"
                        }
                        .into(),
                    ),
                );
                req.insert("id".into(), Value::String(path.clone()));
                let resp = client.call(Value::Object(req))?;
                let violations = resp
                    .get("violations")
                    .and_then(Value::as_array)
                    .ok_or("scan response missing violations")?;
                if violations.is_empty() {
                    let resources = resp.get("resources").and_then(Value::as_u64).unwrap_or(0);
                    println!("{path}: OK ({resources} resources)");
                } else {
                    println!("{path}: {} violation(s)", violations.len());
                    for v in violations {
                        let check = v.get("check").and_then(Value::as_str).unwrap_or("?");
                        println!("  ✗ {check}");
                        for r in v
                            .get("resources")
                            .and_then(Value::as_array)
                            .into_iter()
                            .flatten()
                        {
                            println!("      involves {}", r.as_str().unwrap_or("?"));
                        }
                    }
                    total_violations += violations.len() as u64;
                }
            }
            if total_violations > 0 {
                return Err(format!("{total_violations} violation(s) found"));
            }
            Ok(())
        }
        // Repair prints like `zodiac repair` search mode, with the repaired
        // source optionally written under --out.
        "repair" => {
            let max_edits: Option<u64> = take_flag(&mut rest, "--max-edits")
                .map(|v| {
                    v.parse()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or("--max-edits expects a number >= 1".to_string())
                })
                .transpose()?;
            let out_dir = take_flag(&mut rest, "--out");
            reject_unknown_flags("client repair", &rest)?;
            if rest.is_empty() {
                return Err("client repair requires at least one program file".into());
            }
            if let Some(dir) = &out_dir {
                std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
            }
            let mut unresolved = 0usize;
            for path in &rest {
                let source = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                let mut req = client_request("repair");
                req.insert("source".into(), Value::String(source));
                req.insert(
                    "format".into(),
                    Value::String(
                        if path.ends_with(".json") {
                            "plan"
                        } else {
                            "tf"
                        }
                        .into(),
                    ),
                );
                req.insert("id".into(), Value::String(path.clone()));
                if let Some(n) = max_edits {
                    req.insert(
                        "max_edits".into(),
                        Value::Number(serde_json::Number::from_u64(n)),
                    );
                }
                let resp = client.call(Value::Object(req))?;
                let fp = resp
                    .get("fingerprint")
                    .and_then(Value::as_str)
                    .unwrap_or("?");
                let outcome = resp.get("outcome").and_then(Value::as_str).unwrap_or("?");
                match outcome {
                    "clean" => println!("{path}: OK (no violated checks)"),
                    "accepted" => {
                        let edits = resp
                            .get("edits")
                            .and_then(Value::as_array)
                            .map(Vec::as_slice)
                            .unwrap_or_default();
                        println!(
                            "{path}: repaired with {} edit(s) [repair {fp}]",
                            edits.len()
                        );
                        for e in edits {
                            println!("  {}", e.as_str().unwrap_or("?"));
                        }
                        if let (Some(dir), Some(repaired)) = (
                            &out_dir,
                            resp.get("repaired_source").and_then(Value::as_str),
                        ) {
                            let name = std::path::Path::new(path)
                                .file_name()
                                .map(|n| n.to_string_lossy().into_owned())
                                .unwrap_or_else(|| "repaired.tf".into());
                            let out = std::path::Path::new(dir).join(name);
                            std::fs::write(&out, repaired)
                                .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
                            println!("  written to {}", out.display());
                        }
                    }
                    "exhausted" => {
                        println!("{path}: no acceptable repair [repair {fp}]");
                        unresolved += 1;
                    }
                    "unrepairable" => {
                        let reason = resp.get("reason").and_then(Value::as_str).unwrap_or("?");
                        println!("{path}: unrepairable — {reason} [repair {fp}]");
                        unresolved += 1;
                    }
                    other => {
                        println!("{path}: unexpected outcome {other:?}");
                        unresolved += 1;
                    }
                }
            }
            if unresolved > 0 {
                return Err(format!("{unresolved} program(s) not repaired"));
            }
            Ok(())
        }
        "status" => {
            reject_leftovers("client status", &rest)?;
            let resp = client.call(Value::Object(client_request("status")))?;
            for key in [
                "checks",
                "check_set_version",
                "check_set_key",
                "scans",
                "repairs",
                "cache_hits",
                "cache_entries",
                "corpus_projects",
                "deltas",
                "store_records",
            ] {
                if let Some(v) = resp.get(key) {
                    println!("{key}: {v}");
                }
            }
            if let Some(ready) = resp.get("ready").and_then(Value::as_bool) {
                println!("ready: {ready}");
            }
            if let Some(gauges) = resp.get("metrics").and_then(|m| m.get("gauges")) {
                if let Some(live) = gauges.get("heap.live_bytes").and_then(Value::as_u64) {
                    let peak = gauges
                        .get("heap.peak_bytes")
                        .and_then(Value::as_u64)
                        .unwrap_or(live);
                    println!("heap: {} live, {} peak", fmt_bytes(live), fmt_bytes(peak));
                }
            }
            let table = render_op_table(resp.get("rolling").unwrap_or(&Value::Null));
            if !table.is_empty() {
                println!();
                for line in table {
                    println!("{line}");
                }
            }
            Ok(())
        }
        "metrics" => {
            reject_leftovers("client metrics", &rest)?;
            let resp = client.call(Value::Object(client_request("metrics")))?;
            let page = resp
                .get("prometheus")
                .and_then(Value::as_str)
                .ok_or("metrics response missing the prometheus page")?;
            print!("{page}");
            Ok(())
        }
        "list-checks" => {
            reject_leftovers("client list-checks", &rest)?;
            let resp = client.call(Value::Object(client_request("list_checks")))?;
            for c in resp
                .get("checks")
                .and_then(Value::as_array)
                .into_iter()
                .flatten()
            {
                println!(
                    "{} [{}] {}",
                    c.get("fp").and_then(Value::as_str).unwrap_or("?"),
                    c.get("origin").and_then(Value::as_str).unwrap_or("?"),
                    c.get("check").and_then(Value::as_str).unwrap_or("?"),
                );
            }
            Ok(())
        }
        "explain" => {
            reject_unknown_flags("client explain", &rest)?;
            let [fp] = rest.as_slice() else {
                return Err("client explain requires exactly one 16-hex fingerprint".into());
            };
            let mut req = client_request("explain");
            req.insert("fp".into(), Value::String(fp.clone()));
            let resp = client.call(Value::Object(req))?;
            for key in [
                "fp",
                "check",
                "origin",
                "family",
                "support",
                "confidence_ppm",
                "seq",
            ] {
                if let Some(v) = resp.get(key) {
                    match v.as_str() {
                        Some(s) => println!("{key}: {s}"),
                        None => println!("{key}: {v}"),
                    }
                }
            }
            if let Some(insight) = resp.get("insight").and_then(Value::as_str) {
                println!("{insight}");
            }
            Ok(())
        }
        "delta" => {
            let mut upserts = Vec::new();
            while let Some(spec) = take_flag(&mut rest, "--upsert") {
                let (id, file) = spec
                    .split_once('=')
                    .ok_or(format!("--upsert expects ID=FILE, got {spec}"))?;
                let source = std::fs::read_to_string(file)
                    .map_err(|e| format!("cannot read {file}: {e}"))?;
                let mut entry = serde_json::Map::new();
                entry.insert("project".into(), Value::String(id.to_string()));
                entry.insert("source".into(), Value::String(source));
                upserts.push(Value::Object(entry));
            }
            let mut removals = Vec::new();
            while let Some(id) = take_flag(&mut rest, "--remove") {
                removals.push(Value::String(id));
            }
            reject_leftovers("client delta", &rest)?;
            if upserts.is_empty() && removals.is_empty() {
                return Err("client delta requires --upsert ID=FILE or --remove ID".into());
            }
            let mut req = client_request("submit_corpus_delta");
            req.insert("upsert".into(), Value::Array(upserts));
            req.insert("remove".into(), Value::Array(removals));
            let resp = client.call(Value::Object(req))?;
            for key in [
                "upserted",
                "removed",
                "corpus_projects",
                "types_rescored",
                "checks_added",
                "checks_updated",
                "checks_retired",
                "checks_rejected",
                "check_set_version",
            ] {
                if let Some(v) = resp.get(key) {
                    println!("{key}: {v}");
                }
            }
            Ok(())
        }
        "shutdown" => {
            reject_leftovers("client shutdown", &rest)?;
            client.call(Value::Object(client_request("shutdown")))?;
            println!("daemon shutting down");
            Ok(())
        }
        other => Err(format!(
            "client: unknown operation {other:?} (expected scan, repair, status, \
             metrics, list-checks, explain, delta, shutdown)"
        )),
    }
}

/// Formats a microsecond latency for dashboard tables.
fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{}.{}s", us / 1_000_000, us % 1_000_000 / 100_000)
    } else if us >= 1_000 {
        format!("{}.{}ms", us / 1_000, us % 1_000 / 100)
    } else {
        format!("{us}us")
    }
}

/// Formats a byte count for dashboard headers.
fn fmt_bytes(bytes: u64) -> String {
    if bytes >= 1 << 20 {
        format!("{}.{} MiB", bytes >> 20, ((bytes % (1 << 20)) * 10) >> 20)
    } else if bytes >= 1 << 10 {
        format!("{} KiB", bytes >> 10)
    } else {
        format!("{bytes} B")
    }
}

/// Renders milli-units (requests/s × 1000, errors per mille) as decimals.
fn fmt_milli(v: u64) -> String {
    format!("{}.{}", v / 1000, v % 1000 / 100)
}

fn fmt_permille(v: u64) -> String {
    format!("{}.{}", v / 10, v % 10)
}

/// Renders the per-op rolling-window table embedded in `status`/`metrics`
/// responses (`{"ops":{NAME:{"last_1m":{...},"last_1h":{...}}}}`). Empty
/// when the daemon has served nothing yet.
fn render_op_table(rolling: &serde_json::Value) -> Vec<String> {
    use zodiac_obs::WindowSummary;
    let mut lines = Vec::new();
    let Some(ops) = rolling.get("ops").and_then(serde_json::Value::as_object) else {
        return lines;
    };
    if ops.is_empty() {
        return lines;
    }
    lines.push(format!(
        "{:<20} {:>9} {:>6} {:>8} {:>8} {:>8} {:>8} {:>9}",
        "op", "1m req/s", "err%", "p50", "p95", "p99", "max", "1h req/s"
    ));
    for (name, windows) in ops {
        let null = serde_json::Value::Null;
        let m = WindowSummary::from_json(windows.get("last_1m").unwrap_or(&null));
        let h = WindowSummary::from_json(windows.get("last_1h").unwrap_or(&null));
        lines.push(format!(
            "{:<20} {:>9} {:>6} {:>8} {:>8} {:>8} {:>8} {:>9}",
            name,
            fmt_milli(m.rate_milli()),
            fmt_permille(m.error_permille()),
            fmt_us(m.p50_us),
            fmt_us(m.p95_us),
            fmt_us(m.p99_us),
            fmt_us(m.max_us),
            fmt_milli(h.rate_milli()),
        ));
    }
    lines
}

/// `zodiac top`: a refreshing terminal dashboard over a running daemon's
/// `metrics` op — per-op rolling windows, cumulative cache hit rate, live
/// heap, and the slowest recent request per op with its check fingerprints
/// (replayable via `zodiac client explain`).
fn cmd_top(args: &[String]) -> Result<(), String> {
    use serde_json::Value;
    let mut args = args.to_vec();
    let socket = take_flag(&mut args, "--socket").ok_or("top requires --socket PATH")?;
    let interval: u64 = take_flag(&mut args, "--interval")
        .map(|v| {
            v.parse()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or("--interval expects a number of seconds >= 1".to_string())
        })
        .transpose()?
        .unwrap_or(2);
    let frames: Option<u64> = take_flag(&mut args, "--frames")
        .map(|v| {
            v.parse()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or("--frames expects a number >= 1".to_string())
        })
        .transpose()?;
    reject_leftovers("top", &args)?;

    // A single still frame (--frames 1) never clears — it composes with
    // shell pipelines and the smoke tests; the refreshing dashboard
    // repaints from the top-left each tick.
    let clearing = frames != Some(1);
    let mut served = 0u64;
    loop {
        // Reconnect per frame: the dashboard survives a daemon restart by
        // picking up the new process on the next tick.
        let mut client = DaemonClient::connect(&socket)?;
        let resp = client.call(Value::Object(client_request("metrics")))?;
        let mut out = String::new();
        render_top_frame(&socket, &resp, &mut out);
        if clearing {
            print!("\x1b[2J\x1b[H");
        }
        println!("{out}");
        served += 1;
        if let Some(n) = frames {
            if served >= n {
                break;
            }
        }
        std::thread::sleep(std::time::Duration::from_secs(interval));
    }
    Ok(())
}

/// Builds one `zodiac top` frame from a `metrics` op response.
fn render_top_frame(socket: &str, resp: &serde_json::Value, out: &mut String) {
    use serde_json::Value;
    use std::fmt::Write;
    let ready = resp.get("ready").and_then(Value::as_bool).unwrap_or(false);
    let snapshot = resp.get("snapshot");
    let gauge = |name: &str| {
        snapshot
            .and_then(|s| s.get("gauges"))
            .and_then(|g| g.get(name))
            .and_then(Value::as_u64)
            .unwrap_or(0)
    };
    let counter = |name: &str| {
        snapshot
            .and_then(|s| s.get("counters"))
            .and_then(|c| c.get(name))
            .and_then(Value::as_u64)
            .unwrap_or(0)
    };
    let _ = writeln!(
        out,
        "zodiacd @ {socket} — {}, {} check(s) live",
        if ready { "ready" } else { "starting" },
        gauge("daemon.checks_live"),
    );
    let scans = counter("daemon.scans");
    let hits = counter("daemon.cache_hits");
    let _ = writeln!(
        out,
        "heap {} live / {} peak — scan cache {} entr(ies), {}% hit over {} scan(s)",
        fmt_bytes(gauge("heap.live_bytes")),
        fmt_bytes(gauge("heap.peak_bytes")),
        gauge("daemon.cache_entries"),
        (hits * 100).checked_div(scans).unwrap_or(0),
        scans,
    );
    let table = render_op_table(resp.get("rolling").unwrap_or(&Value::Null));
    if table.is_empty() {
        let _ = writeln!(out, "\n(no requests served yet)");
    } else {
        out.push('\n');
        for line in table {
            let _ = writeln!(out, "{line}");
        }
    }
    // The slowest retained request per op, replayable by fingerprint.
    let mut slow_lines = Vec::new();
    if let Some(ops) = resp.get("exemplars").and_then(Value::as_object) {
        for (op, list) in ops {
            let Some(e) = list.as_array().and_then(|l| l.first()) else {
                continue;
            };
            let latency = e.get("latency_us").and_then(Value::as_u64).unwrap_or(0);
            let span = e.get("span_id").and_then(Value::as_u64).unwrap_or(0);
            let fps: Vec<String> = e
                .get("fingerprints")
                .and_then(Value::as_array)
                .into_iter()
                .flatten()
                .filter_map(Value::as_u64)
                .map(|fp| format!("{fp:016x}"))
                .collect();
            slow_lines.push(format!(
                "  {:<20} {:>8}  span {span}{}",
                op,
                fmt_us(latency),
                if fps.is_empty() {
                    String::new()
                } else {
                    format!("  checks {}", fps.join(","))
                }
            ));
        }
    }
    if !slow_lines.is_empty() {
        let _ = writeln!(
            out,
            "\nslowest requests (replay checks with `zodiac client explain <fp>`):"
        );
        for line in slow_lines {
            let _ = writeln!(out, "{line}");
        }
    }
}
