//! Rendering semantic checks as deployment insights (§6, *use cases*).
//!
//! The paper proposes two downstream uses for validated checks beyond
//! scanning: feeding them to LLM program-synthesis workflows as a RAG
//! knowledge base, and "systematically bolstering IaC provider
//! documentation" by translating checks into natural language. This module
//! implements the translation: every check in the assertion language renders
//! as an English deployment insight, and a check set exports as a JSON-lines
//! knowledge base ready for retrieval.

use serde::Serialize;
use zodiac_kb::short_name;
use zodiac_model::Value;
use zodiac_spec::{Check, CmpOp, Expr, TypeSpec, Val};

/// A documentation entry for one validated check.
#[derive(Debug, Clone, Serialize)]
pub struct Insight {
    /// The check in assertion-language syntax.
    pub check: String,
    /// The English rendering.
    pub text: String,
    /// Resource types involved (short names).
    pub resource_types: Vec<String>,
}

/// Renders one check as an English deployment insight.
pub fn explain(check: &Check) -> String {
    let cond = explain_expr(&check.cond, check);
    let stmt = explain_expr(&check.stmt, check);
    format!("When {cond}, Azure requires that {stmt}.")
}

/// Builds the RAG knowledge-base entry for a check.
pub fn insight(check: &Check) -> Insight {
    Insight {
        check: check.to_string(),
        text: explain(check),
        resource_types: check
            .types()
            .iter()
            .map(|t| short_name(t).to_string())
            .collect(),
    }
}

/// Exports a check set as a JSON-lines knowledge base.
pub fn export_jsonl(checks: &[Check]) -> String {
    checks
        .iter()
        .map(|c| serde_json::to_string(&insight(c)).expect("insights serialise"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn noun(check: &Check, var: &str) -> String {
    let t = check.type_of(var).unwrap_or(var);
    let short = short_name(t);
    let article = match short.chars().next() {
        Some('A') | Some('E') | Some('I') | Some('O') | Some('U') => "an",
        _ => "a",
    };
    format!("{article} {short} `{var}`")
}

fn attr_phrase(check: &Check, var: &str, attr: &str) -> String {
    let t = check.type_of(var).unwrap_or(var);
    format!("the `{attr}` of the {} `{var}`", short_name(t))
}

fn value_phrase(v: &Value) -> String {
    match v {
        Value::Null => "unset".to_string(),
        Value::Bool(b) => format!("`{b}`"),
        Value::Int(n) => n.to_string(),
        Value::Str(s) => format!("`{s}`"),
        other => format!("`{}`", other.render()),
    }
}

fn tau_phrase(tau: &TypeSpec) -> String {
    match tau {
        TypeSpec::Is(t) => format!("{} resources", short_name(t)),
        TypeSpec::Not(t) => format!("resources other than {}", short_name(t)),
    }
}

fn val_phrase(v: &Val, check: &Check) -> String {
    match v {
        Val::Lit(value) => value_phrase(value),
        Val::Endpoint { var, attr } => attr_phrase(check, var, attr),
        Val::InDegree { var, tau } => {
            format!("the number of {} attached to `{var}`", tau_phrase(tau))
        }
        Val::OutDegree { var, tau } => {
            format!("the number of {} that `{var}` uses", tau_phrase(tau))
        }
        Val::Length(inner) => match inner.as_ref() {
            Val::Endpoint { var, attr } => {
                format!("the number of `{attr}` blocks of `{var}`")
            }
            other => format!("the length of {}", val_phrase(other, check)),
        },
    }
}

fn explain_expr(expr: &Expr, check: &Check) -> String {
    match expr {
        Expr::Conn {
            src,
            in_endpoint,
            dst,
            ..
        } => format!(
            "{} references {} through `{in_endpoint}`",
            noun(check, src),
            noun(check, dst)
        ),
        Expr::Path { src, dst } => format!(
            "{} (transitively) depends on {}",
            noun(check, src),
            noun(check, dst)
        ),
        Expr::CoConn { first, second } | Expr::CoPath { first, second } => format!(
            "{} and {}",
            explain_expr(first, check),
            explain_expr(second, check)
        ),
        Expr::Cmp {
            op,
            lhs,
            rhs,
            negated,
        } => {
            let l = val_phrase(lhs, check);
            let r = val_phrase(rhs, check);
            let core = match op {
                CmpOp::Eq => match rhs {
                    Val::Lit(Value::Null) => format!("{l} is unset"),
                    _ => format!("{l} equals {r}"),
                },
                CmpOp::Ne => match rhs {
                    Val::Lit(Value::Null) => format!("{l} is set"),
                    _ => format!("{l} differs from {r}"),
                },
                CmpOp::Le => format!("{l} is at most {r}"),
                CmpOp::Ge => format!("{l} is at least {r}"),
                CmpOp::Lt => format!("{l} is below {r}"),
                CmpOp::Gt => format!("{l} is above {r}"),
                CmpOp::Overlap => format!("{l} overlaps {r}"),
                CmpOp::Contain => format!("{l} contains {r}"),
            };
            if *negated {
                match op {
                    CmpOp::Overlap => format!("{l} does not overlap {r}"),
                    CmpOp::Contain => format!("{l} does not contain {r}"),
                    _ => format!("it is not the case that {core}"),
                }
            } else {
                core
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zodiac_spec::parse_check;

    #[test]
    fn explains_paper_examples() {
        let cases = [
            (
                "let r:SA in r.account_tier == 'Premium' => r.account_replication_type != 'GZRS'",
                "When the `account_tier` of the SA `r` equals `Premium`, Azure requires that \
                 the `account_replication_type` of the SA `r` differs from `GZRS`.",
            ),
            (
                "let r:VM in r.priority == 'Spot' => r.eviction_policy != null",
                "When the `priority` of the VM `r` equals `Spot`, Azure requires that \
                 the `eviction_policy` of the VM `r` is set.",
            ),
        ];
        for (src, expected) in cases {
            let check = parse_check(src).unwrap();
            assert_eq!(explain(&check), expected);
        }
    }

    #[test]
    fn explains_topological_checks() {
        let check = parse_check(
            "let r1:VM, r2:NIC in conn(r1.network_interface_ids -> r2.id) => r1.location == r2.location",
        )
        .unwrap();
        let text = explain(&check);
        assert!(text.contains("a VM `r1` references"), "{text}");
        assert!(text.contains("`location`"), "{text}");
    }

    #[test]
    fn explains_degree_checks() {
        let check = parse_check(
            "let r1:GW, r2:SUBNET in conn(r1.ip_configuration.subnet_id -> r2.id) => indegree(r2, !GW) == 0",
        )
        .unwrap();
        let text = explain(&check);
        assert!(
            text.contains("resources other than GW"),
            "negated type specifier should render: {text}"
        );
        assert!(text.contains("equals 0"), "{text}");
    }

    #[test]
    fn jsonl_export_is_line_per_check() {
        let checks: Vec<_> = [
            "let r:VM in r.priority == 'Spot' => r.eviction_policy != null",
            "let r:IP in r.sku == 'Standard' => r.allocation_method == 'Static'",
        ]
        .iter()
        .map(|s| parse_check(s).unwrap())
        .collect();
        let jsonl = export_jsonl(&checks);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert!(v["text"].as_str().unwrap().starts_with("When "));
            assert!(!v["resource_types"].as_array().unwrap().is_empty());
        }
    }
}
