//! Scanning user programs against validated checks (§5.5).
//!
//! Once validated, semantic checks become static guardrails: a program is
//! scanned *before* deployment, catching cloud-level violations at the
//! compilation stage. This is the downstream use case that found
//! misconfigurations in 85 repositories (2.0% of the paper's dataset) and
//! four buggy official usage examples.

use serde::Serialize;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};
use zodiac_graph::ResourceGraph;
use zodiac_kb::KnowledgeBase;
use zodiac_model::{Program, ResourceId};
use zodiac_spec::{violations, Check, EvalContext};

/// One semantic violation in a scanned program.
#[derive(Debug, Clone, Serialize)]
pub struct Violation {
    /// Index of the violated check.
    pub check_index: usize,
    /// The violated check, rendered.
    pub check: String,
    /// Resources bound by the violating instance.
    pub resources: Vec<ResourceId>,
}

/// Scan result over a corpus of programs.
#[derive(Debug, Clone, Default, Serialize)]
pub struct MisconfigReport {
    /// Programs scanned.
    pub scanned: usize,
    /// Programs with at least one violation.
    pub buggy_programs: usize,
    /// All violations, keyed by program index.
    pub violations: Vec<(usize, Vec<Violation>)>,
}

impl MisconfigReport {
    /// Fraction of scanned programs that violate at least one check.
    pub fn buggy_rate(&self) -> f64 {
        if self.scanned == 0 {
            0.0
        } else {
            self.buggy_programs as f64 / self.scanned as f64
        }
    }

    /// The checks most often violated, as `(check_index, violation_count)`
    /// sorted descending — the paper's "top-3 checks" that drove the GitHub
    /// search queries.
    pub fn top_checks(&self, n: usize) -> Vec<(usize, usize)> {
        let mut counts: std::collections::BTreeMap<usize, usize> = Default::default();
        for (_, vs) in &self.violations {
            for v in vs {
                *counts.entry(v.check_index).or_default() += 1;
            }
        }
        let mut out: Vec<(usize, usize)> = counts.into_iter().collect();
        out.sort_by_key(|o| std::cmp::Reverse(o.1));
        out.truncate(n);
        out
    }
}

/// Scans one program against a check set.
pub fn scan_program(program: &Program, checks: &[Check], kb: &KnowledgeBase) -> Vec<Violation> {
    let graph = ResourceGraph::build(program.clone());
    let ctx = EvalContext {
        graph: &graph,
        kb: Some(kb),
    };
    let mut out = Vec::new();
    for (i, check) in checks.iter().enumerate() {
        for v in violations(check, ctx) {
            out.push(Violation {
                check_index: i,
                check: check.to_string(),
                resources: v
                    .binding
                    .values()
                    .map(|&n| graph.resource(n).id())
                    .collect(),
            });
        }
    }
    out
}

/// Scans a corpus of programs. Identical programs (by canonical
/// fingerprint) are scanned once and served from a [`ScanCache`].
pub fn scan_corpus(programs: &[Program], checks: &[Check], kb: &KnowledgeBase) -> MisconfigReport {
    let cache = ScanCache::new();
    let key = check_set_key(checks);
    let mut report = MisconfigReport {
        scanned: programs.len(),
        ..Default::default()
    };
    for (idx, p) in programs.iter().enumerate() {
        let (vs, _) = cache.scan(p, checks, key, kb);
        if !vs.is_empty() {
            report.buggy_programs += 1;
            report.violations.push((idx, vs.as_ref().clone()));
        }
    }
    report
}

/// A stable 64-bit identity for a check set: FNV-1a over the per-check
/// canonical fingerprints in order. Used as the second half of the scan
/// memo key, so a cache survives check-set swaps without invalidation —
/// verdicts computed under an old set simply stop being addressed.
pub fn check_set_key(checks: &[Check]) -> u64 {
    zodiac_spec::check_set_key(checks)
}

const SCAN_CACHE_SHARDS: usize = 16;

/// A sharded, thread-safe memo of scan verdicts, keyed by (canonical
/// program fingerprint, check-set key).
///
/// Scanning is a pure function of the program and the check set, so two
/// submissions of the same infrastructure — same resources in any
/// declaration order — share one computed verdict. One instance backs both
/// the in-process [`scan_corpus`] dedup and `zodiacd`'s serving cache,
/// where the memo is what turns repeat submissions into O(1) lookups.
#[derive(Debug)]
pub struct ScanCache {
    shards: Vec<Mutex<ScanShard>>,
}

/// One cache shard: verdicts keyed by (program fingerprint, check-set key).
type ScanShard = HashMap<(u128, u64), Arc<Vec<Violation>>>;

impl Default for ScanCache {
    fn default() -> Self {
        ScanCache::new()
    }
}

impl ScanCache {
    /// An empty cache.
    pub fn new() -> Self {
        ScanCache {
            shards: (0..SCAN_CACHE_SHARDS).map(|_| Mutex::default()).collect(),
        }
    }

    fn shard(&self, program_fp: u128) -> &Mutex<ScanShard> {
        &self.shards[(program_fp as usize) % SCAN_CACHE_SHARDS]
    }

    /// Scans a program against a check set, serving a memoized verdict when
    /// this (program, check set) pair has been scanned before. Returns the
    /// verdict and whether it was served from the cache.
    pub fn scan(
        &self,
        program: &Program,
        checks: &[Check],
        check_set_key: u64,
        kb: &KnowledgeBase,
    ) -> (Arc<Vec<Violation>>, bool) {
        let fp = zodiac_deployer::fingerprint(program);
        self.scan_fingerprinted(fp, program, checks, check_set_key, kb)
    }

    /// [`ScanCache::scan`] with the program fingerprint precomputed by the
    /// caller (the daemon fingerprints once per request for logging).
    pub fn scan_fingerprinted(
        &self,
        program_fp: u128,
        program: &Program,
        checks: &[Check],
        check_set_key: u64,
        kb: &KnowledgeBase,
    ) -> (Arc<Vec<Violation>>, bool) {
        let key = (program_fp, check_set_key);
        if let Some(hit) = self.lookup(key) {
            return (hit, true);
        }
        let verdict = Arc::new(scan_program(program, checks, kb));
        let mut shard = self
            .shard(program_fp)
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        // Two threads may race to compute the same verdict; both compute
        // the same pure function, so last-write-wins is harmless.
        shard.insert(key, verdict.clone());
        (verdict, false)
    }

    fn lookup(&self, key: (u128, u64)) -> Option<Arc<Vec<Violation>>> {
        self.shard(key.0)
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
            .cloned()
    }

    /// Number of memoized verdicts.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).len())
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every memoized verdict.
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().unwrap_or_else(PoisonError::into_inner).clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zodiac_model::Resource;
    use zodiac_spec::parse_check;

    #[test]
    fn scanner_finds_spot_violation() {
        let checks =
            vec![
                parse_check("let r:VM in r.priority == 'Spot' => r.eviction_policy != null")
                    .unwrap(),
            ];
        let kb = zodiac_kb::azure_kb();
        let bad = Program::new()
            .with(Resource::new("azurerm_linux_virtual_machine", "vm").with("priority", "Spot"));
        let good = Program::new().with(
            Resource::new("azurerm_linux_virtual_machine", "vm")
                .with("priority", "Spot")
                .with("eviction_policy", "Delete"),
        );
        let report = scan_corpus(&[bad, good], &checks, &kb);
        assert_eq!(report.scanned, 2);
        assert_eq!(report.buggy_programs, 1);
        assert_eq!(report.top_checks(3), vec![(0, 1)]);
        assert!((report.buggy_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn cache_memoizes_identical_programs() {
        let checks =
            vec![
                parse_check("let r:VM in r.priority == 'Spot' => r.eviction_policy != null")
                    .unwrap(),
            ];
        let kb = zodiac_kb::azure_kb();
        let key = check_set_key(&checks);
        let bad = Program::new()
            .with(Resource::new("azurerm_linux_virtual_machine", "vm").with("priority", "Spot"));
        let cache = ScanCache::new();
        let (first, cached_first) = cache.scan(&bad, &checks, key, &kb);
        let (second, cached_second) = cache.scan(&bad.clone(), &checks, key, &kb);
        assert!(!cached_first);
        assert!(cached_second);
        assert_eq!(first.len(), 1);
        assert!(Arc::ptr_eq(&first, &second), "memo must share the verdict");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cache_distinguishes_check_sets() {
        let kb = zodiac_kb::azure_kb();
        let spot =
            vec![
                parse_check("let r:VM in r.priority == 'Spot' => r.eviction_policy != null")
                    .unwrap(),
            ];
        let none: Vec<zodiac_spec::Check> = Vec::new();
        assert_ne!(check_set_key(&spot), check_set_key(&none));
        let bad = Program::new()
            .with(Resource::new("azurerm_linux_virtual_machine", "vm").with("priority", "Spot"));
        let cache = ScanCache::new();
        let (with, _) = cache.scan(&bad, &spot, check_set_key(&spot), &kb);
        let (without, cached) = cache.scan(&bad, &none, check_set_key(&none), &kb);
        assert!(!cached, "different check set must miss");
        assert_eq!(with.len(), 1);
        assert!(without.is_empty());
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn cache_hits_across_declaration_order() {
        let checks =
            vec![
                parse_check("let r:VM in r.priority == 'Spot' => r.eviction_policy != null")
                    .unwrap(),
            ];
        let kb = zodiac_kb::azure_kb();
        let key = check_set_key(&checks);
        let vm = Resource::new("azurerm_linux_virtual_machine", "vm").with("priority", "Spot");
        let other = Resource::new("azurerm_subnet", "s");
        let p1 = Program::new().with(vm.clone()).with(other.clone());
        let p2 = Program::new().with(other).with(vm);
        let cache = ScanCache::new();
        cache.scan(&p1, &checks, key, &kb);
        let (_, cached) = cache.scan(&p2, &checks, key, &kb);
        assert!(cached, "canonical fingerprint ignores declaration order");
    }
}
