//! Scanning user programs against validated checks (§5.5).
//!
//! Once validated, semantic checks become static guardrails: a program is
//! scanned *before* deployment, catching cloud-level violations at the
//! compilation stage. This is the downstream use case that found
//! misconfigurations in 85 repositories (2.0% of the paper's dataset) and
//! four buggy official usage examples.

use serde::Serialize;
use zodiac_graph::ResourceGraph;
use zodiac_kb::KnowledgeBase;
use zodiac_model::{Program, ResourceId};
use zodiac_spec::{violations, Check, EvalContext};

/// One semantic violation in a scanned program.
#[derive(Debug, Clone, Serialize)]
pub struct Violation {
    /// Index of the violated check.
    pub check_index: usize,
    /// The violated check, rendered.
    pub check: String,
    /// Resources bound by the violating instance.
    pub resources: Vec<ResourceId>,
}

/// Scan result over a corpus of programs.
#[derive(Debug, Clone, Default, Serialize)]
pub struct MisconfigReport {
    /// Programs scanned.
    pub scanned: usize,
    /// Programs with at least one violation.
    pub buggy_programs: usize,
    /// All violations, keyed by program index.
    pub violations: Vec<(usize, Vec<Violation>)>,
}

impl MisconfigReport {
    /// Fraction of scanned programs that violate at least one check.
    pub fn buggy_rate(&self) -> f64 {
        if self.scanned == 0 {
            0.0
        } else {
            self.buggy_programs as f64 / self.scanned as f64
        }
    }

    /// The checks most often violated, as `(check_index, violation_count)`
    /// sorted descending — the paper's "top-3 checks" that drove the GitHub
    /// search queries.
    pub fn top_checks(&self, n: usize) -> Vec<(usize, usize)> {
        let mut counts: std::collections::BTreeMap<usize, usize> = Default::default();
        for (_, vs) in &self.violations {
            for v in vs {
                *counts.entry(v.check_index).or_default() += 1;
            }
        }
        let mut out: Vec<(usize, usize)> = counts.into_iter().collect();
        out.sort_by_key(|o| std::cmp::Reverse(o.1));
        out.truncate(n);
        out
    }
}

/// Scans one program against a check set.
pub fn scan_program(program: &Program, checks: &[Check], kb: &KnowledgeBase) -> Vec<Violation> {
    let graph = ResourceGraph::build(program.clone());
    let ctx = EvalContext {
        graph: &graph,
        kb: Some(kb),
    };
    let mut out = Vec::new();
    for (i, check) in checks.iter().enumerate() {
        for v in violations(check, ctx) {
            out.push(Violation {
                check_index: i,
                check: check.to_string(),
                resources: v
                    .binding
                    .values()
                    .map(|&n| graph.resource(n).id())
                    .collect(),
            });
        }
    }
    out
}

/// Scans a corpus of programs.
pub fn scan_corpus(programs: &[Program], checks: &[Check], kb: &KnowledgeBase) -> MisconfigReport {
    let mut report = MisconfigReport {
        scanned: programs.len(),
        ..Default::default()
    };
    for (idx, p) in programs.iter().enumerate() {
        let vs = scan_program(p, checks, kb);
        if !vs.is_empty() {
            report.buggy_programs += 1;
            report.violations.push((idx, vs));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use zodiac_model::Resource;
    use zodiac_spec::parse_check;

    #[test]
    fn scanner_finds_spot_violation() {
        let checks =
            vec![
                parse_check("let r:VM in r.priority == 'Spot' => r.eviction_policy != null")
                    .unwrap(),
            ];
        let kb = zodiac_kb::azure_kb();
        let bad = Program::new()
            .with(Resource::new("azurerm_linux_virtual_machine", "vm").with("priority", "Spot"));
        let good = Program::new().with(
            Resource::new("azurerm_linux_virtual_machine", "vm")
                .with("priority", "Spot")
                .with("eviction_policy", "Delete"),
        );
        let report = scan_corpus(&[bad, good], &checks, &kb);
        assert_eq!(report.scanned, 2);
        assert_eq!(report.buggy_programs, 1);
        assert_eq!(report.top_checks(3), vec![(0, 1)]);
        assert!((report.buggy_rate() - 0.5).abs() < 1e-9);
    }
}
