//! Post-hoc trace analysis: candidate lifecycle ledgers and run reports.
//!
//! A pipeline run recorded with `--trace-out` leaves a schema-v2 JSON-lines
//! file: structured spans (id/parent/attrs), per-candidate lifecycle events
//! keyed by check fingerprint, and a final metrics snapshot. This module
//! reads such a file back and answers the two questions aggregates cannot:
//!
//! * **why this one** — [`Trace::ledger_for`] reconstructs the complete
//!   lifecycle of a single candidate (`zodiac explain <check> --trace f`);
//! * **where the time went** — [`render_report`] folds the span tree into a
//!   funnel table plus a top-N *self-time* latency attribution
//!   (`zodiac report --trace f`).
//!
//! The loaded trace can also be re-exported as Chrome/Perfetto trace-event
//! JSON ([`Trace::to_perfetto_json`]) for timeline inspection in
//! `ui.perfetto.dev`.

use serde_json::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;
use zodiac_obs::{chrome_trace_json, AttrValue, TraceInstant, TraceSpan};

/// One structured span read back from a trace file.
#[derive(Debug, Clone)]
pub struct SpanEntry {
    /// Span id (0 for legacy identity-less span lines).
    pub id: u64,
    /// Parent span id, 0 for roots.
    pub parent: u64,
    /// Thread ordinal.
    pub tid: u64,
    /// Span path.
    pub path: String,
    /// Start offset from the trace epoch, microseconds.
    pub ts_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Attributes: key → rendered value (integers render bare).
    pub attrs: Vec<(String, String)>,
}

/// One lifecycle event read back from a trace file.
#[derive(Debug, Clone)]
pub struct LedgerEvent {
    /// Candidate fingerprint.
    pub fingerprint: u64,
    /// Offset from the trace epoch, microseconds.
    pub ts_us: u64,
    /// Event kind (`mined`, `filter_verdict`, `scheduled`,
    /// `deploy_outcome`, `validated`, `demoted`).
    pub kind: String,
    /// Remaining fields: key → rendered value, in wire order.
    pub fields: Vec<(String, String)>,
}

impl LedgerEvent {
    /// A named field's rendered value, if present.
    pub fn field(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A parsed schema-v2 trace file.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Schema version from the header line (0 for headerless legacy files).
    pub schema: u64,
    /// Structured spans, in record order.
    pub spans: Vec<SpanEntry>,
    /// Lifecycle events, in record order.
    pub events: Vec<LedgerEvent>,
}

/// Renders a JSON scalar the way ledgers display it (strings bare, no
/// quotes; everything else via the JSON encoding).
fn render_scalar(v: &Value) -> String {
    match v.as_str() {
        Some(s) => s.to_string(),
        None => serde_json::to_string(v).unwrap_or_default(),
    }
}

impl Trace {
    /// Loads a trace from a JSON-lines file.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Trace> {
        let text = fs::read_to_string(path)?;
        Ok(Trace::parse(&text))
    }

    /// Parses trace text (one JSON object per line; unparseable or unknown
    /// lines are skipped — traces are best-effort output).
    pub fn parse(text: &str) -> Trace {
        let mut trace = Trace::default();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Ok(v) = serde_json::from_str::<Value>(line) else {
                continue;
            };
            match v.get("event").and_then(|e| e.as_str()) {
                Some("trace") => {
                    trace.schema = v.get("schema").and_then(|s| s.as_u64()).unwrap_or(0);
                }
                Some("span") => {
                    let attrs = v
                        .get("attrs")
                        .and_then(|a| a.as_object())
                        .map(|m| {
                            m.iter()
                                .map(|(k, val)| (k.clone(), render_scalar(val)))
                                .collect()
                        })
                        .unwrap_or_default();
                    trace.spans.push(SpanEntry {
                        id: v.get("id").and_then(|x| x.as_u64()).unwrap_or(0),
                        parent: v.get("parent").and_then(|x| x.as_u64()).unwrap_or(0),
                        tid: v.get("tid").and_then(|x| x.as_u64()).unwrap_or(1),
                        path: v
                            .get("path")
                            .and_then(|p| p.as_str())
                            .unwrap_or_default()
                            .to_string(),
                        ts_us: v.get("ts").and_then(|x| x.as_u64()).unwrap_or(0),
                        dur_us: v.get("us").and_then(|x| x.as_u64()).unwrap_or(0),
                        attrs,
                    });
                }
                Some("lifecycle") => {
                    let fingerprint = v
                        .get("fp")
                        .and_then(|f| f.as_str())
                        .and_then(|s| u64::from_str_radix(s, 16).ok())
                        .unwrap_or(0);
                    let mut fields = Vec::new();
                    if let Some(obj) = v.as_object() {
                        for (k, val) in obj {
                            if matches!(k.as_str(), "event" | "fp" | "ts" | "kind") {
                                continue;
                            }
                            fields.push((k.clone(), render_scalar(val)));
                        }
                    }
                    trace.events.push(LedgerEvent {
                        fingerprint,
                        ts_us: v.get("ts").and_then(|x| x.as_u64()).unwrap_or(0),
                        kind: v
                            .get("kind")
                            .and_then(|kv| kv.as_str())
                            .unwrap_or_default()
                            .to_string(),
                        fields,
                    });
                }
                _ => {}
            }
        }
        trace
    }

    /// All lifecycle events for one candidate, in record order.
    pub fn ledger_for(&self, fingerprint: u64) -> Vec<&LedgerEvent> {
        self.events
            .iter()
            .filter(|e| e.fingerprint == fingerprint)
            .collect()
    }

    /// Fingerprints of every candidate whose ledger ends in a `demoted`
    /// event, sorted.
    pub fn demoted_fingerprints(&self) -> Vec<u64> {
        let mut last: BTreeMap<u64, &str> = BTreeMap::new();
        for e in &self.events {
            last.insert(e.fingerprint, &e.kind);
        }
        last.into_iter()
            .filter(|(_, kind)| *kind == "demoted")
            .map(|(fp, _)| fp)
            .collect()
    }

    /// Re-exports the loaded trace as Chrome/Perfetto trace-event JSON.
    pub fn to_perfetto_json(&self) -> String {
        let spans: Vec<TraceSpan> = self
            .spans
            .iter()
            .map(|s| TraceSpan {
                id: s.id,
                parent: s.parent,
                tid: s.tid,
                name: s.path.clone(),
                ts_us: s.ts_us,
                dur_us: s.dur_us,
                attrs: s
                    .attrs
                    .iter()
                    .map(|(k, v)| {
                        let value = match v.parse::<u64>() {
                            Ok(n) => AttrValue::U64(n),
                            Err(_) => AttrValue::Str(v.clone()),
                        };
                        (k.clone(), value)
                    })
                    .collect(),
            })
            .collect();
        let instants: Vec<TraceInstant> = self
            .events
            .iter()
            .map(|e| {
                let mut args = vec![("fp".to_string(), format!("\"{:016x}\"", e.fingerprint))];
                for (k, v) in &e.fields {
                    let enc = match v.parse::<u64>() {
                        Ok(n) => n.to_string(),
                        Err(_) if v == "true" || v == "false" => v.clone(),
                        Err(_) => {
                            serde_json::to_string(&Value::String(v.clone())).unwrap_or_default()
                        }
                    };
                    args.push((k.clone(), enc));
                }
                TraceInstant {
                    name: e.kind.clone(),
                    tid: 1,
                    ts_us: e.ts_us,
                    args,
                }
            })
            .collect();
        chrome_trace_json(&spans, &instants)
    }
}

/// Resolves an `explain` argument to a fingerprint: a 16-digit hex string
/// is taken verbatim, anything else must parse as a check (whose canonical
/// fingerprint is used).
pub fn resolve_fingerprint(arg: &str) -> Result<u64, String> {
    let looks_hex = arg.len() == 16 && arg.bytes().all(|b| b.is_ascii_hexdigit());
    if looks_hex {
        return u64::from_str_radix(arg, 16).map_err(|e| e.to_string());
    }
    match zodiac_spec::parse_check(arg) {
        Ok(check) => Ok(check.fingerprint()),
        Err(e) => Err(format!(
            "not a 16-hex fingerprint and not a parseable check: {e:?}"
        )),
    }
}

/// Renders one candidate's lifecycle ledger as human-readable lines.
pub fn render_ledger(fingerprint: u64, events: &[&LedgerEvent]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "candidate {fingerprint:016x}");
    if events.is_empty() {
        out.push_str("  (no lifecycle events in this trace)\n");
        return out;
    }
    for e in events {
        let detail = e
            .fields
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(" ");
        let _ = writeln!(
            out,
            "  {:>12.3}ms  {:<16} {}",
            e.ts_us as f64 / 1000.0,
            e.kind,
            detail
        );
    }
    // The verdict comes from the last *terminal* event: probes recorded
    // after a `validated` (e.g. unsuccessful counterexample deployments)
    // do not reopen the candidate.
    let terminal = events.iter().rev().find(|e| {
        matches!(
            e.kind.as_str(),
            "validated" | "demoted" | "repair_accepted" | "repair_rejected"
        ) || (e.kind == "filter_verdict" && e.field("kept") == Some("false"))
    });
    let verdict = match terminal {
        Some(e) if e.kind == "validated" => "kept (validated)".to_string(),
        Some(e) if e.kind == "demoted" => format!(
            "demoted (reason: {})",
            e.field("reason").unwrap_or("unknown")
        ),
        Some(e) if e.kind == "repair_accepted" => format!(
            "repair accepted ({} edit(s))",
            e.field("edits").unwrap_or("?")
        ),
        Some(e) if e.kind == "repair_rejected" => format!(
            "repair rejected at L{} ({})",
            e.field("layer").unwrap_or("?"),
            e.field("reason").unwrap_or("unknown")
        ),
        Some(e) => format!(
            "filtered out (rule: {})",
            e.field("rule").unwrap_or("unknown")
        ),
        // A candidate that reached the scheduler but has no terminal verdict
        // was cut off mid-validation (early exit, crash, or a still-running
        // pipeline) — that is an unresolved candidate, not a broken ledger.
        None if events.iter().any(|e| e.kind == "scheduled") => format!(
            "in flight / unresolved (scheduled, last event: {})",
            events[events.len() - 1].kind.as_str()
        ),
        // Fingerprints that appear only in post-validation events — daemon
        // serving verdicts, or a repair request cut off mid-oracle — carry a
        // legitimately partial lifecycle: the candidate's mine/validate
        // history lives in an earlier trace, not this one.
        None if events.iter().all(|e| {
            matches!(
                e.kind.as_str(),
                "served" | "repair_proposed" | "oracle_verdict"
            )
        }) =>
        {
            format!(
                "partial lifecycle (post-validation events only, last: {})",
                events[events.len() - 1].kind.as_str()
            )
        }
        None => format!(
            "open (last event: {})",
            events[events.len() - 1].kind.as_str()
        ),
    };
    let _ = writeln!(out, "  verdict: {verdict}");
    out
}

/// Funnel + latency report rendered from a recorded trace.
pub fn render_report(trace: &Trace, top: usize) -> String {
    let mut out = String::new();

    // ---- funnel: lifecycle event counts in pipeline order --------------
    let count = |kind: &str| trace.events.iter().filter(|e| e.kind == kind).count();
    let count_field = |kind: &str, key: &str, value: &str| {
        trace
            .events
            .iter()
            .filter(|e| e.kind == kind && e.field(key) == Some(value))
            .count()
    };
    let distinct: BTreeMap<u64, ()> = trace.events.iter().map(|e| (e.fingerprint, ())).collect();
    out.push_str("funnel (from lifecycle events):\n");
    let _ = writeln!(
        out,
        "  {:<40} {:>8}",
        "candidates (distinct fingerprints)",
        distinct.len()
    );
    let rows: &[(&str, usize)] = &[
        ("mined", count("mined")),
        (
            "  killed: min_confidence",
            count_field("filter_verdict", "rule", "min_confidence"),
        ),
        (
            "  killed: min_lift",
            count_field("filter_verdict", "rule", "min_lift"),
        ),
        (
            "  kept: statistical",
            count_field("filter_verdict", "rule", "statistical"),
        ),
        (
            "  kept: oracle",
            count_field("filter_verdict", "rule", "oracle"),
        ),
        ("scheduled", count("scheduled")),
        ("deploy probes", count("deploy_outcome")),
        (
            "  fp probes",
            count_field("deploy_outcome", "polarity", "fp_probe"),
        ),
        (
            "  tp probes",
            count_field("deploy_outcome", "polarity", "tp_probe"),
        ),
        (
            "  counterexample probes",
            count_field("deploy_outcome", "polarity", "counterexample"),
        ),
        ("  cached", count_field("deploy_outcome", "cached", "true")),
        ("validated", count("validated")),
        ("demoted", count("demoted")),
        (
            "  by counterexample",
            count_field("demoted", "reason", "counterexample"),
        ),
        (
            "  deployable",
            count_field("demoted", "reason", "deployable"),
        ),
        (
            "  unsatisfiable",
            count_field("demoted", "reason", "unsatisfiable"),
        ),
        (
            "  no positive case",
            count_field("demoted", "reason", "no_positive_case"),
        ),
        (
            "  not applicable",
            count_field("demoted", "reason", "not_applicable"),
        ),
    ];
    for (label, n) in rows {
        let _ = writeln!(out, "  {label:<40} {n:>8}");
    }
    // Serving traces (zodiacd) additionally carry per-verdict events;
    // batch-pipeline reports stay unchanged when none are present.
    if count("served") > 0 {
        let _ = writeln!(
            out,
            "  {:<40} {:>8}",
            "served (daemon verdicts)",
            count("served")
        );
        let _ = writeln!(
            out,
            "  {:<40} {:>8}",
            "  from memo cache",
            count_field("served", "cached", "true")
        );
    }
    // Repair traces additionally carry the oracle funnel; scan-only
    // reports stay unchanged when no repair was attempted.
    if count("repair_proposed") > 0 {
        out.push_str("repair funnel (from lifecycle events):\n");
        let repair_rows: &[(&str, usize)] = &[
            ("repairs proposed", count("repair_proposed")),
            ("oracle verdicts", count("oracle_verdict")),
            (
                "  L1 deploy-succeeds",
                count_field("oracle_verdict", "layer", "1"),
            ),
            (
                "  L2 checks-pass",
                count_field("oracle_verdict", "layer", "2"),
            ),
            (
                "  L3 intent-preserved",
                count_field("oracle_verdict", "layer", "3"),
            ),
            ("accepted", count("repair_accepted")),
            ("rejected", count("repair_rejected")),
            (
                "  at L1 (deploy failed)",
                count_field("repair_rejected", "layer", "1"),
            ),
            (
                "  at L2 (violations remain)",
                count_field("repair_rejected", "layer", "2"),
            ),
            (
                "  at L3 (deceptive fix)",
                count_field("repair_rejected", "layer", "3"),
            ),
        ];
        for (label, n) in repair_rows {
            let _ = writeln!(out, "  {label:<40} {n:>8}");
        }
    }

    // ---- latency attribution: per-path self time -----------------------
    // Self time = a span's duration minus the duration of its direct
    // children, so nested stages don't double-count their parents.
    let mut child_dur: BTreeMap<u64, u64> = BTreeMap::new();
    for s in &trace.spans {
        if s.parent != 0 {
            *child_dur.entry(s.parent).or_default() += s.dur_us;
        }
    }
    struct PathAgg {
        count: u64,
        total_us: u64,
        self_us: u64,
    }
    let mut by_path: BTreeMap<&str, PathAgg> = BTreeMap::new();
    for s in &trace.spans {
        let children = child_dur.get(&s.id).copied().unwrap_or(0);
        let agg = by_path.entry(s.path.as_str()).or_insert(PathAgg {
            count: 0,
            total_us: 0,
            self_us: 0,
        });
        agg.count += 1;
        agg.total_us += s.dur_us;
        agg.self_us += s.dur_us.saturating_sub(children);
    }
    let mut ranked: Vec<(&str, PathAgg)> = by_path.into_iter().collect();
    ranked.sort_by(|a, b| b.1.self_us.cmp(&a.1.self_us).then(a.0.cmp(b.0)));
    let total_self: u64 = ranked.iter().map(|(_, a)| a.self_us).sum();
    let shown = ranked.len().min(top.max(1));
    let _ = writeln!(
        out,
        "\nlatency attribution (top {} of {} span paths, by self time):",
        shown,
        ranked.len()
    );
    let _ = writeln!(
        out,
        "  {:<40} {:>7} {:>12} {:>12} {:>6}",
        "path", "count", "self ms", "total ms", "self%"
    );
    for (path, agg) in ranked.iter().take(shown) {
        let pct = if total_self == 0 {
            0.0
        } else {
            agg.self_us as f64 * 100.0 / total_self as f64
        };
        let _ = writeln!(
            out,
            "  {:<40} {:>7} {:>12.3} {:>12.3} {:>5.1}%",
            path,
            agg.count,
            agg.self_us as f64 / 1000.0,
            agg.total_us as f64 / 1000.0,
            pct
        );
    }
    if shown < ranked.len() {
        let hidden: u64 = ranked.iter().skip(shown).map(|(_, a)| a.self_us).sum();
        let _ = writeln!(
            out,
            "  {:<40} {:>7} {:>12.3}",
            "(remaining paths)",
            ranked.len() - shown,
            hidden as f64 / 1000.0
        );
    }

    // ---- wave attribution: where the deploy time went, per wave --------
    // The scheduler stamps each batched deploy with a `pipeline/.../wave`
    // span carrying wave index, width (candidates), batch size (programs)
    // and the wave's max conflict degree. Grouping by wave index shows
    // whether latency is dominated by a few wide waves or a long tail of
    // conflict-serialised singletons.
    let attr = |s: &SpanEntry, key: &str| -> Option<u64> {
        s.attrs
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.parse().ok())
    };
    struct WaveAgg {
        spans: u64,
        width: u64,
        batch: u64,
        degree: u64,
        dur_us: u64,
    }
    let mut by_wave: BTreeMap<u64, WaveAgg> = BTreeMap::new();
    for s in &trace.spans {
        if !s.path.ends_with("/wave") {
            continue;
        }
        let Some(wave) = attr(s, "wave") else {
            continue;
        };
        let agg = by_wave.entry(wave).or_insert(WaveAgg {
            spans: 0,
            width: 0,
            batch: 0,
            degree: 0,
            dur_us: 0,
        });
        agg.spans += 1;
        agg.width += attr(s, "width").unwrap_or(0);
        agg.batch += attr(s, "batch").unwrap_or(0);
        agg.degree = agg.degree.max(attr(s, "degree").unwrap_or(0));
        agg.dur_us += s.dur_us;
    }
    if !by_wave.is_empty() {
        let wave_total: u64 = by_wave.values().map(|a| a.dur_us).sum();
        // Like the latency section, cap the table at the top N waves by
        // deploy time — a conflict-heavy run can have hundreds of
        // singleton waves and the slow ones are the actionable ones.
        let mut ranked: Vec<(u64, WaveAgg)> = by_wave.into_iter().collect();
        ranked.sort_by(|a, b| b.1.dur_us.cmp(&a.1.dur_us).then(a.0.cmp(&b.0)));
        let shown = ranked.len().min(top.max(1));
        let _ = writeln!(
            out,
            "\nwave attribution (top {} of {} waves by deploy time, {:.3}ms total):",
            shown,
            ranked.len(),
            wave_total as f64 / 1000.0
        );
        let _ = writeln!(
            out,
            "  {:>6} {:>7} {:>7} {:>7} {:>12} {:>6}",
            "wave", "width", "batch", "degree", "ms", "time%"
        );
        for (wave, agg) in ranked.iter().take(shown) {
            let pct = if wave_total == 0 {
                0.0
            } else {
                agg.dur_us as f64 * 100.0 / wave_total as f64
            };
            let _ = writeln!(
                out,
                "  {:>6} {:>7} {:>7} {:>7} {:>12.3} {:>5.1}%",
                wave,
                agg.width,
                agg.batch,
                agg.degree,
                agg.dur_us as f64 / 1000.0,
                pct
            );
        }
        if shown < ranked.len() {
            let rest: u64 = ranked.iter().skip(shown).map(|(_, a)| a.dur_us).sum();
            let _ = writeln!(
                out,
                "  {:>6} {:>7} {:>7} {:>7} {:>12.3}",
                "(rest)",
                ranked.len() - shown,
                "",
                "",
                rest as f64 / 1000.0
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{"event":"trace","schema":2}
{"event":"span","id":1,"tid":1,"path":"pipeline","ts":0,"us":1000}
{"event":"span","id":2,"parent":1,"tid":1,"path":"pipeline/mining","ts":10,"us":400}
{"event":"span","id":3,"parent":1,"tid":1,"path":"pipeline/validation/iter","ts":420,"us":500,"attrs":{"iter":0,"open":3}}
{"event":"span","id":4,"parent":3,"tid":1,"path":"pipeline/validation/wave","ts":430,"us":300,"attrs":{"wave":0,"width":2,"batch":5,"degree":1}}
{"event":"span","id":5,"parent":3,"tid":1,"path":"pipeline/validation/wave","ts":740,"us":100,"attrs":{"wave":1,"width":1,"batch":2,"degree":3}}
{"event":"lifecycle","fp":"00000000000000aa","ts":5,"kind":"mined","template":"intra/eq-eq","support":12,"confidence_ppm":990000}
{"event":"lifecycle","fp":"00000000000000aa","ts":6,"kind":"filter_verdict","rule":"statistical","kept":true}
{"event":"lifecycle","fp":"00000000000000aa","ts":430,"kind":"scheduled","wave":0,"conflicts":2}
{"event":"lifecycle","fp":"00000000000000aa","ts":600,"kind":"deploy_outcome","polarity":"tp_probe","success":false,"phase":"plugin checks","rule":"R9","cached":false}
{"event":"lifecycle","fp":"00000000000000aa","ts":610,"kind":"validated","via_group":false}
{"event":"lifecycle","fp":"00000000000000aa","ts":900,"kind":"demoted","reason":"counterexample"}
{"event":"lifecycle","fp":"00000000000000bb","ts":7,"kind":"mined","template":"intra/eq-ne","support":4,"confidence_ppm":930000}
{"event":"lifecycle","fp":"00000000000000bb","ts":8,"kind":"filter_verdict","rule":"min_lift","kept":false}
{"event":"lifecycle","fp":"00000000000000cc","ts":9,"kind":"mined","template":"intra/eq-eq","support":6,"confidence_ppm":950000}
{"event":"lifecycle","fp":"00000000000000cc","ts":435,"kind":"scheduled","wave":1,"conflicts":0}
{"event":"lifecycle","fp":"00000000000000e1","ts":1000,"kind":"repair_proposed","program":"000000000000cafe","edits":1}
{"event":"lifecycle","fp":"00000000000000e1","ts":1001,"kind":"oracle_verdict","layer":1,"pass":true}
{"event":"lifecycle","fp":"00000000000000e1","ts":1002,"kind":"oracle_verdict","layer":2,"pass":true}
{"event":"lifecycle","fp":"00000000000000e1","ts":1003,"kind":"oracle_verdict","layer":3,"pass":true}
{"event":"lifecycle","fp":"00000000000000e1","ts":1004,"kind":"repair_accepted","edits":1}
{"event":"lifecycle","fp":"00000000000000e2","ts":1010,"kind":"repair_proposed","program":"000000000000beef","edits":2}
{"event":"lifecycle","fp":"00000000000000e2","ts":1011,"kind":"oracle_verdict","layer":1,"pass":true}
{"event":"lifecycle","fp":"00000000000000e2","ts":1012,"kind":"oracle_verdict","layer":2,"pass":true}
{"event":"lifecycle","fp":"00000000000000e2","ts":1013,"kind":"oracle_verdict","layer":3,"pass":false,"detail":"deleted-resource: repair deletes 'vm'"}
{"event":"lifecycle","fp":"00000000000000e2","ts":1014,"kind":"repair_rejected","layer":3,"reason":"deleted-resource: repair deletes 'vm'"}
{"event":"snapshot","metrics":{"counters":{},"gauges":{},"histograms":{}}}
"#;

    #[test]
    fn parses_schema_spans_and_events() {
        let trace = Trace::parse(SAMPLE);
        assert_eq!(trace.schema, 2);
        assert_eq!(trace.spans.len(), 5);
        assert_eq!(trace.events.len(), 20);
        let iter_span = &trace.spans[2];
        assert_eq!(iter_span.parent, 1);
        assert_eq!(
            iter_span.attrs.iter().find(|(k, _)| k == "iter"),
            Some(&("iter".to_string(), "0".to_string()))
        );
    }

    #[test]
    fn ledger_reconstructs_one_candidate_in_order() {
        let trace = Trace::parse(SAMPLE);
        let ledger = trace.ledger_for(0xAA);
        let kinds: Vec<&str> = ledger.iter().map(|e| e.kind.as_str()).collect();
        assert_eq!(
            kinds,
            vec![
                "mined",
                "filter_verdict",
                "scheduled",
                "deploy_outcome",
                "validated",
                "demoted"
            ]
        );
        let rendered = render_ledger(0xAA, &ledger);
        assert!(rendered.contains("00000000000000aa"));
        assert!(rendered.contains("demoted (reason: counterexample)"));
        assert!(rendered.contains("phase=plugin checks"));
    }

    #[test]
    fn demoted_fingerprints_finds_terminal_demotions() {
        let trace = Trace::parse(SAMPLE);
        assert_eq!(trace.demoted_fingerprints(), vec![0xAA]);
    }

    #[test]
    fn filtered_candidate_ledger_reports_the_killing_rule() {
        let trace = Trace::parse(SAMPLE);
        let ledger = trace.ledger_for(0xBB);
        let rendered = render_ledger(0xBB, &ledger);
        assert!(rendered.contains("filtered out (rule: min_lift)"));
    }

    #[test]
    fn report_renders_funnel_and_latency() {
        let trace = Trace::parse(SAMPLE);
        let report = render_report(&trace, 10);
        assert!(report.contains("funnel"));
        assert!(report.contains("latency attribution"));
        assert!(report.contains("pipeline/mining"));
        // pipeline has 900us of children → 100us self; mining has 400 self.
        assert!(report.contains("mined"));
        assert!(report.contains("counterexample"));
    }

    #[test]
    fn report_attributes_latency_by_wave() {
        let trace = Trace::parse(SAMPLE);
        let report = render_report(&trace, 10);
        assert!(
            report.contains("wave attribution (top 2 of 2 waves by deploy time, 0.400ms total)")
        );
        // wave 0: width 2, batch 5, degree 1, 300us = 75% of deploy time.
        assert!(report.contains("     0       2       5       1        0.300  75.0%"));
        assert!(report.contains("     1       1       2       3        0.100  25.0%"));
    }

    #[test]
    fn scheduled_without_terminal_verdict_is_in_flight() {
        let trace = Trace::parse(SAMPLE);
        let ledger = trace.ledger_for(0xCC);
        let rendered = render_ledger(0xCC, &ledger);
        assert!(
            rendered.contains("in flight / unresolved"),
            "scheduled-but-unresolved must not read as an error: {rendered}"
        );
        // A candidate that never reached the scheduler stays plain "open".
        let pre = Trace::parse(
            "{\"event\":\"trace\",\"schema\":2}\n{\"event\":\"lifecycle\",\"fp\":\"00000000000000dd\",\"ts\":1,\"kind\":\"mined\"}\n",
        );
        let rendered = render_ledger(0xDD, &pre.ledger_for(0xDD));
        assert!(rendered.contains("open (last event: mined)"), "{rendered}");
    }

    #[test]
    fn accepted_repair_ledger_reconstructs_layer_verdicts() {
        let trace = Trace::parse(SAMPLE);
        let ledger = trace.ledger_for(0xE1);
        let kinds: Vec<&str> = ledger.iter().map(|e| e.kind.as_str()).collect();
        assert_eq!(
            kinds,
            vec![
                "repair_proposed",
                "oracle_verdict",
                "oracle_verdict",
                "oracle_verdict",
                "repair_accepted"
            ]
        );
        let rendered = render_ledger(0xE1, &ledger);
        assert!(rendered.contains("layer=1 pass=true"), "{rendered}");
        assert!(rendered.contains("layer=3 pass=true"), "{rendered}");
        assert!(
            rendered.contains("verdict: repair accepted (1 edit(s))"),
            "{rendered}"
        );
    }

    #[test]
    fn rejected_repair_ledger_names_layer_and_reason() {
        let trace = Trace::parse(SAMPLE);
        let rendered = render_ledger(0xE2, &trace.ledger_for(0xE2));
        assert!(
            rendered
                .contains("verdict: repair rejected at L3 (deleted-resource: repair deletes 'vm')"),
            "{rendered}"
        );
    }

    #[test]
    fn post_validation_only_ledgers_are_partial_not_open() {
        // A daemon trace records `served` verdicts for checks whose mining
        // history lives in an earlier trace; a repair trace cut off
        // mid-oracle has proposals without a terminal. Neither is corrupt.
        let served_only = Trace::parse(
            "{\"event\":\"trace\",\"schema\":2}\n{\"event\":\"lifecycle\",\"fp\":\"00000000000000d1\",\"ts\":1,\"kind\":\"served\",\"cached\":true}\n",
        );
        let rendered = render_ledger(0xD1, &served_only.ledger_for(0xD1));
        assert!(
            rendered.contains("partial lifecycle (post-validation events only, last: served)"),
            "{rendered}"
        );
        let cut_off = Trace::parse(
            "{\"event\":\"trace\",\"schema\":2}\n{\"event\":\"lifecycle\",\"fp\":\"00000000000000d2\",\"ts\":1,\"kind\":\"repair_proposed\",\"edits\":2}\n{\"event\":\"lifecycle\",\"fp\":\"00000000000000d2\",\"ts\":2,\"kind\":\"oracle_verdict\",\"layer\":1,\"pass\":true}\n",
        );
        let rendered = render_ledger(0xD2, &cut_off.ledger_for(0xD2));
        assert!(
            rendered
                .contains("partial lifecycle (post-validation events only, last: oracle_verdict)"),
            "{rendered}"
        );
    }

    #[test]
    fn report_renders_repair_funnel() {
        let trace = Trace::parse(SAMPLE);
        let report = render_report(&trace, 10);
        assert!(report.contains("repair funnel"), "{report}");
        assert!(report.contains("repairs proposed"));
        let row = |label: &str, n: usize| format!("  {label:<40} {n:>8}\n");
        assert!(report.contains(&row("repairs proposed", 2)), "{report}");
        assert!(report.contains(&row("oracle verdicts", 6)), "{report}");
        assert!(report.contains(&row("accepted", 1)), "{report}");
        assert!(
            report.contains(&row("  at L3 (deceptive fix)", 1)),
            "{report}"
        );
        // A trace with no repair events renders no repair section.
        let plain = Trace::parse(
            "{\"event\":\"trace\",\"schema\":2}\n{\"event\":\"lifecycle\",\"fp\":\"00000000000000aa\",\"ts\":1,\"kind\":\"mined\"}\n",
        );
        assert!(!render_report(&plain, 10).contains("repair funnel"));
    }

    #[test]
    fn resolve_fingerprint_accepts_hex_and_check_text() {
        assert_eq!(resolve_fingerprint("00000000000000aa"), Ok(0xAA));
        let check = "let r:VM in r.priority == 'Spot' => r.eviction_policy != null";
        let parsed = zodiac_spec::parse_check(check).unwrap();
        assert_eq!(resolve_fingerprint(check), Ok(parsed.fingerprint()));
        assert!(resolve_fingerprint("not a check").is_err());
    }

    #[test]
    fn perfetto_export_round_trips_spans_and_instants() {
        let trace = Trace::parse(SAMPLE);
        let json = trace.to_perfetto_json();
        let v: serde_json::Value = serde_json::from_str(&json).expect("well-formed");
        let events = v
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .expect("traceEvents");
        assert_eq!(events.len(), 5 + 20);
        // ts must be monotonic.
        let ts: Vec<u64> = events
            .iter()
            .map(|e| e.get("ts").and_then(|t| t.as_u64()).unwrap())
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }
}
