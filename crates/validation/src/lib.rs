//! Deployment-based validation of hypothesized semantic checks (§4).
//!
//! For every candidate check the engine finds a **positive test case** — a
//! corpus program that witnesses the check, pruned to a *minimal deployable
//! configuration* ([`mdc`]) — and derives a **negative test case** by
//! solver-aided mutation ([`mutate`]): an assignment that violates the
//! target check while conforming to every validated check (hard) and
//! minimally disturbing the other candidates (soft). The **validation
//! scheduler** ([`scheduler`], Figure 5) alternates false-positive removal
//! and true-positive validation passes, grouping *indistinguishable* checks
//! that no test case can separate, until the candidate set empties.
//!
//! Deployment itself goes through the [`DeployOracle`] trait — the cloud
//! simulator in this repository, real Azure in the paper.

pub mod counterexample;
pub mod mdc;
pub mod mutate;
pub mod scheduler;

pub use mdc::{find_positive, MdcStats, PositiveCase};
pub use mutate::{MutationConfig, MutationResult, NegativeCase};
pub use scheduler::{
    Scheduler, SchedulerConfig, ValidatedCheck, ValidationOutcome, ValidationTrace,
};

use zodiac_cloud::{CloudSim, DeployReport};
use zodiac_model::Program;

/// Anything that can deploy a program and report the outcome.
///
/// The simulator implements this; the paper's implementation shells out to
/// `terraform apply` against live Azure.
pub trait DeployOracle {
    /// Attempts a deployment.
    fn deploy(&self, program: &Program) -> DeployReport;

    /// Convenience: did the deployment succeed?
    fn deploys_ok(&self, program: &Program) -> bool {
        self.deploy(program).outcome.is_success()
    }
}

impl DeployOracle for CloudSim {
    fn deploy(&self, program: &Program) -> DeployReport {
        CloudSim::deploy(self, program)
    }
}
