//! Deployment-based validation of hypothesized semantic checks (§4).
//!
//! For every candidate check the engine finds a **positive test case** — a
//! corpus program that witnesses the check, pruned to a *minimal deployable
//! configuration* ([`mdc`]) — and derives a **negative test case** by
//! solver-aided mutation ([`mutate`]): an assignment that violates the
//! target check while conforming to every validated check (hard) and
//! minimally disturbing the other candidates (soft). The **validation
//! scheduler** ([`scheduler`], Figure 5) alternates false-positive removal
//! and true-positive validation passes, grouping *indistinguishable* checks
//! that no test case can separate, until the candidate set empties.
//!
//! Deployment itself goes through the [`DeployOracle`] trait — the cloud
//! simulator in this repository, real Azure in the paper.

pub mod counterexample;
pub mod ground;
pub mod mdc;
pub mod mutate;
pub mod plan;
pub mod scheduler;

pub use mdc::{find_positive, find_positive_indexed, CorpusIndex, MdcStats, PositiveCase};
pub use mutate::{MutationConfig, MutationResult, NegativeCase, SolveSeed, SolveStats};
pub use plan::{plan_waves, PlanCandidate, TypeReach, WavePlan};
pub use scheduler::{
    FalsifiedCheck, FalsifyReason, Scheduler, SchedulerConfig, ValidatedCheck, ValidationOutcome,
    ValidationTrace,
};

// The oracle abstraction lives next to the simulator; re-exported here
// because validation is its primary consumer and callers historically
// imported it from this crate.
pub use zodiac_cloud::DeployOracle;
