//! Wave planning for the validation scheduler.
//!
//! The false-positive pass is *almost* embarrassingly parallel: candidate
//! `i`'s negative test depends on candidate `j` only when `j`'s check can
//! ground over one of `i`'s mutated programs (then `j` shapes `i`'s soft
//! constraints, and `i`'s deploy can demote `j` by co-violation). The
//! planner makes that dependency explicit:
//!
//! 1. a [`TypeReach`] relation over-approximates which resource types a
//!    mutated program can contain — the types of the positive case plus
//!    everything reachable through KB endpoint declarations *and* observed
//!    corpus references (mutation only clones existing resources or imports
//!    corpus donors along those edges, so the closure is sound);
//! 2. check `j` is **relevant** to candidate `i` iff all of `j`'s bound
//!    types fall inside `i`'s closure — irrelevant checks can never ground,
//!    never appear among violated constraints, and can be dropped from
//!    `i`'s soft encoding without changing the solver's answer;
//! 3. two candidates **conflict** when either is relevant to the other;
//!    greedy chain-rule coloring (`wave(i) = 1 + max(wave(j))` over earlier
//!    conflicting `j`) partitions candidates into independent waves whose
//!    members can be encoded against the same snapshot and deployed as one
//!    batch.
//!
//! The scheduler treats waves as a *speculation* plan: encodings and batch
//! deploys are computed wave-by-wave, then validated against the exact
//! sequential timeline and replayed one-by-one on mismatch, so verdicts are
//! identical to the sequential path by construction (the testkit's sixth
//! property fuzzes exactly this equivalence).

use std::collections::{BTreeMap, BTreeSet, HashMap};
use zodiac_graph::ResourceGraph;
use zodiac_kb::KnowledgeBase;
use zodiac_model::Symbol;

/// Per-candidate planner input.
#[derive(Debug, Clone)]
pub struct PlanCandidate {
    /// Evaluation-order key (O4 deployment depth); candidates are colored
    /// in `(order, fingerprint)` order so the plan is independent of input
    /// permutation.
    pub order: i64,
    /// The check's fingerprint — the canonical tie-break and identity.
    pub fingerprint: u64,
    /// The check's bound resource types.
    pub bound: Vec<Symbol>,
    /// Resource types present in the candidate's positive case (falls back
    /// to `bound` when no positive case exists).
    pub present: Vec<Symbol>,
}

/// Which resource types are reachable from a given type when building a
/// deployable program: KB endpoint targets (imports pull in declared
/// dependencies) unioned with reference edges observed anywhere in the
/// corpus (donor subgraphs follow actual program edges).
pub struct TypeReach {
    succ: HashMap<Symbol, BTreeSet<Symbol>>,
}

impl TypeReach {
    /// Builds the reachability relation from the KB schema and a set of
    /// prebuilt corpus graphs.
    pub fn build<'a>(
        kb: &KnowledgeBase,
        graphs: impl Iterator<Item = &'a ResourceGraph>,
    ) -> TypeReach {
        let mut succ: HashMap<Symbol, BTreeSet<Symbol>> = HashMap::new();
        for t in kb.types() {
            let sym = Symbol::intern(t);
            let entry = succ.entry(sym).or_default();
            if let Some(schema) = kb.resource(&sym) {
                for ep in schema.endpoints.values() {
                    entry.insert(Symbol::intern(&ep.target_type));
                }
            }
        }
        for graph in graphs {
            for edge in graph.edges() {
                let src = Symbol::intern(&graph.resource(edge.src).rtype);
                let dst = Symbol::intern(&graph.resource(edge.dst).rtype);
                succ.entry(src).or_default().insert(dst);
            }
        }
        TypeReach { succ }
    }

    /// The reachable-type closure of a seed set (inclusive).
    pub fn closure(&self, seeds: &[Symbol]) -> BTreeSet<Symbol> {
        let mut out: BTreeSet<Symbol> = BTreeSet::new();
        let mut stack: Vec<Symbol> = seeds.to_vec();
        while let Some(t) = stack.pop() {
            if !out.insert(t) {
                continue;
            }
            if let Some(next) = self.succ.get(&t) {
                stack.extend(next.iter().copied());
            }
        }
        out
    }
}

/// The planned waves plus the conflict model they came from.
pub struct WavePlan {
    /// Waves of input indices; members of one wave are mutually
    /// conflict-free, and every member of wave `k+1` conflicts with some
    /// member of an earlier wave.
    pub waves: Vec<Vec<usize>>,
    /// Conflict degree per input candidate.
    pub degree: Vec<usize>,
    bound: Vec<BTreeSet<Symbol>>,
    reach: Vec<BTreeSet<Symbol>>,
}

impl WavePlan {
    /// True when candidate `j`'s check can ground over candidate `i`'s
    /// mutated programs — i.e. `j` belongs in `i`'s soft encoding.
    pub fn relevant(&self, j: usize, i: usize) -> bool {
        self.bound[j].iter().all(|t| self.reach[i].contains(t))
    }

    /// True when the two candidates must not share a wave.
    pub fn conflicts(&self, i: usize, j: usize) -> bool {
        i != j && (self.relevant(i, j) || self.relevant(j, i))
    }
}

/// Colors candidates into independent waves.
///
/// Candidates are processed in `(order, fingerprint)` order — a canonical
/// total order (fingerprints are unique identities), so the resulting
/// partition is deterministic under any permutation of the input. The
/// chain rule `wave(i) = 1 + max(wave(j) : j ≺ i, conflict(i, j))` keeps
/// every conflicting pair ordered across waves exactly as the sequential
/// scheduler would process them.
pub fn plan_waves(cands: &[PlanCandidate], reach: &TypeReach) -> WavePlan {
    let n = cands.len();
    let bound: Vec<BTreeSet<Symbol>> = cands
        .iter()
        .map(|c| c.bound.iter().copied().collect())
        .collect();
    let closures: Vec<BTreeSet<Symbol>> = cands.iter().map(|c| reach.closure(&c.present)).collect();
    let mut plan = WavePlan {
        waves: Vec::new(),
        degree: vec![0; n],
        bound,
        reach: closures,
    };

    let mut canonical: Vec<usize> = (0..n).collect();
    canonical.sort_by_key(|&i| (cands[i].order, cands[i].fingerprint));

    let mut wave_of: Vec<usize> = vec![0; n];
    let mut waves: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (pos, &i) in canonical.iter().enumerate() {
        let mut wave = 0usize;
        for &j in &canonical[..pos] {
            if plan.conflicts(i, j) {
                wave = wave.max(wave_of[j] + 1);
            }
        }
        wave_of[i] = wave;
        waves.entry(wave).or_default().push(i);
    }
    for i in 0..n {
        plan.degree[i] = (0..n).filter(|&j| plan.conflicts(i, j)).count();
    }
    plan.waves = waves.into_values().collect();
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn reach_empty() -> TypeReach {
        TypeReach {
            succ: HashMap::new(),
        }
    }

    fn cand(fp: u64, bound: &[&str], present: &[&str]) -> PlanCandidate {
        PlanCandidate {
            order: 0,
            fingerprint: fp,
            bound: bound.iter().map(|s| sym(s)).collect(),
            present: present.iter().map(|s| sym(s)).collect(),
        }
    }

    #[test]
    fn closure_follows_kb_and_corpus_edges() {
        let kb = zodiac_kb::azure_kb();
        let reach = TypeReach::build(&kb, std::iter::empty());
        let c = reach.closure(&[sym("azurerm_linux_virtual_machine")]);
        // A VM reaches its NIC, the NIC its subnet, and so on down to the
        // resource group.
        assert!(c.contains(&sym("azurerm_network_interface")));
        assert!(c.contains(&sym("azurerm_subnet")));
        assert!(c.contains(&sym("azurerm_resource_group")));
        // Reachability is directional: the RG reaches nothing above itself.
        let rg = reach.closure(&[sym("azurerm_resource_group")]);
        assert!(!rg.contains(&sym("azurerm_linux_virtual_machine")));
    }

    #[test]
    fn disjoint_candidates_share_wave_zero() {
        let cands = vec![cand(1, &["a"], &["a"]), cand(2, &["b"], &["b"])];
        let plan = plan_waves(&cands, &reach_empty());
        assert_eq!(plan.waves, vec![vec![0, 1]]);
        assert_eq!(plan.degree, vec![0, 0]);
        assert!(!plan.conflicts(0, 1));
    }

    #[test]
    fn relevant_candidates_are_separated() {
        // Both checks bind type "a" and their positives contain "a": each is
        // relevant to the other, so they conflict and take separate waves.
        let cands = vec![cand(1, &["a"], &["a"]), cand(2, &["a"], &["a"])];
        let plan = plan_waves(&cands, &reach_empty());
        assert_eq!(plan.waves.len(), 2);
        assert!(plan.conflicts(0, 1));
        assert_eq!(plan.degree, vec![1, 1]);
    }

    #[test]
    fn one_directional_relevance_still_conflicts() {
        // Candidate 0's positives contain {a, b}; candidate 1 binds only b,
        // so 1 is relevant to 0 but not vice versa — still a conflict.
        let cands = vec![cand(1, &["a"], &["a", "b"]), cand(2, &["b"], &["b"])];
        let plan = plan_waves(&cands, &reach_empty());
        assert!(plan.relevant(1, 0));
        assert!(!plan.relevant(0, 1));
        assert!(plan.conflicts(0, 1));
        assert_eq!(plan.waves.len(), 2);
    }

    #[test]
    fn coloring_is_an_independent_set_partition() {
        // A chain a–ab–b plus an unrelated c: waves must never contain a
        // conflicting pair.
        let cands = vec![
            cand(1, &["a"], &["a"]),
            cand(2, &["a", "b"], &["a", "b"]),
            cand(3, &["b"], &["b"]),
            cand(4, &["c"], &["c"]),
        ];
        let plan = plan_waves(&cands, &reach_empty());
        for wave in &plan.waves {
            for (x, &i) in wave.iter().enumerate() {
                for &j in &wave[x + 1..] {
                    assert!(!plan.conflicts(i, j), "wave holds conflicting {i},{j}");
                }
            }
        }
        // The unrelated candidate rides in the first wave.
        assert!(plan.waves[0].contains(&3));
    }

    #[test]
    fn plan_is_deterministic_under_permutation() {
        let base = vec![
            cand(10, &["a"], &["a"]),
            cand(11, &["a", "b"], &["a", "b"]),
            cand(12, &["b"], &["b"]),
            cand(13, &["c"], &["c"]),
            cand(14, &["b"], &["b", "c"]),
        ];
        let reach = reach_empty();
        let fingerprint_waves = |cands: &[PlanCandidate]| -> Vec<Vec<u64>> {
            plan_waves(cands, &reach)
                .waves
                .iter()
                .map(|w| {
                    let mut fps: Vec<u64> = w.iter().map(|&i| cands[i].fingerprint).collect();
                    fps.sort_unstable();
                    fps
                })
                .collect()
        };
        let reference = fingerprint_waves(&base);
        // A few deterministic permutations (rotations and a reversal).
        for rot in 1..base.len() {
            let mut permuted = base.clone();
            permuted.rotate_left(rot);
            assert_eq!(fingerprint_waves(&permuted), reference, "rotation {rot}");
        }
        let mut reversed = base.clone();
        reversed.reverse();
        assert_eq!(fingerprint_waves(&reversed), reference);
    }
}
