//! The validation scheduling algorithm (Figure 5).
//!
//! The scheduler alternates two passes over the candidate set `R_c` until it
//! empties (O1):
//!
//! * **False-positive removal**: each candidate gets a negative test that
//!   conforms to every validated check (hard) while minimising violations of
//!   the other candidates (soft, O2). Candidates whose negative test cannot
//!   exist (UNSAT) or *deploys successfully* are false positives — and when
//!   a successful deployment violates several candidates at once, all of
//!   them fall together.
//! * **True-positive validation**: a candidate whose negative test fails to
//!   deploy is validated when it is the *only* violated candidate, or when
//!   every violated candidate belongs to the same *indistinguishable group*
//!   (O3) — a set of checks no test case can separate, established by UNSAT
//!   probes.
//!
//! Candidates are processed in *evaluation partial order* (O4): checks
//! anchored on types that deploy earlier are evaluated first, which breaks
//! reasoning loops among inter-resource checks.

use crate::mdc::{self, PositiveCase};
use crate::mutate::{self, MutationConfig, MutationResult};
use crate::plan;
use crate::DeployOracle;
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use zodiac_cloud::DeployReport;
use zodiac_kb::KnowledgeBase;
use zodiac_mining::MinedCheck;
use zodiac_model::{Program, Symbol, Value};
use zodiac_obs::{Lifecycle, MetricsSnapshot, Obs, Polarity};
use zodiac_spec::{Check, Expr, Val};

/// Scheduler configuration, including the Figure 8 ablation switches.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Resolve indistinguishable groups (O3). Disabling reproduces
    /// Figure 8b: validation stalls with a non-empty `R_c`.
    pub handle_indistinguishable: bool,
    /// Order candidates by the deployment partial order (O4).
    pub use_partial_order: bool,
    /// Maximum outer iterations before declaring the rest unresolved.
    pub max_iterations: usize,
    /// Mutation settings (Table 5 ablations).
    pub mutation: MutationConfig,
    /// Maximum corpus programs scanned per positive-case search.
    pub max_scan: usize,
    /// Plan conflict-free candidate waves and batch their deployments
    /// (the fast path). Disabling falls back to the one-candidate-at-a-time
    /// loop; both paths produce identical verdicts, which the testkit's
    /// sixth property checks on every fuzz episode.
    pub wave_parallel: bool,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            handle_indistinguishable: true,
            use_partial_order: true,
            max_iterations: 8,
            mutation: MutationConfig::default(),
            max_scan: 400,
            wave_parallel: true,
        }
    }
}

/// Why a candidate was discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FalsifyReason {
    /// No corpus program witnesses the check and none could be synthesised.
    NoPositiveCase,
    /// Every mutation violating the check also violates `R_v` (solver
    /// UNSAT).
    Unsatisfiable,
    /// A negative test deployed successfully.
    Deployable,
    /// The statement shape is outside the mutation repertoire.
    NotApplicable,
}

impl FalsifyReason {
    /// Stable machine-readable reason string used in `Demoted` lifecycle
    /// events and CLI output.
    pub fn as_str(self) -> &'static str {
        match self {
            FalsifyReason::NoPositiveCase => "no_positive_case",
            FalsifyReason::Unsatisfiable => "unsatisfiable",
            FalsifyReason::Deployable => "deployable",
            FalsifyReason::NotApplicable => "not_applicable",
        }
    }
}

/// Splits a deploy report into the (success, phase, rule) triple carried by
/// `DeployOutcome` lifecycle events.
fn outcome_fields(report: &DeployReport) -> (bool, String, String) {
    match &report.outcome {
        zodiac_cloud::DeployOutcome::Success => (true, String::new(), String::new()),
        zodiac_cloud::DeployOutcome::Failure { phase, rule_id, .. } => {
            (false, phase.to_string(), rule_id.clone())
        }
    }
}

/// A validated check.
#[derive(Debug, Clone, Serialize)]
pub struct ValidatedCheck {
    /// The mined check and its statistics.
    pub mined: MinedCheck,
    /// True if validated through an indistinguishable group (more than one
    /// candidate violated by its negative test).
    pub via_group: bool,
    /// The deployment report of the failing negative test.
    pub negative_report: DeployReport,
    /// Size of the negative test program.
    pub negative_size: usize,
}

/// A falsified check.
#[derive(Debug, Clone, Serialize)]
pub struct FalsifiedCheck {
    /// The mined check.
    pub mined: MinedCheck,
    /// Why it fell.
    pub reason: FalsifyReason,
}

/// Per-iteration statistics (Figure 8).
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct IterationStats {
    /// Cumulative validated checks after this iteration.
    pub validated_total: usize,
    /// Cumulative false positives after this iteration.
    pub false_positive_total: usize,
    /// Candidates still open.
    pub remaining: usize,
    /// FPs removed this iteration because the negative test deployed.
    pub fp_deployable: usize,
    /// FPs removed this iteration because mutation was UNSAT.
    pub fp_unsatisfiable: usize,
    /// TPs validated with a single-violation negative test.
    pub tp_single: usize,
    /// TPs validated through an indistinguishable group.
    pub tp_multiple: usize,
    /// Deploy requests issued this iteration (0 unless the oracle reports
    /// telemetry, i.e. deployment goes through an execution engine).
    pub deploy_requests: u64,
    /// Of those, requests served from the engine's memoization cache.
    pub deploy_cache_hits: u64,
}

/// Full per-run trace.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ValidationTrace {
    /// One entry per outer iteration.
    pub iterations: Vec<IterationStats>,
    /// Final execution-engine metrics (the `deploy.*` namespace), when the
    /// oracle collects any.
    pub deploy: Option<MetricsSnapshot>,
}

/// Outcome of a validation run.
#[derive(Debug, Clone, Serialize)]
pub struct ValidationOutcome {
    /// `R_v`: validated checks.
    pub validated: Vec<ValidatedCheck>,
    /// Discarded candidates.
    pub false_positives: Vec<FalsifiedCheck>,
    /// Candidates still open when the run ended (non-empty only when the
    /// scheduler stalls, e.g. with indistinguishability handling disabled).
    pub unresolved: Vec<MinedCheck>,
    /// Indistinguishable groups found (indices into `validated`).
    pub groups: Vec<Vec<usize>>,
    /// Per-iteration trace.
    pub trace: ValidationTrace,
}

impl ValidationOutcome {
    /// Number of validated checks counting each indistinguishable group as
    /// one (the paper's reporting convention).
    pub fn validated_groups_as_one(&self) -> usize {
        let grouped: usize = self.groups.iter().map(|g| g.len()).sum();
        self.validated.len() - grouped + self.groups.len()
    }
}

/// The validation scheduler.
pub struct Scheduler<'a, D: DeployOracle> {
    oracle: &'a D,
    kb: &'a KnowledgeBase,
    corpus: &'a [Program],
    cfg: SchedulerConfig,
    obs: Obs,
}

struct Candidate {
    mined: MinedCheck,
    positive: Option<PositiveCase>,
    order: i64,
    /// Check fingerprint: canonical tie-break and memo identity.
    fp: u64,
}

/// Soft-constraint weight of a candidate: better-supported candidates are
/// costlier to violate, breaking ties toward the corpus evidence.
fn soft_weight(c: &MinedCheck) -> u64 {
    (c.support as u64).min(100)
}

/// Resource types a candidate's mutated programs can start from: its
/// positive case's inventory, or the check's bound types before a positive
/// case exists.
fn present_types(c: &Candidate) -> Vec<Symbol> {
    match &c.positive {
        Some(p) => p
            .program
            .resources()
            .iter()
            .map(|r| Symbol::intern(&r.rtype))
            .collect(),
        None => c.mined.check.bindings.iter().map(|b| b.rtype).collect(),
    }
}

/// The candidates that belong in candidate `i`'s soft encoding at its
/// position in the sequential timeline: relevant (their checks can ground
/// over `i`'s mutants) and not demoted at an earlier position. `at` maps
/// demoted candidates to the canonical position of the test that demoted
/// them, so "not yet demoted when `i` runs" is `position >= i`.
fn relevant_open(
    i: usize,
    wave_plan: &plan::WavePlan,
    at: &BTreeMap<usize, usize>,
    n: usize,
) -> Vec<usize> {
    (0..n)
        .filter(|&j| j != i && wave_plan.relevant(j, i) && at.get(&j).is_none_or(|&p| p >= i))
        .collect()
}

/// A per-candidate negative test shared by the grouping and TP passes, with
/// its violations resolved to global candidate indices (the soft lists the
/// two scheduler paths encode against differ — full versus
/// relevance-reduced — but the violated *sets* are identical, so both
/// resolve to the same global form).
struct SharedNegative {
    neg: mutate::NegativeCase,
    /// Open candidates (indices into `rc`, excluding the owner) violated by
    /// the negative program.
    violates: BTreeSet<usize>,
}

/// Cross-pass, cross-iteration memo of negative-test encodings, keyed by
/// check fingerprint. A candidate is re-encoded many times per run (FP
/// pass, shared-negatives pass, next iteration) against slowly changing
/// hard/soft sets; when the relevant sets are unchanged the stored result
/// is returned outright, and otherwise the stored solver models seed the
/// re-solve ([`mutate::negative_test_seeded`]).
#[derive(Default)]
struct NegMemo {
    entries: HashMap<u64, MemoEntry>,
}

struct MemoEntry {
    /// Sorted fingerprints of the hard (validated) set encoded against.
    hard_fps: Vec<u64>,
    /// Sorted `(fingerprint, weight)` soft-set identity.
    soft_key: Vec<(u64, u64)>,
    /// Fingerprint per stored soft position (for remapping `violated_soft`
    /// onto a caller's ordering of the same set).
    stored_soft: Vec<u64>,
    result: MutationResult,
    seed: mutate::SolveSeed,
}

/// Rebuilds a memoized result against the caller's ordering of the same
/// soft set, remapping `violated_soft` positions through fingerprints.
fn remap_memo(e: &MemoEntry, soft_fps: &[u64]) -> MutationResult {
    let MutationResult::Negative(neg) = &e.result else {
        return e.result.clone();
    };
    let pos: HashMap<u64, usize> = soft_fps.iter().enumerate().map(|(p, &f)| (f, p)).collect();
    let mut out = neg.clone();
    out.violated_soft = neg
        .violated_soft
        .iter()
        .filter_map(|&p| e.stored_soft.get(p).and_then(|f| pos.get(f)).copied())
        .collect();
    out.violated_soft.sort_unstable();
    MutationResult::Negative(out)
}

/// The wave planner's view of a candidate. `present` seeds the mutant
/// type closure: the positive case's inventory plus every type the
/// structural planner could add when violating this statement.
fn plan_candidate(c: &Candidate, kb: &KnowledgeBase) -> plan::PlanCandidate {
    let mut present = present_types(c);
    present.extend(
        mutate::structural_peer_types(&c.mined.check, kb)
            .iter()
            .map(|t| Symbol::intern(t)),
    );
    plan::PlanCandidate {
        order: c.order,
        fingerprint: c.fp,
        bound: c.mined.check.bindings.iter().map(|b| b.rtype).collect(),
        present,
    }
}

impl<'a, D: DeployOracle> Scheduler<'a, D> {
    /// Creates a scheduler over a deployment oracle, KB, and corpus.
    pub fn new(
        oracle: &'a D,
        kb: &'a KnowledgeBase,
        corpus: &'a [Program],
        cfg: SchedulerConfig,
    ) -> Self {
        Scheduler {
            oracle,
            kb,
            corpus,
            cfg,
            obs: Obs::null(),
        }
    }

    /// Attaches an observability handle: the scheduler records
    /// `validation.*` funnel counters, bounded `pipeline/validation/iter`
    /// spans (iteration index as a span attribute), per-wave deploy spans,
    /// and per-candidate lifecycle events into it.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Emits a lifecycle event for a check, gated so disabled handles pay
    /// no fingerprint hashing.
    fn lifecycle(&self, check: &Check, kind: Lifecycle) {
        if self.obs.is_enabled() {
            self.obs.lifecycle(check.fingerprint(), kind);
        }
    }

    /// Emits the `Demoted` event for a falsified candidate.
    fn demote_event(&self, check: &Check, reason: FalsifyReason) {
        self.lifecycle(
            check,
            Lifecycle::Demoted {
                reason: reason.as_str().to_string(),
            },
        );
    }

    /// Runs validation to completion (Figure 5).
    pub fn run(&self, candidates: Vec<MinedCheck>) -> ValidationOutcome {
        let t0 = std::time::Instant::now();
        let depths = type_depths(self.kb);
        let mut rc: Vec<Candidate> = candidates
            .into_iter()
            .map(|mined| {
                let order = check_order(&mined.check, &depths);
                let fp = mined.check.fingerprint();
                Candidate {
                    mined,
                    positive: None,
                    order,
                    fp,
                }
            })
            .collect();
        if self.cfg.use_partial_order {
            // O4, with the fingerprint as tie-break: a canonical total order
            // shared with the wave planner, so the sequential and
            // wave-parallel paths walk the same timeline.
            rc.sort_by_key(|c| (c.order, c.fp));
        }

        // Shared per-run machinery: prebuilt corpus graphs, the type
        // reachability relation behind wave planning and soft-set reduction,
        // and the cross-iteration negative-test memo.
        let index = mdc::CorpusIndex::build(self.corpus);
        let reach = plan::TypeReach::build(self.kb, index.graphs().iter());
        let mut memo = NegMemo::default();
        let mut waves_done: u64 = 0;

        let mut validated: Vec<ValidatedCheck> = Vec::new();
        let mut false_positives: Vec<FalsifiedCheck> = Vec::new();
        let mut groups_out: Vec<Vec<usize>> = Vec::new();
        let mut trace = ValidationTrace::default();
        self.obs
            .gauge_set("validation.candidates.initial", rc.len() as u64);

        for iter in 0..self.cfg.max_iterations {
            if rc.is_empty() {
                break;
            }
            // One bounded span per iteration: the index is an attribute,
            // not a path segment, so the histogram namespace stays finite.
            let _iter_span = if self.obs.is_enabled() {
                let mut span = self.obs.start_span("pipeline/validation/iter");
                span.attr("iter", iter as u64);
                span.attr("open", rc.len());
                Some(span)
            } else {
                None
            };
            let mut stats = IterationStats::default();
            let progress_before = rc.len();
            let tel_before = self.oracle.telemetry();

            // The validated (hard) set is frozen for the whole iteration.
            let hard: Vec<Check> = validated.iter().map(|v| v.mined.check.clone()).collect();
            let mut hard_fps: Vec<u64> = hard.iter().map(|c| c.fingerprint()).collect();
            hard_fps.sort_unstable();

            // ---------------- false positive removal pass -----------------
            let removed = if self.cfg.wave_parallel {
                self.fp_pass_waves(
                    &mut rc,
                    &hard,
                    &hard_fps,
                    &mut false_positives,
                    &mut stats,
                    &index,
                    &reach,
                    &mut memo,
                    &mut waves_done,
                )
            } else {
                self.fp_pass_sequential(
                    &mut rc,
                    &hard,
                    &mut false_positives,
                    &mut stats,
                    iter,
                    &index,
                )
            };
            retain_not(&mut rc, &removed);

            // ---------------- shared negatives for grouping + TP -----------
            let negatives = if self.cfg.wave_parallel {
                self.generate_negatives_reduced(
                    &mut rc, &hard, &hard_fps, &index, &reach, &mut memo,
                )
            } else {
                self.generate_negatives_full(&mut rc, &hard, &index)
            };

            // ---------------- indistinguishable grouping (O3) --------------
            let groups = if self.cfg.handle_indistinguishable {
                self.group_indistinct(&mut rc, &validated, &negatives)
            } else {
                Vec::new()
            };

            // ---------------- true positive validation pass ----------------
            // The negative tests are mutually independent, so deploy them as
            // one batch: an execution engine fans the batch across its
            // worker pool and memoizes repeats, a plain oracle runs them
            // sequentially — either way reports come back in input order,
            // so the outcome is identical to the one-at-a-time loop.
            let to_deploy: Vec<usize> = (0..rc.len()).filter(|&i| negatives[i].is_some()).collect();
            let batch: Vec<Program> = to_deploy
                .iter()
                .filter_map(|&i| negatives[i].as_ref().map(|n| n.neg.program.clone()))
                .collect();
            self.obs
                .histogram("validation.tp.batch_size", batch.len() as u64);
            // The wave span scopes the batch: per-request deploy spans from
            // the engine's worker pool parent under it.
            let wave_span = if self.obs.is_enabled() && !batch.is_empty() {
                let mut span = self.obs.start_span("pipeline/validation/wave");
                span.attr(
                    "wave",
                    if self.cfg.wave_parallel {
                        waves_done
                    } else {
                        iter as u64
                    },
                );
                span.attr("width", to_deploy.len());
                span.attr("batch", batch.len());
                Some(span)
            } else {
                None
            };
            let mut reports: Vec<Option<(DeployReport, bool)>> = vec![None; rc.len()];
            let batch_reports = self.oracle.deploy_batch_annotated(&batch);
            for (&i, report) in to_deploy.iter().zip(batch_reports) {
                reports[i] = Some(report);
            }
            if let Some(span) = wave_span {
                span.finish();
            }
            if !batch.is_empty() {
                waves_done += 1;
                self.obs.counter("validation.waves", 1);
            }
            if self.obs.is_enabled() {
                // TP probe outcomes, in candidate order (deterministic even
                // when the engine fans the batch across workers).
                for &i in &to_deploy {
                    if let Some((report, cached)) = reports[i].as_ref() {
                        let (success, phase, rule) = outcome_fields(report);
                        self.lifecycle(
                            &rc[i].mined.check,
                            Lifecycle::DeployOutcome {
                                polarity: Polarity::TpProbe,
                                success,
                                phase,
                                rule,
                                cached: *cached,
                            },
                        );
                    }
                }
            }
            let mut newly_validated: BTreeSet<usize> = BTreeSet::new();
            for i in 0..rc.len() {
                if newly_validated.contains(&i) {
                    continue;
                }
                let Some(neg) = negatives[i].as_ref() else {
                    continue;
                };
                let Some((report, _cached)) = reports[i].take() else {
                    continue; // Every negative in `to_deploy` got a report.
                };
                if report.outcome.is_success() {
                    continue; // Handled next iteration's FP pass.
                }
                // R_n: the open candidates the negative test violates
                // (including the target itself).
                let mut rn: BTreeSet<usize> = neg.violates.clone();
                rn.insert(i);
                let single = rn.len() == 1;
                let in_group = groups.iter().any(|g| rn.iter().all(|j| g.contains(j)));
                if single || in_group {
                    if single {
                        stats.tp_single += 1;
                    } else {
                        stats.tp_multiple += 1;
                    }
                    newly_validated.insert(i);
                    self.lifecycle(
                        &rc[i].mined.check,
                        Lifecycle::Validated { via_group: !single },
                    );
                    validated.push(ValidatedCheck {
                        mined: rc[i].mined.clone(),
                        via_group: !single,
                        negative_size: neg.neg.program.len(),
                        negative_report: report,
                    });
                }
            }
            // Record group memberships among the newly validated.
            if !groups.is_empty() {
                let offset = validated.len() - newly_validated.len();
                let validated_this_round: Vec<usize> = newly_validated.iter().copied().collect();
                for g in &groups {
                    let members: Vec<usize> = validated_this_round
                        .iter()
                        .enumerate()
                        .filter(|(_, idx)| g.contains(idx))
                        .map(|(k, _)| offset + k)
                        .collect();
                    if members.len() > 1 {
                        groups_out.push(members);
                    }
                }
            }
            retain_not(&mut rc, &newly_validated);

            stats.validated_total = validated.len();
            stats.false_positive_total = false_positives.len();
            stats.remaining = rc.len();
            if let Some(before) = &tel_before {
                let after = self.oracle.telemetry().unwrap_or_else(|| before.clone());
                stats.deploy_requests = after
                    .counter("deploy.requests")
                    .saturating_sub(before.counter("deploy.requests"));
                stats.deploy_cache_hits = after
                    .counter("deploy.cache_hits")
                    .saturating_sub(before.counter("deploy.cache_hits"));
            }
            self.obs.counter("validation.iterations", 1);
            self.obs
                .counter("validation.fp.deployable", stats.fp_deployable as u64);
            self.obs
                .counter("validation.fp.unsatisfiable", stats.fp_unsatisfiable as u64);
            self.obs
                .counter("validation.tp.single", stats.tp_single as u64);
            self.obs
                .counter("validation.tp.group", stats.tp_multiple as u64);
            trace.iterations.push(stats);

            if rc.len() == progress_before {
                break; // Stalled (Figure 8b without O3).
            }
        }
        if self.obs.is_enabled() {
            // Reasons not tracked per-iteration (they fall outside Figure 8's
            // stats) are recovered from the accumulated falsified list.
            for reason in [FalsifyReason::NoPositiveCase, FalsifyReason::NotApplicable] {
                let n = false_positives
                    .iter()
                    .filter(|f| f.reason == reason)
                    .count();
                let name = match reason {
                    FalsifyReason::NoPositiveCase => "validation.fp.no_positive_case",
                    _ => "validation.fp.not_applicable",
                };
                self.obs.counter(name, n as u64);
            }
            self.obs
                .gauge_set("validation.validated.total", validated.len() as u64);
        }
        // Emitted unconditionally — including on a max-iterations early exit
        // or a stall — so funnel snapshots always report the leftover count.
        self.obs.gauge_set("validation.unresolved", rc.len() as u64);
        trace.deploy = self.oracle.telemetry();
        // Serving-boundary latency: one whole validation run, visible in
        // rolling windows (`op.validate.us`) when a RollingRecorder sink
        // is attached.
        self.obs
            .histogram("op.validate.us", t0.elapsed().as_micros() as u64);

        ValidationOutcome {
            validated,
            false_positives,
            unresolved: rc.into_iter().map(|c| c.mined).collect(),
            groups: groups_out,
            trace,
        }
    }

    /// Finds (or synthesises) and caches a positive case for a candidate,
    /// searching through the prebuilt corpus index.
    fn ensure_positive<'b>(
        &self,
        c: &'b mut Candidate,
        index: &mdc::CorpusIndex,
    ) -> Option<&'b PositiveCase> {
        if c.positive.is_none() {
            c.positive =
                mdc::find_positive_indexed(&c.mined.check, index, self.kb, self.cfg.max_scan)
                    .or_else(|| self.synthesize_positive(&c.mined.check));
        }
        c.positive.as_ref()
    }

    /// Synthesises a positive case for single-binding enum-conditioned
    /// checks whose condition value never appears in the corpus (oracle
    /// interpolation covers skus the corpus never witnessed): take any
    /// resource of the bound type, rewrite the condition attribute, and
    /// verify the check holds.
    fn synthesize_positive(&self, check: &Check) -> Option<PositiveCase> {
        let [binding] = check.bindings.as_slice() else {
            return None;
        };
        let Expr::Cmp {
            op: zodiac_spec::CmpOp::Eq,
            lhs: Val::Endpoint { var, attr },
            rhs: Val::Lit(value),
            negated: false,
        } = &check.cond
        else {
            return None;
        };
        for program in self.corpus.iter().take(self.cfg.max_scan) {
            let Some(donor) = program.of_type(&binding.rtype).next() else {
                continue;
            };
            let donor_id = donor.id();
            let mut modified = program.clone();
            let path: zodiac_model::AttrPath = attr.parse().ok()?;
            modified.find_mut(&donor_id)?.set(&path, value.clone());
            let graph = zodiac_graph::ResourceGraph::build(modified);
            let ctx = zodiac_spec::EvalContext {
                graph: &graph,
                kb: Some(self.kb),
            };
            let donor_node = graph.node(&donor_id);
            let found = zodiac_spec::witnesses(check, ctx);
            let Some(w) = found
                .iter()
                .find(|w| w.binding.get(var).copied() == donor_node)
            else {
                continue;
            };
            return Some(mdc::prune(&graph, &w.binding, self.kb));
        }
        None
    }
}

fn retain_not(rc: &mut Vec<Candidate>, drop: &BTreeSet<usize>) {
    let mut i = 0usize;
    rc.retain(|_| {
        let keep = !drop.contains(&i);
        i += 1;
        keep
    });
}

/// Deployment depth of each KB type: types referencing nothing deploy first
/// (depth 0); a type's depth is one more than the deepest type it can
/// reference.
pub fn type_depths(kb: &KnowledgeBase) -> HashMap<Symbol, i64> {
    let mut depths: HashMap<Symbol, i64> = HashMap::new();
    fn depth_of(
        kb: &KnowledgeBase,
        t: Symbol,
        depths: &mut HashMap<Symbol, i64>,
        stack: &mut Vec<Symbol>,
    ) -> i64 {
        if let Some(&d) = depths.get(&t) {
            return d;
        }
        if stack.contains(&t) {
            return 0; // Self/cyclic references (DISK → DISK) bottom out.
        }
        stack.push(t);
        let d = kb
            .resource(&t)
            .map(|schema| {
                schema
                    .endpoints
                    .values()
                    .map(|e| depth_of(kb, Symbol::intern(&e.target_type), depths, stack) + 1)
                    .max()
                    .unwrap_or(0)
            })
            .unwrap_or(0);
        stack.pop();
        depths.insert(t, d);
        d
    }
    let types: Vec<Symbol> = kb.types().map(Symbol::intern).collect();
    for &t in &types {
        let mut stack = Vec::new();
        depth_of(kb, t, &mut depths, &mut stack);
    }
    depths
}

/// A check's evaluation order: the *minimum* deployment depth among its
/// bound types — checks about early-deploying resources go first.
fn check_order(check: &Check, depths: &HashMap<Symbol, i64>) -> i64 {
    check
        .bindings
        .iter()
        .map(|b| depths.get(&b.rtype).copied().unwrap_or(i64::MAX / 2))
        .min()
        .unwrap_or(0)
}

impl<'a, D: DeployOracle> Scheduler<'a, D> {
    /// Runs a candidate's negative test through the cross-iteration memo:
    /// an unchanged (hard, soft) encoding returns the stored result
    /// outright, and a changed one re-solves seeded by the stored models.
    /// `soft_ids` are indices into `rc`; the returned `violated_soft`
    /// positions index `soft_ids`.
    fn memoized_negative(
        &self,
        rc: &[Candidate],
        i: usize,
        soft_ids: &[usize],
        hard: &[Check],
        hard_fps: &[u64],
        memo: &mut NegMemo,
    ) -> MutationResult {
        // Callers only ask after a positive case exists; fall back to the
        // same demotion the sequential path would reach if it ever is not.
        let Some(positive) = rc[i].positive.as_ref() else {
            return MutationResult::NotApplicable;
        };
        let soft: Vec<(Check, u64)> = soft_ids
            .iter()
            .map(|&j| (rc[j].mined.check.clone(), soft_weight(&rc[j].mined)))
            .collect();
        let soft_fps: Vec<u64> = soft_ids.iter().map(|&j| rc[j].fp).collect();
        let mut soft_key: Vec<(u64, u64)> = soft_fps
            .iter()
            .zip(&soft)
            .map(|(&f, (_, w))| (f, *w))
            .collect();
        soft_key.sort_unstable();
        if let Some(e) = memo.entries.get(&rc[i].fp) {
            if e.hard_fps == hard_fps && e.soft_key == soft_key {
                self.obs.counter("solver.incremental.hit", 1);
                return remap_memo(e, &soft_fps);
            }
        }
        let seed = memo.entries.get(&rc[i].fp).map(|e| e.seed.clone());
        let (result, seed_out, st) = mutate::negative_test_seeded(
            &rc[i].mined.check,
            positive,
            hard,
            &soft,
            self.kb,
            self.corpus,
            &self.cfg.mutation,
            seed.as_ref(),
        );
        if st.seeded > 0 {
            self.obs.counter("solver.incremental.seeded", st.seeded);
        }
        if st.cold > 0 {
            self.obs.counter("solver.incremental.miss", st.cold);
        }
        memo.entries.insert(
            rc[i].fp,
            MemoEntry {
                hard_fps: hard_fps.to_vec(),
                soft_key,
                stored_soft: soft_fps,
                result: result.clone(),
                seed: seed_out,
            },
        );
        result
    }

    /// The one-candidate-at-a-time false-positive pass (the trusted
    /// baseline the wave path is differentially tested against). Returns
    /// the set of demoted indices.
    fn fp_pass_sequential(
        &self,
        rc: &mut [Candidate],
        hard: &[Check],
        false_positives: &mut Vec<FalsifiedCheck>,
        stats: &mut IterationStats,
        iter: usize,
        index: &mdc::CorpusIndex,
    ) -> BTreeSet<usize> {
        if self.obs.is_enabled() {
            // Scheduled events: conflict pressure is the number of
            // co-scheduled candidates anchored on the same resource type
            // (they compete for the same mutation targets).
            let mut per_type: HashMap<Symbol, u64> = HashMap::new();
            for c in rc.iter() {
                *per_type.entry(c.mined.check.bindings[0].rtype).or_default() += 1;
            }
            for c in rc.iter() {
                let same = per_type
                    .get(&c.mined.check.bindings[0].rtype)
                    .copied()
                    .unwrap_or(1);
                self.lifecycle(
                    &c.mined.check,
                    Lifecycle::Scheduled {
                        wave: iter as u64,
                        conflicts: same.saturating_sub(1),
                    },
                );
            }
        }
        let mut removed: BTreeSet<usize> = BTreeSet::new();
        for i in 0..rc.len() {
            if removed.contains(&i) {
                continue;
            }
            if self.ensure_positive(&mut rc[i], index).is_none() {
                removed.insert(i);
                self.demote_event(&rc[i].mined.check, FalsifyReason::NoPositiveCase);
                false_positives.push(FalsifiedCheck {
                    mined: rc[i].mined.clone(),
                    reason: FalsifyReason::NoPositiveCase,
                });
                continue;
            }
            let soft: Vec<(Check, u64)> = rc
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i && !removed.contains(j))
                .map(|(_, c)| (c.mined.check.clone(), soft_weight(&c.mined)))
                .collect();
            // `ensure_positive` succeeded above, so the case is cached;
            // skip defensively rather than panic if it is ever not.
            let Some(positive) = rc[i].positive.as_ref() else {
                continue;
            };
            let result = mutate::negative_test(
                &rc[i].mined.check,
                positive,
                hard,
                &soft,
                self.kb,
                self.corpus,
                &self.cfg.mutation,
            );
            match result {
                MutationResult::Unsat => {
                    stats.fp_unsatisfiable += 1;
                    removed.insert(i);
                    self.demote_event(&rc[i].mined.check, FalsifyReason::Unsatisfiable);
                    false_positives.push(FalsifiedCheck {
                        mined: rc[i].mined.clone(),
                        reason: FalsifyReason::Unsatisfiable,
                    });
                }
                MutationResult::NotApplicable => {
                    removed.insert(i);
                    self.demote_event(&rc[i].mined.check, FalsifyReason::NotApplicable);
                    false_positives.push(FalsifiedCheck {
                        mined: rc[i].mined.clone(),
                        reason: FalsifyReason::NotApplicable,
                    });
                }
                MutationResult::Negative(neg) => {
                    let (report, cached) = self.oracle.deploy_annotated(&neg.program);
                    let (success, phase, rule) = outcome_fields(&report);
                    self.lifecycle(
                        &rc[i].mined.check,
                        Lifecycle::DeployOutcome {
                            polarity: Polarity::FpProbe,
                            success,
                            phase,
                            rule,
                            cached,
                        },
                    );
                    if success {
                        stats.fp_deployable += 1;
                        removed.insert(i);
                        self.demote_event(&rc[i].mined.check, FalsifyReason::Deployable);
                        false_positives.push(FalsifiedCheck {
                            mined: rc[i].mined.clone(),
                            reason: FalsifyReason::Deployable,
                        });
                        // Every violated open candidate falls with it: the
                        // deployment succeeded despite violating them all.
                        let soft_indices: Vec<usize> = rc
                            .iter()
                            .enumerate()
                            .filter(|(j, _)| *j != i && !removed.contains(j))
                            .map(|(j, _)| j)
                            .collect();
                        for (pos_in_soft, &j) in soft_indices.iter().enumerate() {
                            if neg.violated_soft.contains(&pos_in_soft) {
                                stats.fp_deployable += 1;
                                removed.insert(j);
                                self.demote_event(&rc[j].mined.check, FalsifyReason::Deployable);
                                false_positives.push(FalsifiedCheck {
                                    mined: rc[j].mined.clone(),
                                    reason: FalsifyReason::Deployable,
                                });
                            }
                        }
                    }
                }
            }
        }
        removed
    }

    /// The wave-parallel false-positive pass: plan conflict-free waves,
    /// *speculatively* encode and batch-deploy each wave, then replay the
    /// exact sequential timeline consuming speculative records whose soft
    /// sets match. Verdict sets are identical to [`Self::fp_pass_sequential`]
    /// by construction: solver UNSAT / not-applicable verdicts do not depend
    /// on soft constraints at all (exact whenever discovered), and every
    /// deploy-dependent verdict is confirmed at its exact position.
    #[allow(clippy::too_many_arguments)]
    fn fp_pass_waves(
        &self,
        rc: &mut [Candidate],
        hard: &[Check],
        hard_fps: &[u64],
        false_positives: &mut Vec<FalsifiedCheck>,
        stats: &mut IterationStats,
        index: &mdc::CorpusIndex,
        reach: &plan::TypeReach,
        memo: &mut NegMemo,
        waves_done: &mut u64,
    ) -> BTreeSet<usize> {
        let n = rc.len();
        // Canonical-position map of demotions (see [`relevant_open`]); the
        // plain demotion *set* is its key set.
        let mut exact_at: BTreeMap<usize, usize> = BTreeMap::new();

        // Positive cases up front: the no-positive-case verdict is
        // soft-set-independent, so these demotions are exact. (A candidate
        // the sequential path would have demoted earlier by co-violation
        // gets a different *reason* here, never a different verdict.)
        for (i, cand) in rc.iter_mut().enumerate() {
            if self.ensure_positive(cand, index).is_none() {
                exact_at.insert(i, i);
                self.demote_event(&cand.mined.check, FalsifyReason::NoPositiveCase);
                false_positives.push(FalsifiedCheck {
                    mined: cand.mined.clone(),
                    reason: FalsifyReason::NoPositiveCase,
                });
            }
        }

        let cands: Vec<plan::PlanCandidate> =
            rc.iter().map(|c| plan_candidate(c, self.kb)).collect();
        let wave_plan = plan::plan_waves(&cands, reach);
        if self.obs.is_enabled() {
            for (w, wave) in wave_plan.waves.iter().enumerate() {
                for &i in wave {
                    self.lifecycle(
                        &rc[i].mined.check,
                        Lifecycle::Scheduled {
                            wave: *waves_done + w as u64,
                            conflicts: wave_plan.degree[i] as u64,
                        },
                    );
                }
            }
        }

        // ---- speculation: encode and batch-deploy wave by wave ----------
        struct Spec {
            soft_ids: Vec<usize>,
            neg: Box<mutate::NegativeCase>,
            report: DeployReport,
            cached: bool,
        }
        let mut specs: HashMap<usize, Spec> = HashMap::new();
        let mut spec_at: BTreeMap<usize, usize> = exact_at.clone();
        for (w, wave) in wave_plan.waves.iter().enumerate() {
            let mut members: Vec<(usize, Vec<usize>, Box<mutate::NegativeCase>)> = Vec::new();
            for &i in wave {
                if spec_at.get(&i).is_some_and(|&p| p <= i) {
                    continue; // Expected demoted at or before its own turn.
                }
                let soft_ids = relevant_open(i, &wave_plan, &spec_at, n);
                match self.memoized_negative(rc, i, &soft_ids, hard, hard_fps, memo) {
                    MutationResult::Unsat => {
                        stats.fp_unsatisfiable += 1;
                        exact_at.insert(i, i);
                        spec_at.insert(i, i);
                        self.demote_event(&rc[i].mined.check, FalsifyReason::Unsatisfiable);
                        false_positives.push(FalsifiedCheck {
                            mined: rc[i].mined.clone(),
                            reason: FalsifyReason::Unsatisfiable,
                        });
                    }
                    MutationResult::NotApplicable => {
                        exact_at.insert(i, i);
                        spec_at.insert(i, i);
                        self.demote_event(&rc[i].mined.check, FalsifyReason::NotApplicable);
                        false_positives.push(FalsifiedCheck {
                            mined: rc[i].mined.clone(),
                            reason: FalsifyReason::NotApplicable,
                        });
                    }
                    MutationResult::Negative(neg) => members.push((i, soft_ids, neg)),
                }
            }
            if members.is_empty() {
                continue;
            }
            let batch: Vec<Program> = members
                .iter()
                .map(|(_, _, neg)| neg.program.clone())
                .collect();
            let span = if self.obs.is_enabled() {
                let mut span = self.obs.start_span("pipeline/validation/wave");
                span.attr("wave", *waves_done + w as u64);
                span.attr("width", wave.len());
                span.attr("batch", batch.len());
                let degree = wave.iter().map(|&i| wave_plan.degree[i]).max().unwrap_or(0);
                span.attr("degree", degree);
                Some(span)
            } else {
                None
            };
            let reports = self.oracle.deploy_batch_annotated(&batch);
            if let Some(span) = span {
                span.finish();
            }
            self.obs.counter("validation.waves", 1);
            for ((i, soft_ids, neg), (report, cached)) in members.into_iter().zip(reports) {
                if report.outcome.is_success() {
                    // Predicted demotions: the deployer at position `i`
                    // takes itself and every violated candidate down.
                    spec_at
                        .entry(i)
                        .and_modify(|p| *p = (*p).min(i))
                        .or_insert(i);
                    for &pos in &neg.violated_soft {
                        if let Some(&j) = soft_ids.get(pos) {
                            spec_at
                                .entry(j)
                                .and_modify(|p| *p = (*p).min(i))
                                .or_insert(i);
                        }
                    }
                }
                specs.insert(
                    i,
                    Spec {
                        soft_ids,
                        neg,
                        report,
                        cached,
                    },
                );
            }
        }
        *waves_done += wave_plan.waves.len() as u64;

        // ---- exact replay along the canonical timeline -------------------
        for i in 0..n {
            if exact_at.get(&i).is_some_and(|&p| p <= i) {
                continue; // Demoted before its turn — exactly as sequential.
            }
            let soft_ids = relevant_open(i, &wave_plan, &exact_at, n);
            let (soft_ids, neg, report, cached) = match specs.remove(&i) {
                Some(s) if s.soft_ids == soft_ids => (s.soft_ids, s.neg, s.report, s.cached),
                _ => {
                    // Mispredicted soft set (a speculative demotion that did
                    // not happen, or happened at the wrong position):
                    // recompute at the exact position and deploy alone.
                    self.obs.counter("validation.wave.replays", 1);
                    match self.memoized_negative(rc, i, &soft_ids, hard, hard_fps, memo) {
                        MutationResult::Unsat => {
                            stats.fp_unsatisfiable += 1;
                            exact_at.insert(i, i);
                            self.demote_event(&rc[i].mined.check, FalsifyReason::Unsatisfiable);
                            false_positives.push(FalsifiedCheck {
                                mined: rc[i].mined.clone(),
                                reason: FalsifyReason::Unsatisfiable,
                            });
                            continue;
                        }
                        MutationResult::NotApplicable => {
                            exact_at.insert(i, i);
                            self.demote_event(&rc[i].mined.check, FalsifyReason::NotApplicable);
                            false_positives.push(FalsifiedCheck {
                                mined: rc[i].mined.clone(),
                                reason: FalsifyReason::NotApplicable,
                            });
                            continue;
                        }
                        MutationResult::Negative(neg) => {
                            let (report, cached) = self.oracle.deploy_annotated(&neg.program);
                            (soft_ids, neg, report, cached)
                        }
                    }
                }
            };
            let (success, phase, rule) = outcome_fields(&report);
            self.lifecycle(
                &rc[i].mined.check,
                Lifecycle::DeployOutcome {
                    polarity: Polarity::FpProbe,
                    success,
                    phase,
                    rule,
                    cached,
                },
            );
            if success {
                stats.fp_deployable += 1;
                exact_at.insert(i, i);
                self.demote_event(&rc[i].mined.check, FalsifyReason::Deployable);
                false_positives.push(FalsifiedCheck {
                    mined: rc[i].mined.clone(),
                    reason: FalsifyReason::Deployable,
                });
                for &pos in &neg.violated_soft {
                    let Some(&j) = soft_ids.get(pos) else {
                        continue;
                    };
                    match exact_at.entry(j) {
                        std::collections::btree_map::Entry::Occupied(mut e) => {
                            // Already demoted by a soft-set-independent
                            // verdict at its own (later) position; tighten
                            // it to the co-violation position so later soft
                            // sets exclude it, as the sequential path would.
                            let p = *e.get();
                            e.insert(p.min(i));
                        }
                        std::collections::btree_map::Entry::Vacant(v) => {
                            v.insert(i);
                            stats.fp_deployable += 1;
                            self.demote_event(&rc[j].mined.check, FalsifyReason::Deployable);
                            false_positives.push(FalsifiedCheck {
                                mined: rc[j].mined.clone(),
                                reason: FalsifyReason::Deployable,
                            });
                        }
                    }
                }
            }
        }
        exact_at.keys().copied().collect()
    }

    /// Generates one shared negative test per open candidate (full soft
    /// lists — the sequential baseline), for the grouping and TP passes.
    fn generate_negatives_full(
        &self,
        rc: &mut [Candidate],
        hard: &[Check],
        index: &mdc::CorpusIndex,
    ) -> Vec<Option<SharedNegative>> {
        let n = rc.len();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            if self.ensure_positive(&mut rc[i], index).is_none() {
                out.push(None);
                continue;
            }
            let soft: Vec<(Check, u64)> = (0..n)
                .filter(|j| *j != i)
                .map(|j| (rc[j].mined.check.clone(), soft_weight(&rc[j].mined)))
                .collect();
            let Some(positive) = rc[i].positive.as_ref() else {
                out.push(None);
                continue;
            };
            let result = mutate::negative_test(
                &rc[i].mined.check,
                positive,
                hard,
                &soft,
                self.kb,
                self.corpus,
                &self.cfg.mutation,
            );
            out.push(match result {
                MutationResult::Negative(neg) => {
                    let soft_global: Vec<usize> = (0..n).filter(|j| *j != i).collect();
                    let violates = neg
                        .violated_soft
                        .iter()
                        .filter_map(|&p| soft_global.get(p).copied())
                        .collect();
                    Some(SharedNegative {
                        neg: *neg,
                        violates,
                    })
                }
                _ => None,
            });
        }
        out
    }

    /// [`Self::generate_negatives_full`] with relevance-reduced soft lists
    /// and the memo: irrelevant checks cannot ground over a candidate's
    /// mutants, so dropping them leaves the solver's answer — and the
    /// violated set — unchanged while making encodings mostly reusable
    /// across passes and iterations.
    fn generate_negatives_reduced(
        &self,
        rc: &mut [Candidate],
        hard: &[Check],
        hard_fps: &[u64],
        index: &mdc::CorpusIndex,
        reach: &plan::TypeReach,
        memo: &mut NegMemo,
    ) -> Vec<Option<SharedNegative>> {
        let n = rc.len();
        for cand in rc.iter_mut() {
            self.ensure_positive(cand, index);
        }
        let cands: Vec<plan::PlanCandidate> =
            rc.iter().map(|c| plan_candidate(c, self.kb)).collect();
        let wave_plan = plan::plan_waves(&cands, reach);
        let open = BTreeMap::new();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            if rc[i].positive.is_none() {
                out.push(None);
                continue;
            }
            let soft_ids = relevant_open(i, &wave_plan, &open, n);
            let result = self.memoized_negative(rc, i, &soft_ids, hard, hard_fps, memo);
            out.push(match result {
                MutationResult::Negative(neg) => {
                    let violates = neg
                        .violated_soft
                        .iter()
                        .filter_map(|&p| soft_ids.get(p).copied())
                        .collect();
                    Some(SharedNegative {
                        neg: *neg,
                        violates,
                    })
                }
                _ => None,
            });
        }
        out
    }

    /// Finds indistinguishable groups (O3): candidates that mutually violate
    /// each other's negative tests and for which no test separates them.
    fn group_indistinct(
        &self,
        rc: &mut [Candidate],
        validated: &[ValidatedCheck],
        negatives: &[Option<SharedNegative>],
    ) -> Vec<Vec<usize>> {
        let n = rc.len();
        if n < 2 {
            return Vec::new();
        }
        // Step 1: mutual-violation adjacency from the shared negative tests.
        let mut violates: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
        for i in 0..n {
            if let Some(shared) = negatives[i].as_ref() {
                violates[i] = shared.violates.clone();
            }
        }
        // Candidate groups come from two granularities: components over
        // *mutual* violation (the paper's step 1), and weakly-connected
        // components of the violation digraph — needed when equivalent
        // check families chain through one-directional violations (e.g.
        // `Regular ⇒ no eviction policy` and its `eviction ⇒ Spot`
        // contrapositives). The UNSAT probes of step 2 reject any
        // over-approximation.
        let components = |mutual: bool| -> Vec<Vec<usize>> {
            let mut component = vec![usize::MAX; n];
            let mut next = 0usize;
            for i in 0..n {
                if component[i] != usize::MAX {
                    continue;
                }
                let mut stack = vec![i];
                component[i] = next;
                while let Some(cur) = stack.pop() {
                    let neighbours: Vec<usize> = if mutual {
                        violates[cur]
                            .iter()
                            .copied()
                            .filter(|&j| violates[j].contains(&cur))
                            .collect()
                    } else {
                        // Weak connectivity: edges in either direction.
                        (0..n)
                            .filter(|&j| violates[cur].contains(&j) || violates[j].contains(&cur))
                            .collect()
                    };
                    for j in neighbours {
                        if component[j] == usize::MAX {
                            component[j] = next;
                            stack.push(j);
                        }
                    }
                }
                next += 1;
            }
            let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
            for (i, &c) in component.iter().enumerate() {
                groups.entry(c).or_default().push(i);
            }
            groups.into_values().collect()
        };
        let mut candidate_groups: Vec<Vec<usize>> = components(true);
        for weak in components(false) {
            if weak.len() <= 12 && !candidate_groups.contains(&weak) {
                candidate_groups.push(weak);
            }
        }
        // Step 2: UNSAT probes — a candidate group is real only if no member
        // can be violated while conforming to the rest of the group.
        let mut out = Vec::new();
        'group: for members in candidate_groups {
            if members.len() < 2 {
                continue;
            }
            for &i in &members {
                let Some(positive) = rc[i].positive.as_ref() else {
                    continue;
                };
                let mut hard: Vec<Check> =
                    validated.iter().map(|v| v.mined.check.clone()).collect();
                hard.extend(
                    members
                        .iter()
                        .filter(|&&j| j != i)
                        .map(|&j| rc[j].mined.check.clone()),
                );
                let no_soft: [(Check, u64); 0] = [];
                let result = mutate::negative_test(
                    &rc[i].mined.check,
                    positive,
                    &hard,
                    &no_soft,
                    self.kb,
                    self.corpus,
                    &self.cfg.mutation,
                );
                if matches!(result, MutationResult::Negative(_)) {
                    // Separable: not an indistinguishable group.
                    continue 'group;
                }
            }
            out.push(members);
        }
        out
    }
}

/// Literal helper re-exported for tests.
pub fn value_str(v: &str) -> Value {
    Value::s(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_depths_follow_reference_chains() {
        let kb = zodiac_kb::azure_kb();
        let depths = type_depths(&kb);
        let d = |t: &str| depths.get(&Symbol::intern(t)).copied().unwrap_or(-1);
        // RG references nothing; VNet references RG; subnet references VNet;
        // NIC references subnet; VM references NICs.
        assert_eq!(d("azurerm_resource_group"), 0);
        assert!(d("azurerm_virtual_network") > d("azurerm_resource_group"));
        assert!(d("azurerm_subnet") > d("azurerm_virtual_network"));
        assert!(d("azurerm_network_interface") > d("azurerm_subnet"));
        assert!(d("azurerm_linux_virtual_machine") > d("azurerm_network_interface"));
    }

    #[test]
    fn self_referencing_types_terminate() {
        // azurerm_managed_disk can reference itself (source_resource_id).
        let kb = zodiac_kb::azure_kb();
        let depths = type_depths(&kb);
        assert!(depths.contains_key(&Symbol::intern("azurerm_managed_disk")));
    }

    #[test]
    fn check_order_uses_min_binding_depth() {
        let kb = zodiac_kb::azure_kb();
        let depths = type_depths(&kb);
        let nic_vpc = zodiac_spec::parse_check(
            "let r1:NIC, r2:VPC in path(r1 -> r2) => r1.location == r2.location",
        )
        .unwrap();
        let vm_nic = zodiac_spec::parse_check(
            "let r1:VM, r2:NIC in path(r1 -> r2) => r1.location == r2.location",
        )
        .unwrap();
        // Both touch NICs, but the NIC/VPC check bottoms out at the VPC,
        // which deploys earlier — so it is evaluated first (O4).
        assert!(check_order(&nic_vpc, &depths) < check_order(&vm_nic, &depths));
    }

    #[test]
    fn soft_weight_saturates() {
        let mined = |support: usize| zodiac_mining::MinedCheck {
            check: zodiac_spec::parse_check(
                "let r:VM in r.priority == 'Spot' => r.eviction_policy != null",
            )
            .unwrap(),
            family: "t",
            support,
            confidence: 1.0,
            lift: None,
            interp: None,
        };
        assert_eq!(soft_weight(&mined(3)), 3);
        assert_eq!(soft_weight(&mined(5000)), 100);
    }

    #[test]
    fn groups_as_one_counts_correctly() {
        let outcome = ValidationOutcome {
            validated: Vec::new(),
            false_positives: Vec::new(),
            unresolved: Vec::new(),
            groups: vec![vec![0, 1, 2], vec![3, 4]],
            trace: ValidationTrace::default(),
        };
        // 0 validated entries but 5 grouped indices is inconsistent in real
        // runs; the arithmetic is what we check: len - grouped + groups.
        let fake = ValidationOutcome {
            validated: (0..7)
                .map(|_| ValidatedCheck {
                    mined: zodiac_mining::MinedCheck {
                        check: zodiac_spec::parse_check(
                            "let r:VM in r.priority == 'Spot' => r.eviction_policy != null",
                        )
                        .unwrap(),
                        family: "t",
                        support: 1,
                        confidence: 1.0,
                        lift: None,
                        interp: None,
                    },
                    via_group: false,
                    negative_report: zodiac_cloud::DeployReport {
                        outcome: zodiac_cloud::DeployOutcome::Success,
                        deployed: Vec::new(),
                        halted: Vec::new(),
                        rollback: Vec::new(),
                        violations: Vec::new(),
                    },
                    negative_size: 1,
                })
                .collect(),
            ..outcome
        };
        // 7 checks, groups of 3 and 2 → 7 - 5 + 2 = 4.
        assert_eq!(fake.validated_groups_as_one(), 4);
    }
}
