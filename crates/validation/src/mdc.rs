//! Positive test cases and minimal-deployable-configuration pruning.
//!
//! Given a candidate check, [`find_positive`] scans the corpus for a program
//! containing a *witness* (a binding satisfying both condition and
//! statement), then prunes it to the witness resources plus their ancestor
//! closure — the resources required for the witness to deploy. Everything
//! else (unreachable resources, and child resources that would deploy after
//! the check takes effect) is removed, shrinking SMT encodings and cloud
//! cost (§4.1, *pruning IaC programs*; evaluated in Table 6).

use serde::Serialize;
use std::collections::{BTreeMap, HashSet};
use zodiac_graph::{ancestors, NodeIdx, ResourceGraph};
use zodiac_kb::KnowledgeBase;
use zodiac_model::{Program, ResourceId, Symbol};
use zodiac_spec::{witnesses, Check, EvalContext};

/// A positive test case for a check.
#[derive(Debug, Clone)]
pub struct PositiveCase {
    /// The pruned (MDC) program.
    pub program: Program,
    /// Witness binding: variable → resource id in `program`.
    pub witness: BTreeMap<Symbol, ResourceId>,
    /// Pruning statistics for this case.
    pub stats: MdcStats,
}

/// Before/after pruning statistics (Table 6).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct MdcStats {
    /// KB-attended resources after pruning.
    pub pruned_attended: usize,
    /// KB-attended resources before pruning.
    pub orig_attended: usize,
    /// Unattended resources after pruning.
    pub pruned_unattended: usize,
    /// Unattended resources before pruning.
    pub orig_unattended: usize,
}

/// Prebuilt per-program resource graphs plus their type inventories, shared
/// across every positive-case search of a scheduler run. Building a graph
/// per `(check, program)` pair used to dominate positive-case cost; the
/// index builds each graph exactly once and lets searches skip programs
/// that lack one of a check's bound types (such programs cannot contain a
/// witness, so skipping them is behavior-preserving).
pub struct CorpusIndex {
    graphs: Vec<ResourceGraph>,
    types: Vec<HashSet<Symbol>>,
}

impl CorpusIndex {
    /// Builds graphs and type inventories for every corpus program.
    pub fn build(corpus: &[Program]) -> CorpusIndex {
        let graphs: Vec<ResourceGraph> = corpus
            .iter()
            .map(|p| ResourceGraph::build(p.clone()))
            .collect();
        let types = graphs
            .iter()
            .map(|g| {
                g.program()
                    .resources()
                    .iter()
                    .map(|r| Symbol::intern(&r.rtype))
                    .collect()
            })
            .collect();
        CorpusIndex { graphs, types }
    }

    /// The prebuilt graphs, in corpus order.
    pub fn graphs(&self) -> &[ResourceGraph] {
        &self.graphs
    }

    /// True when program `i` contains at least one resource of every type
    /// the check binds — a necessary condition for a witness.
    fn may_witness(&self, i: usize, check: &Check) -> bool {
        check
            .bindings
            .iter()
            .all(|b| self.types[i].contains(&b.rtype))
    }
}

/// Finds a positive test case for `check` in the corpus, preferring the
/// program that yields the smallest MDC.
pub fn find_positive(
    check: &Check,
    corpus: &[Program],
    kb: &KnowledgeBase,
    max_scan: usize,
) -> Option<PositiveCase> {
    find_positive_indexed(check, &CorpusIndex::build(corpus), kb, max_scan)
}

/// [`find_positive`] over a prebuilt [`CorpusIndex`] — same scan order,
/// early exit, and tie-break, so the result is identical; only the graph
/// construction is amortised.
pub fn find_positive_indexed(
    check: &Check,
    index: &CorpusIndex,
    kb: &KnowledgeBase,
    max_scan: usize,
) -> Option<PositiveCase> {
    let mut best: Option<PositiveCase> = None;
    for (i, graph) in index.graphs.iter().take(max_scan.max(1)).enumerate() {
        if !index.may_witness(i, check) {
            continue;
        }
        let ctx = EvalContext {
            graph,
            kb: Some(kb),
        };
        let found = witnesses(check, ctx);
        let Some(w) = found.first() else { continue };
        let case = prune(graph, &w.binding, kb);
        let better = best
            .as_ref()
            .is_none_or(|b| case.program.len() < b.program.len());
        if better {
            let minimal = case.program.len();
            best = Some(case);
            if minimal <= check.bindings.len() + 2 {
                break; // Cannot get much smaller.
            }
        }
    }
    best
}

/// Prunes a program to the witness binding plus its ancestor closure.
pub fn prune(
    graph: &ResourceGraph,
    binding: &BTreeMap<Symbol, NodeIdx>,
    kb: &KnowledgeBase,
) -> PositiveCase {
    let mut keep: HashSet<NodeIdx> = binding.values().copied().collect();
    for &node in binding.values() {
        keep.extend(ancestors(graph, node));
    }

    let program = graph.program();
    let mut stats = MdcStats::default();
    for (idx, r) in program.resources().iter().enumerate() {
        let attended = kb.is_attended(&r.rtype);
        if attended {
            stats.orig_attended += 1;
        } else {
            stats.orig_unattended += 1;
        }
        if keep.contains(&idx) {
            if attended {
                stats.pruned_attended += 1;
            } else {
                stats.pruned_unattended += 1;
            }
        }
    }

    let keep_ids: HashSet<ResourceId> = keep.iter().map(|&n| graph.resource(n).id()).collect();
    let mut pruned = program.clone();
    pruned.retain_ids(&keep_ids);

    let witness = binding
        .iter()
        .map(|(&var, &node)| (var, graph.resource(node).id()))
        .collect();

    PositiveCase {
        program: pruned,
        witness,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zodiac_model::{Resource, Value};
    use zodiac_spec::parse_check;

    /// rg ← vnet ← subnet ← nic ← vm, plus an unrelated storage account and
    /// an unattended custom resource.
    fn sample() -> Program {
        Program::new()
            .with(
                Resource::new("azurerm_resource_group", "rg")
                    .with("name", "rg")
                    .with("location", "eastus"),
            )
            .with(
                Resource::new("azurerm_virtual_network", "v")
                    .with("name", "vn")
                    .with(
                        "resource_group_name",
                        Value::r("azurerm_resource_group", "rg", "name"),
                    ),
            )
            .with(Resource::new("azurerm_subnet", "s").with(
                "virtual_network_name",
                Value::r("azurerm_virtual_network", "v", "name"),
            ))
            .with(
                Resource::new("azurerm_network_interface", "n")
                    .with("location", "eastus")
                    .with("subnet_id", Value::r("azurerm_subnet", "s", "id")),
            )
            .with(
                Resource::new("azurerm_linux_virtual_machine", "vm")
                    .with("location", "eastus")
                    .with(
                        "network_interface_ids",
                        Value::List(vec![Value::r("azurerm_network_interface", "n", "id")]),
                    ),
            )
            .with(Resource::new("azurerm_storage_account", "sa").with("name", "saxyz"))
            .with(Resource::new("custom_thing", "x").with("name", "x"))
    }

    #[test]
    fn finds_and_prunes_witness() {
        let kb = zodiac_kb::azure_kb();
        let check = parse_check(
            "let r1:VM, r2:NIC in conn(r1.network_interface_ids -> r2.id) => r1.location == r2.location",
        )
        .unwrap();
        let case = find_positive(&check, &[sample()], &kb, 100).expect("witness exists");
        // Keeps vm + nic + subnet + vnet + rg; drops SA and the custom type.
        assert_eq!(case.program.len(), 5);
        assert!(case
            .program
            .find(&ResourceId::new("azurerm_storage_account", "sa"))
            .is_none());
        assert!(case
            .program
            .find(&ResourceId::new("custom_thing", "x"))
            .is_none());
        assert_eq!(case.stats.orig_attended, 6);
        assert_eq!(case.stats.pruned_attended, 5);
        assert_eq!(case.stats.orig_unattended, 1);
        assert_eq!(case.stats.pruned_unattended, 0);
        assert_eq!(
            case.witness.get(&Symbol::intern("r1")),
            Some(&ResourceId::new("azurerm_linux_virtual_machine", "vm"))
        );
    }

    #[test]
    fn no_witness_returns_none() {
        let kb = zodiac_kb::azure_kb();
        let check =
            parse_check("let r:GW in r.sku == 'Basic' => r.active_active == false").unwrap();
        assert!(find_positive(&check, &[sample()], &kb, 100).is_none());
    }

    #[test]
    fn pruned_program_still_witnesses() {
        let kb = zodiac_kb::azure_kb();
        let check = parse_check(
            "let r1:VM, r2:NIC in conn(r1.network_interface_ids -> r2.id) => r1.location == r2.location",
        )
        .unwrap();
        let case = find_positive(&check, &[sample()], &kb, 100).unwrap();
        let graph = ResourceGraph::build(case.program.clone());
        let ctx = EvalContext {
            graph: &graph,
            kb: Some(&kb),
        };
        assert_eq!(witnesses(&check, ctx).len(), 1);
    }
}
