//! Check grounding: compiling checks over a fixed resource graph into
//! solver constraints over symbolic attribute variables.
//!
//! This is the shared core of two solver encodings that run in opposite
//! directions:
//!
//! * **mutation** ([`crate::mutate`], §4.1) — violate one target check
//!   while conforming to the rest (negative-test generation);
//! * **repair** (`zodiac-repair`) — satisfy *all* checks at once while
//!   changing as few attributes as possible (the mutation encoding run in
//!   reverse).
//!
//! Both build the same three ingredients: a set of **symbolic attributes**
//! (KB-derived candidate domains per mutable attribute), a map from
//! `(resource, attribute)` to solver variables, and a [`Grounder`] that
//! folds every check instance touching a symbolic resource into a
//! [`Constraint`]. Topology is fixed before grounding, so topological atoms
//! (`conn`, `path`, degrees, lengths) ground to constants; only attribute
//! endpoints become variables.

use std::collections::{BTreeMap, BTreeSet};
use zodiac_graph::ResourceGraph;
use zodiac_kb::{AttrKind, KnowledgeBase, ValueFormat};
use zodiac_model::{AttrPath, Cidr, Program, Resource, ResourceId, Symbol, Value};
use zodiac_solver::{Constraint, Term, VarId};
use zodiac_spec::{instances, Check, EvalContext, Expr, Val};

/// A symbolic attribute: its location, original value, and candidate domain
/// (original first, so weight-1 prefer-original softs make branch-and-bound
/// a change-minimisation search).
#[derive(Debug, Clone)]
pub struct SymbolicAttr {
    /// Dotted attribute path, interned.
    pub attr: Symbol,
    /// The value the program currently has (after applying KB defaults).
    pub original: Value,
    /// Candidate values, original first.
    pub domain: Vec<Value>,
    /// Whether writes must re-wrap the value in a single-element list
    /// (the original was a one-element top-level list).
    pub wrap_list: bool,
}

/// Attribute paths mentioned (per resource type) across a set of checks.
/// Only these attributes can matter to a solver encoding; restricting the
/// variable set keeps search tractable.
pub fn relevant_attrs<'a, I>(checks: I) -> BTreeMap<String, BTreeSet<String>>
where
    I: IntoIterator<Item = &'a Check>,
{
    let mut out: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for check in checks {
        let mut record = |var: &str, attr: &str| {
            if let Some(rtype) = check.type_of(var) {
                out.entry(rtype.to_string())
                    .or_default()
                    .insert(attr.to_string());
            }
        };
        fn walk_val(v: &Val, record: &mut dyn FnMut(&str, &str)) {
            match v {
                Val::Endpoint { var, attr } => record(var, attr),
                Val::Length(inner) => walk_val(inner, record),
                _ => {}
            }
        }
        fn walk_expr(e: &Expr, record: &mut dyn FnMut(&str, &str)) {
            match e {
                Expr::Cmp { lhs, rhs, .. } => {
                    walk_val(lhs, record);
                    walk_val(rhs, record);
                }
                Expr::CoConn { first, second } | Expr::CoPath { first, second } => {
                    walk_expr(first, record);
                    walk_expr(second, record);
                }
                _ => {}
            }
        }
        walk_expr(&check.cond, &mut record);
        walk_expr(&check.stmt, &mut record);
    }
    out
}

/// Builds the symbolic attributes of one resource: every schema attribute
/// in the `relevant` set whose KB format yields a non-trivial domain (enum
/// members, locations, adjacent CIDR ranges, boolean flips), extended with
/// caller-provided `cross` values (forced equalities, containment targets)
/// and — for optional attributes the `removable` predicate admits —
/// `Value::Null` (removal) plus a corpus-borrowed concrete value when the
/// original is absent.
pub fn symbolic_attrs(
    resource: &Resource,
    kb: &KnowledgeBase,
    corpus: &[Program],
    relevant: &BTreeMap<String, BTreeSet<String>>,
    cross: &BTreeMap<(ResourceId, Symbol), Vec<Value>>,
    removable: &dyn Fn(&str) -> bool,
) -> Vec<SymbolicAttr> {
    let Some(schema) = kb.resource(&resource.rtype) else {
        // Unattended resources are immutable (§4.1).
        return Vec::new();
    };
    let relevant_here = relevant.get(&resource.rtype);
    let rid = resource.id();
    let mut out = Vec::new();
    for attr in schema.attrs.values() {
        if !relevant_here.is_some_and(|set| set.contains(&attr.path)) {
            continue;
        }
        let segs: Vec<String> = attr.path.split('.').map(str::to_string).collect();
        let current = zodiac_spec::eval::resolve_multi(resource, &segs);
        let (mut original, wrap_list) = match current.as_slice() {
            [v] => (
                v.clone(),
                matches!(
                    resource.get(&AttrPath(vec![segs[0].clone()])),
                    Some(Value::List(_))
                ) && segs.len() == 1,
            ),
            [] => (Value::Null, false),
            _ => continue, // Multi-valued: left immutable.
        };
        // The evaluator applies KB defaults to omitted attributes, so the
        // solver must see the same semantics: an absent attribute with a
        // provider default *is* that default, and `Null` never enters the
        // domain of a defaulted attribute (assigning it would diverge from
        // evaluation).
        let provider_default = attr.format.default_value();
        if matches!(original, Value::Null) {
            if let Some(d) = &provider_default {
                original = d.clone();
            }
        }
        let mut domain = vec![original.clone()];
        match &attr.format {
            ValueFormat::Enum { values, .. } => {
                for v in values {
                    let val = Value::s(v.clone());
                    if !domain.contains(&val) {
                        domain.push(val);
                    }
                }
            }
            ValueFormat::BoolDefault { .. } => {
                let flipped = match &original {
                    Value::Bool(b) => Value::Bool(!b),
                    _ => Value::Bool(true),
                };
                if !domain.contains(&flipped) {
                    domain.push(flipped);
                }
            }
            ValueFormat::Location => {
                for l in &kb.locations {
                    let val = Value::s(l.clone());
                    if !domain.contains(&val) {
                        domain.push(val);
                    }
                }
            }
            ValueFormat::Cidr => {
                if let Some(c) = original.as_str().and_then(|s| s.parse::<Cidr>().ok()) {
                    let mut push = |v: Cidr| {
                        let val = Value::s(v.to_string());
                        if !domain.contains(&val) {
                            domain.push(val);
                        }
                    };
                    push(c.adjacent());
                    push(c.adjacent().adjacent());
                    // A definitely-foreign range for containment violations.
                    if let Ok(outside) = "192.168.250.0/24".parse::<Cidr>() {
                        push(outside);
                    }
                }
            }
            _ => {}
        }
        // Cross values from the caller (statement comparisons, containment
        // targets, overlap escapes).
        if let Some(extra) = cross.get(&(rid.clone(), Symbol::intern(&attr.path))) {
            for v in extra {
                if !matches!(v, Value::Null) && !domain.contains(v) {
                    domain.push(v.clone());
                }
            }
        }
        // Nullability: optional enum/bool attributes may always be removed
        // or instantiated (the solver needs this to satisfy co-checks, e.g.
        // adding an eviction policy when a mutation turns a VM into Spot);
        // other optional attributes only when the caller's predicate admits
        // them.
        let enumish = matches!(
            attr.format,
            ValueFormat::Enum { .. } | ValueFormat::BoolDefault { .. }
        );
        if attr.kind == AttrKind::Optional
            && provider_default.is_none()
            && (enumish || removable(&attr.path))
        {
            if !domain.contains(&Value::Null) {
                domain.push(Value::Null);
            }
            if matches!(original, Value::Null) {
                // Need a concrete value to *set*: borrow one from the corpus.
                if let Some(v) = corpus.iter().find_map(|p| {
                    p.of_type(&resource.rtype).find_map(|r| {
                        let vs = zodiac_spec::eval::resolve_multi(r, &segs);
                        vs.into_iter().next()
                    })
                }) {
                    if !domain.contains(&v) {
                        domain.push(v);
                    }
                }
            }
        }
        if domain.len() > 1 {
            out.push(SymbolicAttr {
                attr: Symbol::intern(&attr.path),
                original,
                domain,
                wrap_list,
            });
        }
    }
    out
}

/// Writes a solved value back into the program at `sym`'s path: `Null`
/// removes the attribute, `wrap_list` re-wraps single-element lists, nested
/// paths descend through single blocks.
pub fn apply_value(program: &mut Program, rid: &ResourceId, sym: &SymbolicAttr, value: Value) {
    let Some(resource) = program.find_mut(rid) else {
        return;
    };
    let path: AttrPath = match sym.attr.parse() {
        Ok(p) => p,
        Err(_) => return,
    };
    if matches!(value, Value::Null) {
        remove_path(resource, &path);
        return;
    }
    let final_value = if sym.wrap_list {
        Value::List(vec![value])
    } else {
        value
    };
    // Nested paths through single blocks resolve indices implicitly: find
    // the concrete path by descending.
    set_normalized(resource, &path.0, final_value);
}

/// Sets a value at a normalised (index-free) path, descending into single
/// list elements.
pub fn set_normalized(resource: &mut Resource, segs: &[String], value: Value) -> bool {
    fn descend(v: &mut Value, segs: &[String], value: Value) -> bool {
        let Some((head, rest)) = segs.split_first() else {
            *v = value;
            return true;
        };
        match v {
            Value::Map(m) => match m.get_mut(head) {
                Some(inner) => descend(inner, rest, value),
                None => {
                    if rest.is_empty() {
                        m.insert(head.clone(), value);
                        true
                    } else {
                        false
                    }
                }
            },
            Value::List(l) => {
                for item in l.iter_mut() {
                    if descend(item, segs, value.clone()) {
                        return true;
                    }
                }
                false
            }
            _ => false,
        }
    }
    let Some((head, rest)) = segs.split_first() else {
        return false;
    };
    if rest.is_empty() {
        resource.attrs.insert(head.clone(), value);
        return true;
    }
    match resource.attrs.get_mut(head) {
        Some(inner) => descend(inner, rest, value),
        None => false,
    }
}

/// Removes the attribute at `path`, descending through maps and lists.
pub fn remove_path(resource: &mut Resource, path: &AttrPath) {
    fn descend(v: &mut Value, segs: &[String]) -> bool {
        let Some((head, rest)) = segs.split_first() else {
            return false;
        };
        match v {
            Value::Map(m) => {
                if rest.is_empty() {
                    m.remove(head).is_some()
                } else if let Some(inner) = m.get_mut(head) {
                    descend(inner, rest)
                } else {
                    false
                }
            }
            Value::List(l) => l.iter_mut().any(|item| descend(item, segs)),
            _ => false,
        }
    }
    if path.0.len() == 1 {
        resource.attrs.remove(&path.0[0]);
        return;
    }
    if let Some(inner) = resource.attrs.get_mut(&path.0[0]) {
        descend(inner, &path.0[1..]);
    }
}

/// Grounds checks over a fixed resource graph into solver constraints.
/// `vars` maps each symbolic `(resource, attribute)` to its solver
/// variable; every other endpoint grounds to constants.
pub struct Grounder<'a> {
    /// The (topology-final) resource graph.
    pub graph: &'a ResourceGraph,
    /// Knowledge base, for provider defaults of absent endpoints.
    pub kb: &'a KnowledgeBase,
    /// Solver variables of the symbolic attributes.
    pub vars: &'a BTreeMap<(ResourceId, Symbol), VarId>,
}

impl Grounder<'_> {
    /// Grounds `check` over every binding that touches a symbolic resource
    /// (other instances cannot be affected by any assignment).
    pub fn ground_all(&self, check: &Check, ctx: EvalContext<'_>) -> Vec<Constraint> {
        let mut out = Vec::new();
        for instance in instances(check, ctx) {
            let touches = instance.binding.values().any(|&n| {
                let id = self.graph.resource(n).id();
                self.vars.keys().any(|(rid, _)| rid == &id)
            });
            if !touches {
                continue;
            }
            let cond = self.ground(&check.cond, &instance.binding);
            let stmt = self.ground(&check.stmt, &instance.binding);
            out.push(Constraint::implies(cond, stmt));
        }
        out
    }

    /// Grounds one expression under a binding from check variables to graph
    /// nodes.
    pub fn ground(&self, expr: &Expr, binding: &BTreeMap<Symbol, usize>) -> Constraint {
        match expr {
            Expr::Conn { .. } | Expr::Path { .. } => constant(self.eval_fixed(expr, binding)),
            Expr::CoConn { first, second } | Expr::CoPath { first, second } => {
                Constraint::And(vec![
                    self.ground(first, binding),
                    self.ground(second, binding),
                ])
            }
            Expr::Cmp {
                op,
                lhs,
                rhs,
                negated,
            } => {
                let l = self.terms(lhs, binding);
                let r = self.terms(rhs, binding);
                let op = *op;
                let mut alternatives = Vec::new();
                for lt in &l {
                    for rt in &r {
                        alternatives.push(Constraint::Cmp {
                            op,
                            lhs: lt.clone(),
                            rhs: rt.clone(),
                        });
                    }
                }
                let existential = if alternatives.is_empty() {
                    Constraint::False
                } else {
                    Constraint::Or(alternatives)
                };
                if *negated {
                    Constraint::Not(Box::new(existential))
                } else {
                    existential
                }
            }
        }
    }

    /// Topology is fixed before grounding, so topological atoms ground to
    /// constants.
    fn eval_fixed(&self, expr: &Expr, binding: &BTreeMap<Symbol, usize>) -> bool {
        match expr {
            Expr::Conn {
                src,
                in_endpoint,
                dst,
                out_attr,
            } => {
                let (Some(&s), Some(&d)) = (binding.get(src), binding.get(dst)) else {
                    return false;
                };
                self.graph
                    .conn(s, Some(in_endpoint.as_str()), d, Some(out_attr.as_str()))
            }
            Expr::Path { src, dst } => {
                let (Some(&s), Some(&d)) = (binding.get(src), binding.get(dst)) else {
                    return false;
                };
                self.graph.path(s, d)
            }
            _ => false,
        }
    }

    /// Resolves a value term into solver terms (variables or constants).
    fn terms(&self, val: &Val, binding: &BTreeMap<Symbol, usize>) -> Vec<Term> {
        match val {
            Val::Lit(v) => vec![Term::Const(v.clone())],
            Val::Endpoint { var, attr } => {
                let Some(&node) = binding.get(var) else {
                    return vec![Term::Const(Value::Null)];
                };
                let id = self.graph.resource(node).id();
                if let Some(v) = self.vars.get(&(id.clone(), *attr)) {
                    return vec![Term::Var(*v)];
                }
                let resource = self.graph.resource(node);
                let segs: Vec<String> = attr.split('.').map(str::to_string).collect();
                let mut found = zodiac_spec::eval::resolve_multi(resource, &segs);
                if found.is_empty() {
                    if let Some(default) = self.kb.default_of(&resource.rtype, attr) {
                        found.push(default);
                    }
                }
                if found.is_empty() {
                    found.push(Value::Null);
                }
                found.into_iter().map(Term::Const).collect()
            }
            Val::InDegree { var, tau } => {
                let Some(&node) = binding.get(var) else {
                    return vec![Term::Const(Value::Null)];
                };
                vec![Term::Const(Value::Int(self.graph.distinct_in_neighbors(
                    node,
                    tau.type_name(),
                    tau.negated(),
                ) as i64))]
            }
            Val::OutDegree { var, tau } => {
                let Some(&node) = binding.get(var) else {
                    return vec![Term::Const(Value::Null)];
                };
                vec![Term::Const(Value::Int(self.graph.distinct_out_neighbors(
                    node,
                    tau.type_name(),
                    tau.negated(),
                ) as i64))]
            }
            Val::Length(inner) => {
                let Val::Endpoint { var, attr } = inner.as_ref() else {
                    return vec![Term::Const(Value::Null)];
                };
                let Some(&node) = binding.get(var) else {
                    return vec![Term::Const(Value::Null)];
                };
                let resource = self.graph.resource(node);
                let path: Result<AttrPath, _> = attr.parse();
                let n = match path.ok().and_then(|p| resource.get(&p).cloned()) {
                    Some(Value::List(l)) => l.len(),
                    Some(Value::Null) | None => 0,
                    Some(_) => 1,
                };
                vec![Term::Const(Value::Int(n as i64))]
            }
        }
    }
}

fn constant(b: bool) -> Constraint {
    if b {
        Constraint::True
    } else {
        Constraint::False
    }
}
