//! Automated counterexample testing (§5.6).
//!
//! The open-world assumption means validated checks can still be false
//! positives: the negative test's deployment failure may have a root cause
//! Zodiac does not know about. This pass hunts for such cases in *additional
//! repositories*: if a program that violates a validated check nevertheless
//! deploys successfully, the check is demoted.

use crate::mdc;
use crate::scheduler::ValidatedCheck;
use crate::DeployOracle;
use zodiac_graph::ResourceGraph;
use zodiac_kb::KnowledgeBase;
use zodiac_model::Program;
use zodiac_obs::{Lifecycle, Obs, Polarity};
use zodiac_spec::{violations, EvalContext};

/// Result of the counterexample pass.
#[derive(Debug, Clone, Default)]
pub struct CounterexampleReport {
    /// Indices (into the validated list) of demoted checks.
    pub demoted: Vec<usize>,
    /// Number of violating programs examined.
    pub examined: usize,
}

/// Runs counterexample testing over extra corpus programs.
///
/// For each validated check, violating programs are pruned around the
/// violation and deployed; a successful deployment is a counterexample.
pub fn counterexample_pass<D: DeployOracle>(
    validated: &[ValidatedCheck],
    extra_corpus: &[Program],
    kb: &KnowledgeBase,
    oracle: &D,
    max_per_check: usize,
) -> CounterexampleReport {
    counterexample_pass_obs(
        validated,
        extra_corpus,
        kb,
        oracle,
        max_per_check,
        &Obs::null(),
    )
}

/// [`counterexample_pass`] with an observability handle: records
/// `validation.ce.*` counters (cases examined, batch sizes, demotions) and
/// a `pipeline/validation/counterexample` span.
pub fn counterexample_pass_obs<D: DeployOracle>(
    validated: &[ValidatedCheck],
    extra_corpus: &[Program],
    kb: &KnowledgeBase,
    oracle: &D,
    max_per_check: usize,
    obs: &Obs,
) -> CounterexampleReport {
    let _span = obs.start_span("pipeline/validation/counterexample");
    let mut report = CounterexampleReport::default();
    for (idx, v) in validated.iter().enumerate() {
        // Gather up to `max_per_check` pruned violating cases first, then
        // deploy them as one batch: an execution engine fans the batch over
        // its worker pool and memoizes repeated cases.
        let mut cases: Vec<Program> = Vec::new();
        'programs: for program in extra_corpus {
            if cases.len() >= max_per_check {
                break;
            }
            let graph = ResourceGraph::build(program.clone());
            let ctx = EvalContext {
                graph: &graph,
                kb: Some(kb),
            };
            for violation in violations(&v.mined.check, ctx) {
                cases.push(mdc::prune(&graph, &violation.binding, kb).program);
                if cases.len() >= max_per_check {
                    break 'programs;
                }
            }
        }
        // `examined` keeps the sequential contract: cases after the first
        // counterexample do not count (a one-at-a-time pass never reaches
        // them), so the report is identical either way.
        obs.histogram("validation.ce.batch_size", cases.len() as u64);
        let reports = oracle.deploy_batch_annotated(&cases);
        let first_success = reports.iter().position(|(r, _)| r.outcome.is_success());
        if obs.is_enabled() {
            // Provenance for the examined prefix only — a sequential pass
            // never deploys past the first counterexample.
            let upper = first_success.map(|k| k + 1).unwrap_or(reports.len());
            let fp = v.mined.check.fingerprint();
            for (r, cached) in &reports[..upper] {
                let success = r.outcome.is_success();
                let (phase, rule) = match &r.outcome {
                    zodiac_cloud::DeployOutcome::Success => (String::new(), String::new()),
                    zodiac_cloud::DeployOutcome::Failure { phase, rule_id, .. } => {
                        (phase.to_string(), rule_id.clone())
                    }
                };
                obs.lifecycle(
                    fp,
                    Lifecycle::DeployOutcome {
                        polarity: Polarity::Counterexample,
                        success,
                        phase,
                        rule,
                        cached: *cached,
                    },
                );
            }
        }
        match first_success {
            Some(k) => {
                report.examined += k + 1;
                report.demoted.push(idx);
                obs.counter("validation.ce.demoted", 1);
                if obs.is_enabled() {
                    obs.lifecycle(
                        v.mined.check.fingerprint(),
                        Lifecycle::Demoted {
                            reason: "counterexample".to_string(),
                        },
                    );
                }
            }
            None => report.examined += cases.len(),
        }
    }
    report.demoted.sort_unstable();
    report.demoted.dedup();
    obs.counter("validation.ce.examined", report.examined as u64);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use zodiac_cloud::{CloudSim, DeployOutcome, DeployReport};
    use zodiac_corpus::CorpusConfig;

    fn validated(src: &str) -> ValidatedCheck {
        ValidatedCheck {
            mined: zodiac_mining::MinedCheck {
                check: zodiac_spec::parse_check(src).expect("valid check"),
                family: "test",
                support: 10,
                confidence: 1.0,
                lift: None,
                interp: None,
            },
            via_group: false,
            negative_report: DeployReport {
                outcome: DeployOutcome::Success,
                deployed: Vec::new(),
                halted: Vec::new(),
                rollback: Vec::new(),
                violations: Vec::new(),
            },
            negative_size: 1,
        }
    }

    fn corpus(rare_option_rate: f64) -> Vec<Program> {
        zodiac_corpus::generate(&CorpusConfig {
            projects: 25,
            noise_rate: 0.0,
            rare_option_rate,
            seed: 0xCE11,
            ..Default::default()
        })
        .into_iter()
        .map(|p| p.program)
        .collect()
    }

    // The §5.6 open-world false positive: `source_image_reference` looks
    // mandatory in the corpus, but a rare-`Attach` VM deploys fine without
    // it — the pass must find that counterexample and demote the check.
    const OPEN_WORLD_FP: &str =
        "let r:VM in r.create_option == 'Attach' => r.source_image_reference != null";

    #[test]
    fn demotes_on_rare_option_counterexample() {
        let kb = zodiac_kb::azure_kb();
        let sim = CloudSim::new_azure();
        let checks = vec![validated(OPEN_WORLD_FP)];
        let extra = corpus(1.0); // Every project uses the rare Attach option.
        let report = counterexample_pass(&checks, &extra, &kb, &sim, 8);
        assert_eq!(report.demoted, vec![0], "the open-world FP is demoted");
        assert!(report.examined >= 1);
    }

    #[test]
    fn conforming_corpus_never_demotes() {
        let kb = zodiac_kb::azure_kb();
        let sim = CloudSim::new_azure();
        let checks = vec![validated(OPEN_WORLD_FP)];
        let extra = corpus(0.0); // No project violates the check.
        let report = counterexample_pass(&checks, &extra, &kb, &sim, 8);
        assert!(
            report.demoted.is_empty(),
            "no violating program, no demotion"
        );
        assert_eq!(report.examined, 0);
    }

    #[test]
    fn enforced_check_survives_violating_programs() {
        let kb = zodiac_kb::azure_kb();
        let sim = CloudSim::new_azure();
        // A check the cloud actually enforces: its violating programs fail
        // to deploy, so none of them is a counterexample.
        let checks = vec![validated(
            "let r:VM in r.priority == 'Spot' => r.eviction_policy != null",
        )];
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let extra: Vec<Program> = corpus(0.0)
            .into_iter()
            .map(|mut p| {
                zodiac_corpus::inject_kind(&mut rng, &mut p, "spot-without-eviction");
                p
            })
            .collect();
        let report = counterexample_pass(&checks, &extra, &kb, &sim, 8);
        assert!(
            report.examined > 0,
            "the injected violations must be exercised"
        );
        assert!(
            report.demoted.is_empty(),
            "enforced checks are never demoted"
        );
    }

    #[test]
    fn pass_is_deterministic() {
        let kb = zodiac_kb::azure_kb();
        let sim = CloudSim::new_azure();
        let checks = vec![
            validated(OPEN_WORLD_FP),
            validated("let r:VM in r.priority == 'Spot' => r.eviction_policy != null"),
        ];
        let extra = corpus(1.0);
        let a = counterexample_pass(&checks, &extra, &kb, &sim, 4);
        let b = counterexample_pass(&checks, &extra, &kb, &sim, 4);
        assert_eq!(a.demoted, b.demoted);
        assert_eq!(a.examined, b.examined);
    }
}
