//! Automated counterexample testing (§5.6).
//!
//! The open-world assumption means validated checks can still be false
//! positives: the negative test's deployment failure may have a root cause
//! Zodiac does not know about. This pass hunts for such cases in *additional
//! repositories*: if a program that violates a validated check nevertheless
//! deploys successfully, the check is demoted.

use crate::mdc;
use crate::scheduler::ValidatedCheck;
use crate::DeployOracle;
use zodiac_graph::ResourceGraph;
use zodiac_kb::KnowledgeBase;
use zodiac_model::Program;
use zodiac_spec::{violations, EvalContext};

/// Result of the counterexample pass.
#[derive(Debug, Clone, Default)]
pub struct CounterexampleReport {
    /// Indices (into the validated list) of demoted checks.
    pub demoted: Vec<usize>,
    /// Number of violating programs examined.
    pub examined: usize,
}

/// Runs counterexample testing over extra corpus programs.
///
/// For each validated check, violating programs are pruned around the
/// violation and deployed; a successful deployment is a counterexample.
pub fn counterexample_pass<D: DeployOracle>(
    validated: &[ValidatedCheck],
    extra_corpus: &[Program],
    kb: &KnowledgeBase,
    oracle: &D,
    max_per_check: usize,
) -> CounterexampleReport {
    let mut report = CounterexampleReport::default();
    for (idx, v) in validated.iter().enumerate() {
        // Gather up to `max_per_check` pruned violating cases first, then
        // deploy them as one batch: an execution engine fans the batch over
        // its worker pool and memoizes repeated cases.
        let mut cases: Vec<Program> = Vec::new();
        'programs: for program in extra_corpus {
            if cases.len() >= max_per_check {
                break;
            }
            let graph = ResourceGraph::build(program.clone());
            let ctx = EvalContext {
                graph: &graph,
                kb: Some(kb),
            };
            for violation in violations(&v.mined.check, ctx) {
                cases.push(mdc::prune(&graph, &violation.binding, kb).program);
                if cases.len() >= max_per_check {
                    break 'programs;
                }
            }
        }
        // `examined` keeps the sequential contract: cases after the first
        // counterexample do not count (a one-at-a-time pass never reaches
        // them), so the report is identical either way.
        let reports = oracle.deploy_batch(&cases);
        match reports.iter().position(|r| r.outcome.is_success()) {
            Some(k) => {
                report.examined += k + 1;
                report.demoted.push(idx);
            }
            None => report.examined += cases.len(),
        }
    }
    report.demoted.sort_unstable();
    report.demoted.dedup();
    report
}
