//! Solver-aided negative test generation (§4.1).
//!
//! Given a positive test case, the mutation engine produces a program that
//! violates the target check while conforming to every check in `R_v`
//! (hard) and disturbing checks in `R_c` as little as possible (soft):
//!
//! 1. a **structural plan** decides topology edits — for aggregation
//!    statements, *virtual resources* are cloned from the corpus and wired
//!    to the witness (the paper's `NIC.v0`, `VPC.v1`, `SUBNET.v2`);
//! 2. eligible attributes of witness and virtual resources become **solver
//!    variables** whose domains come from the KB (enum members, locations,
//!    adjacent CIDR ranges, removability of optional attributes);
//! 3. every known check is **grounded** over the mutated graph's bindings
//!    into solver constraints — the target's condition must hold and its
//!    statement must fail on the witness binding, `R_v` instances are hard,
//!    `R_c` instances are weighted soft constraints (O2);
//! 4. change-minimisation soft constraints prefer original values, keeping
//!    the negative case minimally different (Table 5, bottom).

use crate::ground::{self, Grounder, SymbolicAttr};
use crate::mdc::PositiveCase;
use std::collections::BTreeMap;
use zodiac_graph::ResourceGraph;
use zodiac_kb::KnowledgeBase;
use zodiac_model::{AttrPath, Program, Resource, ResourceId, Symbol, Value};
use zodiac_solver::{solve, Constraint, Problem, Term, VarId};
use zodiac_spec::{Check, CmpOp, EvalContext, Expr, Val};

/// Mutation configuration, including the Table 5 ablation switches.
#[derive(Debug, Clone)]
pub struct MutationConfig {
    /// Encode `R_v` as hard and `R_c` as soft constraints. Disabling tests
    /// only the target check ("ignoring non-target checks", Table 5 top).
    pub consider_other_checks: bool,
    /// Add change-minimisation objectives ("minimizing changes", Table 5
    /// bottom). When disabled, mutated values are tried *first*.
    pub minimize_changes: bool,
    /// Weight of one soft `R_c` instance (relative to weight-1 value
    /// changes).
    pub soft_check_weight: u64,
}

impl Default for MutationConfig {
    fn default() -> Self {
        MutationConfig {
            consider_other_checks: true,
            minimize_changes: true,
            soft_check_weight: 100,
        }
    }
}

/// A generated negative test case.
#[derive(Debug, Clone)]
pub struct NegativeCase {
    /// The mutated program.
    pub program: Program,
    /// Number of attribute values that differ from the positive case.
    pub changed_attrs: usize,
    /// Number of virtual resources added.
    pub added_resources: usize,
    /// Indices into the `soft` check list that the case violates (`R_n`
    /// minus the target).
    pub violated_soft: Vec<usize>,
    /// Indices into the `hard` check list that the case violates (non-empty
    /// only when `consider_other_checks` is off).
    pub violated_hard: Vec<usize>,
}

/// Result of negative-test generation.
#[derive(Debug, Clone)]
pub enum MutationResult {
    /// A negative case was produced.
    Negative(Box<NegativeCase>),
    /// No mutation can violate the target without breaking `R_v` — the
    /// scheduler treats this as evidence against the candidate.
    Unsat,
    /// The statement shape is outside the mutation engine's repertoire.
    NotApplicable,
}

/// Solver models kept from a previous encoding of the same candidate, one
/// per structural variant (`[reuse-deps, fresh-deps]`). Passed back into
/// [`negative_test_seeded`], a still-feasible model bounds the next
/// branch-and-bound from above — pure pruning, identical results.
#[derive(Debug, Clone, Default)]
pub struct SolveSeed {
    /// Full solver assignments per structural variant.
    pub per_variant: [Option<Vec<Value>>; 2],
}

/// How re-solves used previous models (`solver.incremental.*` telemetry).
#[derive(Debug, Clone, Copy, Default)]
pub struct SolveStats {
    /// Solves where a previous model seeded the search with a penalty bound.
    pub seeded: u64,
    /// Solves with no usable previous model.
    pub cold: u64,
}

/// Generates a negative test case for `target` from a positive case.
pub fn negative_test(
    target: &Check,
    positive: &PositiveCase,
    hard: &[Check],
    soft: &[(Check, u64)],
    kb: &KnowledgeBase,
    corpus: &[Program],
    cfg: &MutationConfig,
) -> MutationResult {
    negative_test_seeded(target, positive, hard, soft, kb, corpus, cfg, None).0
}

/// [`negative_test`] with incremental re-solving: `seed` carries the solver
/// models of a previous encoding of the same candidate, and the returned
/// [`SolveSeed`] carries this encoding's models for the next call. Seeding
/// never changes the result — an incompatible or infeasible previous model
/// is simply ignored ([`Problem::seed_bound`] revalidates it against the
/// new constraints).
#[allow(clippy::too_many_arguments)]
pub fn negative_test_seeded(
    target: &Check,
    positive: &PositiveCase,
    hard: &[Check],
    soft: &[(Check, u64)],
    kb: &KnowledgeBase,
    corpus: &[Program],
    cfg: &MutationConfig,
    seed: Option<&SolveSeed>,
) -> (MutationResult, SolveSeed, SolveStats) {
    // Try structural variants (reuse dependencies first, then fresh clones
    // of the dependencies — the paper's optional virtual resources) and keep
    // the least-disturbing SAT result.
    let mut best: Option<NegativeCase> = None;
    let mut saw_not_applicable = false;
    let mut out_seed = SolveSeed::default();
    let mut stats = SolveStats::default();
    for (variant, fresh_deps) in [false, true].into_iter().enumerate() {
        let prev = seed.and_then(|s| s.per_variant[variant].as_deref());
        let (result, model) = negative_test_variant(
            target, positive, hard, soft, kb, corpus, cfg, fresh_deps, prev, &mut stats,
        );
        out_seed.per_variant[variant] = model;
        match result {
            MutationResult::Negative(neg) => {
                let better = best.as_ref().is_none_or(|b| {
                    (
                        neg.violated_hard.len(),
                        neg.violated_soft.len(),
                        neg.changed_attrs,
                    ) < (
                        b.violated_hard.len(),
                        b.violated_soft.len(),
                        b.changed_attrs,
                    )
                });
                let zero = neg.violated_soft.is_empty() && neg.violated_hard.is_empty();
                if better {
                    best = Some(*neg);
                }
                if zero {
                    break;
                }
            }
            MutationResult::NotApplicable => {
                saw_not_applicable = true;
                break;
            }
            MutationResult::Unsat => {}
        }
    }
    let result = match best {
        Some(neg) => MutationResult::Negative(Box::new(neg)),
        None if saw_not_applicable => MutationResult::NotApplicable,
        None => MutationResult::Unsat,
    };
    (result, out_seed, stats)
}

#[allow(clippy::too_many_arguments)]
fn negative_test_variant(
    target: &Check,
    positive: &PositiveCase,
    hard: &[Check],
    soft: &[(Check, u64)],
    kb: &KnowledgeBase,
    corpus: &[Program],
    cfg: &MutationConfig,
    fresh_deps: bool,
    prev_model: Option<&[Value]>,
    stats: &mut SolveStats,
) -> (MutationResult, Option<Vec<Value>>) {
    // ---- structural plan ------------------------------------------------
    let mut program = positive.program.clone();
    let witness_ids: BTreeMap<Symbol, ResourceId> = positive.witness.clone();
    let mut added = 0usize;
    match plan_structure(target, &mut program, &witness_ids, kb, corpus, fresh_deps) {
        PlanOutcome::Ok { added_resources } => added = added_resources,
        PlanOutcome::AttributesOnly => {}
        PlanOutcome::Impossible => return (MutationResult::Unsat, None),
        PlanOutcome::NotApplicable => return (MutationResult::NotApplicable, None),
    }

    let graph = ResourceGraph::build(program.clone());

    // ---- symbolic attributes --------------------------------------------
    let mut problem = Problem::new();
    // Ordered so the apply loop below is deterministic: attribute paths can
    // overlap (a whole `security_rule` block variable plus per-field
    // `security_rule.*` variables), and a parent path must be written before
    // its children or the children's values are clobbered.
    let mut vars: BTreeMap<(ResourceId, Symbol), (VarId, SymbolicAttr)> = BTreeMap::new();
    let symbolic_resources: Vec<ResourceId> = program
        .resources()
        .iter()
        .map(Resource::id)
        .filter(|id| witness_ids.values().any(|w| w == id) || id.name.contains("-zv"))
        .collect();
    // Only attributes that some known check mentions can matter to the
    // solver; restricting the variable set keeps search tractable.
    let relevant = ground::relevant_attrs(
        std::iter::once(target)
            .chain(hard)
            .chain(soft.iter().map(|(c, _)| c)),
    );
    // Cross values let the solver *force equality* between plain string
    // attributes (needed to violate `r2.os_disk.name != r3.name`-style
    // statements): each statement endpoint's current value joins the other
    // endpoint's domain.
    let cross = cross_values(target, &program, &witness_ids);
    // Non-enum optional attributes are only removable when the target
    // statement mentions them — removal elsewhere can't affect the target.
    let removable = |path: &str| stmt_mentions(target, path);
    for id in &symbolic_resources {
        let Some(resource) = program.find(id) else {
            continue; // Ids were just collected from this program.
        };
        for sym in ground::symbolic_attrs(resource, kb, corpus, &relevant, &cross, &removable) {
            let mut domain = sym.domain.clone();
            if !cfg.minimize_changes {
                // Ablation: mutated values are tried before the original.
                domain.reverse();
            }
            let var = problem.add_var(domain);
            if cfg.minimize_changes {
                problem.prefer(
                    Constraint::eq(Term::Var(var), Term::Const(sym.original.clone())),
                    1,
                );
            }
            vars.insert((id.clone(), sym.attr), (var, sym));
        }
    }

    // ---- ground the target on the witness binding ------------------------
    let ctx = EvalContext {
        graph: &graph,
        kb: Some(kb),
    };
    let witness_nodes: BTreeMap<Symbol, usize> = witness_ids
        .iter()
        .filter_map(|(&v, id)| graph.node(id).map(|n| (v, n)))
        .collect();
    if witness_nodes.len() != witness_ids.len() {
        return (MutationResult::NotApplicable, None);
    }
    let var_ids: BTreeMap<(ResourceId, Symbol), VarId> =
        vars.iter().map(|(k, (v, _))| (k.clone(), *v)).collect();
    let grounder = Grounder {
        graph: &graph,
        kb,
        vars: &var_ids,
    };
    let cond = grounder.ground(&target.cond, &witness_nodes);
    let stmt = grounder.ground(&target.stmt, &witness_nodes);
    problem.require(cond);
    problem.require(Constraint::Not(Box::new(stmt)));

    // ---- ground R_v (hard) and R_c (soft) --------------------------------
    if cfg.consider_other_checks {
        for check in hard {
            for grounded in grounder.ground_all(check, ctx) {
                problem.require(grounded);
            }
        }
        for (check, weight) in soft {
            for grounded in grounder.ground_all(check, ctx) {
                problem.prefer(grounded, cfg.soft_check_weight.saturating_add(*weight));
            }
        }
    }

    // ---- solve and apply --------------------------------------------------
    // A previous model of this candidate seeds the search with a feasible
    // penalty bound when it still fits the new encoding (same variables,
    // hard constraints satisfied) — strict-improvement pruning only, so the
    // outcome matches a cold solve exactly.
    let outcome = match prev_model.and_then(|m| problem.seed_bound(m)) {
        Some(bound) => {
            stats.seeded += 1;
            zodiac_solver::solve_with_bound(&problem, Some(bound))
        }
        None => {
            stats.cold += 1;
            solve(&problem)
        }
    };
    let Some(solution) = outcome.solution() else {
        return (MutationResult::Unsat, None);
    };
    let model = solution.assignment.clone();
    let mut changed = 0usize;
    for ((rid, _attr), (var, sym)) in &vars {
        let value = &solution.assignment[*var];
        if value != &sym.original {
            changed += 1;
        }
        ground::apply_value(&mut program, rid, sym, value.clone());
    }
    changed += added; // Structural additions count as changes too.

    // ---- measure what the case actually violates --------------------------
    let final_graph = ResourceGraph::build(program.clone());
    let final_ctx = EvalContext {
        graph: &final_graph,
        kb: Some(kb),
    };
    let violated_soft: Vec<usize> = soft
        .iter()
        .enumerate()
        .filter(|(_, (c, _))| !zodiac_spec::holds(c, final_ctx))
        .map(|(i, _)| i)
        .collect();
    let violated_hard: Vec<usize> = hard
        .iter()
        .enumerate()
        .filter(|(_, c)| !zodiac_spec::holds(c, final_ctx))
        .map(|(i, _)| i)
        .collect();
    // Sanity: the target must actually be violated now.
    if zodiac_spec::holds(target, final_ctx) {
        return (MutationResult::Unsat, Some(model));
    }

    (
        MutationResult::Negative(Box::new(NegativeCase {
            program,
            changed_attrs: changed,
            added_resources: added,
            violated_soft,
            violated_hard,
        })),
        Some(model),
    )
}

// ---------------------------------------------------------------------------
// Structural planning
// ---------------------------------------------------------------------------

enum PlanOutcome {
    Ok { added_resources: usize },
    AttributesOnly,
    Impossible,
    NotApplicable,
}

/// Decides and applies topology edits needed to violate aggregation
/// statements; attribute-only statements need no structural change.
fn plan_structure(
    target: &Check,
    program: &mut Program,
    witness: &BTreeMap<Symbol, ResourceId>,
    kb: &KnowledgeBase,
    corpus: &[Program],
    fresh_deps: bool,
) -> PlanOutcome {
    let Expr::Cmp {
        op,
        lhs,
        rhs,
        negated,
    } = &target.stmt
    else {
        return PlanOutcome::NotApplicable;
    };
    let (agg, bound) = match (lhs, rhs) {
        (Val::InDegree { var, tau }, Val::Lit(Value::Int(k)))
        | (Val::OutDegree { var, tau }, Val::Lit(Value::Int(k))) => {
            ((var, tau, matches!(lhs, Val::InDegree { .. })), *k)
        }
        (Val::Length(inner), Val::Lit(Value::Int(k))) => {
            return plan_length(inner, *k, *op, *negated, program, witness);
        }
        _ => return PlanOutcome::AttributesOnly,
    };
    let (var, tau, inbound) = agg;
    let Some(anchor_id) = witness.get(var) else {
        return PlanOutcome::Impossible;
    };

    // How many τ-edges must exist to violate `deg op bound`?
    let graph = ResourceGraph::build(program.clone());
    let Some(anchor) = graph.node(anchor_id) else {
        return PlanOutcome::Impossible;
    };
    let current = if inbound {
        graph.distinct_in_neighbors(anchor, tau.type_name(), tau.negated())
    } else {
        graph.distinct_out_neighbors(anchor, tau.type_name(), tau.negated())
    } as i64;
    let needed = match (op, negated) {
        (CmpOp::Le, false) => bound + 1,
        (CmpOp::Lt, false) => bound,
        (CmpOp::Eq, false) => {
            if bound == 0 {
                1
            } else {
                bound + 1
            }
        }
        // `deg >= k` or negated forms: violating means *removing* edges,
        // which breaks required endpoints; out of repertoire.
        _ => return PlanOutcome::NotApplicable,
    };
    let to_add = needed - current;
    if to_add <= 0 {
        // Already violated structurally (should not happen for a witness).
        return PlanOutcome::Ok { added_resources: 0 };
    }
    if to_add > 12 {
        return PlanOutcome::Impossible; // Unreasonably large mutation.
    }

    // Pick the concrete peer type to instantiate.
    let peer_type = if tau.negated() {
        match pick_other_type(kb, &anchor_id.rtype, tau.type_name(), inbound) {
            Some(t) => t,
            None => return PlanOutcome::Impossible,
        }
    } else {
        tau.type_name().to_string()
    };

    for i in 0..to_add {
        let suffix = format!("zv{i}");
        let ok = if inbound {
            add_referencing_clone(
                program, anchor_id, &peer_type, &suffix, kb, corpus, fresh_deps,
            )
        } else {
            add_referenced_clone(program, anchor_id, &peer_type, &suffix, kb, corpus)
        };
        if !ok {
            return PlanOutcome::Impossible;
        }
    }
    PlanOutcome::Ok {
        added_resources: to_add as usize,
    }
}

/// Violating `length(r.attr) >= k` truncates the list below `k`.
fn plan_length(
    inner: &Val,
    k: i64,
    op: CmpOp,
    negated: bool,
    program: &mut Program,
    witness: &BTreeMap<Symbol, ResourceId>,
) -> PlanOutcome {
    if op != CmpOp::Ge || negated {
        return PlanOutcome::NotApplicable;
    }
    let Val::Endpoint { var, attr } = inner else {
        return PlanOutcome::NotApplicable;
    };
    let Some(rid) = witness.get(var) else {
        return PlanOutcome::Impossible;
    };
    let Some(resource) = program.find_mut(rid) else {
        return PlanOutcome::Impossible;
    };
    let Some(Value::List(items)) = resource.attrs.get_mut(attr.as_str()) else {
        return PlanOutcome::Impossible;
    };
    let keep = (k - 1).max(1) as usize;
    if items.len() <= keep {
        return PlanOutcome::Impossible;
    }
    items.truncate(keep);
    PlanOutcome::Ok { added_resources: 0 }
}

/// The resource types [`plan_structure`] can *add* to a positive case when
/// violating the target's statement — the peer type of a degree bound, or
/// the concrete type picked for a negated selector. Wave planning seeds the
/// target's type-reachability closure with these, so relevance judgments
/// cover every resource a mutant can contain (kept next to the planner: a
/// new structural edit must extend both).
pub(crate) fn structural_peer_types(target: &Check, kb: &KnowledgeBase) -> Vec<String> {
    let Expr::Cmp { lhs, rhs, .. } = &target.stmt else {
        return Vec::new();
    };
    let (var, tau, inbound) = match (lhs, rhs) {
        (Val::InDegree { var, tau }, Val::Lit(Value::Int(_))) => (var, tau, true),
        (Val::OutDegree { var, tau }, Val::Lit(Value::Int(_))) => (var, tau, false),
        _ => return Vec::new(),
    };
    if !tau.negated() {
        return vec![tau.type_name().to_string()];
    }
    let Some(anchor) = target.bindings.iter().find(|b| b.var == *var) else {
        return Vec::new();
    };
    pick_other_type(kb, anchor.rtype.as_str(), tau.type_name(), inbound)
        .into_iter()
        .collect()
}

/// A KB type (≠ `excluded`) that can reference `target_type` — used to
/// violate exclusivity checks (`indegree(r, !GW) == 0`).
fn pick_other_type(
    kb: &KnowledgeBase,
    target_type: &str,
    excluded: &str,
    inbound: bool,
) -> Option<String> {
    if !inbound {
        return None;
    }
    // Prefer a NIC when the target is a subnet (the common exclusivity
    // probe), otherwise the first schema type with a matching endpoint.
    let mut candidates: Vec<&str> = kb
        .types()
        .filter(|t| *t != excluded)
        .filter(|t| {
            kb.resource(t)
                .map(|r| r.endpoints.values().any(|e| e.target_type == target_type))
                .unwrap_or(false)
        })
        .collect();
    candidates.sort_by_key(|t| {
        if *t == "azurerm_network_interface" {
            0
        } else {
            1
        }
    });
    candidates.first().map(|t| t.to_string())
}

/// Adds a clone of `peer_type` that references `anchor` (raising its
/// indegree). Returns false if no donor or endpoint exists.
fn add_referencing_clone(
    program: &mut Program,
    anchor: &ResourceId,
    peer_type: &str,
    suffix: &str,
    kb: &KnowledgeBase,
    corpus: &[Program],
    fresh_deps: bool,
) -> bool {
    let Some(schema) = kb.resource(peer_type) else {
        return false;
    };
    let Some(endpoint) = schema
        .endpoints
        .values()
        .find(|e| e.target_type == anchor.rtype)
    else {
        return false;
    };
    let Some(mut clone) = find_donor(program, corpus, peer_type, suffix) else {
        return false;
    };
    let ep_path: AttrPath = match endpoint.in_endpoint.parse() {
        Ok(p) => p,
        Err(_) => return false,
    };
    let reference = Value::Ref(zodiac_model::Reference::new(
        anchor.rtype.clone(),
        anchor.name.clone(),
        endpoint.target_attr.clone(),
    ));
    let value = if endpoint.many {
        Value::List(vec![reference])
    } else {
        reference
    };
    if !clone.set(&ep_path, value) {
        return false;
    }
    if fresh_deps {
        fresh_import(program, &mut clone, corpus, suffix, &ep_path);
    }
    retarget_or_import(program, &mut clone, corpus, suffix);
    program.add(clone).is_ok()
}

/// Replaces the clone's non-anchor references with *fresh* clones of their
/// targets, so the virtual resource does not share dependencies with the
/// witness (the variant that separates otherwise co-violated checks).
fn fresh_import(
    program: &mut Program,
    clone: &mut Resource,
    corpus: &[Program],
    suffix: &str,
    anchor_path: &AttrPath,
) {
    for (path, reference) in clone.references() {
        if &path == anchor_path {
            continue;
        }
        let Some(mut dep) = find_donor(program, corpus, &reference.rtype, suffix) else {
            continue;
        };
        // The fresh dependency's own references reuse existing resources.
        let dep_refs = dep.references();
        for (dpath, dref) in dep_refs {
            if let Some(existing) = program.of_type(&dref.rtype).next() {
                let new_ref = Value::Ref(zodiac_model::Reference::new(
                    existing.rtype.clone(),
                    existing.name.clone(),
                    dref.attr.clone(),
                ));
                dep.set(&dpath, new_ref);
            }
        }
        let dep_id = dep.id();
        if program.add(dep).is_ok() {
            let new_ref = Value::Ref(zodiac_model::Reference::new(
                dep_id.rtype,
                dep_id.name,
                reference.attr.clone(),
            ));
            clone.set(&path, new_ref);
        }
    }
}

/// Adds a clone of `peer_type` referenced *by* `anchor` (raising the
/// anchor's outdegree) via the anchor's many-endpoint.
fn add_referenced_clone(
    program: &mut Program,
    anchor: &ResourceId,
    peer_type: &str,
    suffix: &str,
    kb: &KnowledgeBase,
    corpus: &[Program],
) -> bool {
    let Some(schema) = kb.resource(&anchor.rtype) else {
        return false;
    };
    let Some(endpoint) = schema
        .endpoints
        .values()
        .find(|e| e.target_type == peer_type && e.many)
    else {
        return false;
    };
    let Some(mut clone) = find_donor(program, corpus, peer_type, suffix) else {
        return false;
    };
    retarget_or_import(program, &mut clone, corpus, suffix);
    let clone_id = clone.id();
    if program.add(clone).is_err() {
        return false;
    }
    let target_attr = endpoint.target_attr.clone();
    let ep_path: AttrPath = match endpoint.in_endpoint.parse() {
        Ok(p) => p,
        Err(_) => return false,
    };
    let Some(anchor_res) = program.find_mut(anchor) else {
        return false;
    };
    let reference = Value::Ref(zodiac_model::Reference::new(
        clone_id.rtype,
        clone_id.name,
        target_attr,
    ));
    match anchor_res.get(&ep_path).cloned() {
        Some(Value::List(mut items)) => {
            items.push(reference);
            anchor_res.set(&ep_path, Value::List(items))
        }
        _ => anchor_res.set(&ep_path, Value::List(vec![reference])),
    }
}

/// Finds a donor resource of `rtype` (program first, then corpus), cloned
/// with a fresh identity.
fn find_donor(
    program: &Program,
    corpus: &[Program],
    rtype: &str,
    suffix: &str,
) -> Option<Resource> {
    let donor = program
        .of_type(rtype)
        .next()
        .cloned()
        .or_else(|| corpus.iter().flat_map(|p| p.of_type(rtype)).next().cloned())?;
    let mut clone = donor;
    clone.name = format!("{}-{suffix}", clone.name);
    if let Some(Value::Str(n)) = clone.attrs.get("name").cloned() {
        clone
            .attrs
            .insert("name".into(), Value::s(format!("{n}-{suffix}")));
    }
    Some(clone)
}

/// Rewires the clone's remaining references to resources present in the
/// program, importing missing dependencies from the corpus when needed.
fn retarget_or_import(
    program: &mut Program,
    clone: &mut Resource,
    corpus: &[Program],
    suffix: &str,
) {
    for (path, reference) in clone.references() {
        let exists = program
            .find(&ResourceId::new(&reference.rtype, &reference.name))
            .is_some();
        if exists {
            continue;
        }
        // Retarget to any same-type resource already present.
        if let Some(existing) = program.of_type(&reference.rtype).next() {
            let new_ref = Value::Ref(zodiac_model::Reference::new(
                existing.rtype.clone(),
                existing.name.clone(),
                reference.attr.clone(),
            ));
            clone.set(&path, new_ref);
            continue;
        }
        // Import the dependency from the corpus (bounded: one level).
        if let Some(mut dep) = find_donor(program, corpus, &reference.rtype, suffix) {
            // Point the dep's own dangling references at program resources
            // where possible; deeper chains are dropped by the cloud as
            // dangling and surfaced during deployment.
            let dep_refs = dep.references();
            for (dpath, dref) in dep_refs {
                if program
                    .find(&ResourceId::new(&dref.rtype, &dref.name))
                    .is_none()
                {
                    if let Some(existing) = program.of_type(&dref.rtype).next() {
                        let new_ref = Value::Ref(zodiac_model::Reference::new(
                            existing.rtype.clone(),
                            existing.name.clone(),
                            dref.attr.clone(),
                        ));
                        dep.set(&dpath, new_ref);
                    }
                }
            }
            let dep_id = dep.id();
            if program.add(dep).is_ok() {
                let new_ref = Value::Ref(zodiac_model::Reference::new(
                    dep_id.rtype,
                    dep_id.name,
                    reference.attr.clone(),
                ));
                clone.set(&path, new_ref);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Symbolic attributes (domain construction shared with `crate::ground`)
// ---------------------------------------------------------------------------

/// Values each `(resource, attr)` pair should additionally be able to take,
/// derived from the *other* side of the target statement's comparison.
fn cross_values(
    target: &Check,
    program: &Program,
    witness: &BTreeMap<Symbol, ResourceId>,
) -> BTreeMap<(ResourceId, Symbol), Vec<Value>> {
    let mut out: BTreeMap<(ResourceId, Symbol), Vec<Value>> = BTreeMap::new();
    let Expr::Cmp {
        lhs: Val::Endpoint { var: lv, attr: la },
        rhs: Val::Endpoint { var: rv, attr: ra },
        ..
    } = &target.stmt
    else {
        return out;
    };
    let resolve = |var: &Symbol, attr: &Symbol| -> Vec<Value> {
        let Some(rid) = witness.get(var) else {
            return Vec::new();
        };
        let Some(resource) = program.find(rid) else {
            return Vec::new();
        };
        let segs: Vec<String> = attr.split('.').map(str::to_string).collect();
        zodiac_spec::eval::resolve_multi(resource, &segs)
    };
    let l_vals = resolve(lv, la);
    let r_vals = resolve(rv, ra);
    if let Some(rid) = witness.get(lv) {
        out.entry((rid.clone(), *la))
            .or_default()
            .extend(r_vals.clone());
    }
    if let Some(rid) = witness.get(rv) {
        out.entry((rid.clone(), *ra)).or_default().extend(l_vals);
    }
    out
}

fn stmt_mentions(check: &Check, attr: &str) -> bool {
    fn val_mentions(v: &Val, attr: &str) -> bool {
        match v {
            Val::Endpoint { attr: a, .. } => a == attr,
            Val::Length(inner) => val_mentions(inner, attr),
            _ => false,
        }
    }
    match &check.stmt {
        Expr::Cmp { lhs, rhs, .. } => val_mentions(lhs, attr) || val_mentions(rhs, attr),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mdc;
    use zodiac_spec::parse_check;

    fn kb() -> KnowledgeBase {
        zodiac_kb::azure_kb()
    }

    /// A conforming VM+NIC program (both eastus).
    fn vm_nic_program() -> Program {
        Program::new()
            .with(
                Resource::new("azurerm_network_interface", "nic")
                    .with("name", "nic1")
                    .with("location", "eastus"),
            )
            .with(
                Resource::new("azurerm_linux_virtual_machine", "vm")
                    .with("name", "vm1")
                    .with("location", "eastus")
                    .with("size", "Standard_B1s")
                    .with(
                        "network_interface_ids",
                        Value::List(vec![Value::r("azurerm_network_interface", "nic", "id")]),
                    ),
            )
    }

    fn positive_for(check: &Check, program: &Program) -> PositiveCase {
        mdc::find_positive(check, std::slice::from_ref(program), &kb(), 10).expect("witness exists")
    }

    #[test]
    fn attribute_mutation_flips_location() {
        let check = parse_check(
            "let r1:VM, r2:NIC in conn(r1.network_interface_ids -> r2.id) => r1.location == r2.location",
        )
        .unwrap();
        let program = vm_nic_program();
        let positive = positive_for(&check, &program);
        let result = negative_test(
            &check,
            &positive,
            &[],
            &[],
            &kb(),
            &[],
            &MutationConfig::default(),
        );
        let MutationResult::Negative(neg) = result else {
            panic!("expected a negative case");
        };
        // Exactly one attribute changed — minimal mutation.
        assert_eq!(neg.changed_attrs, 1, "{:?}", neg.program);
        assert_eq!(neg.added_resources, 0);
        // The case indeed violates the check.
        let graph = ResourceGraph::build(neg.program.clone());
        let ctx = EvalContext {
            graph: &graph,
            kb: Some(&kb()),
        };
        assert!(!zodiac_spec::holds(&check, ctx));
    }

    #[test]
    fn hard_checks_block_the_only_mutation() {
        let target =
            parse_check("let r:IP in r.sku == 'Standard' => r.allocation_method == 'Static'")
                .unwrap();
        // An equivalent hard check closes the only violating assignment.
        let hard = vec![parse_check(
            "let r:IP in r.sku == 'Standard' => r.allocation_method != 'Dynamic'",
        )
        .unwrap()];
        let program = Program::new().with(
            Resource::new("azurerm_public_ip", "ip")
                .with("name", "ip1")
                .with("sku", "Standard")
                .with("allocation_method", "Static"),
        );
        let positive = positive_for(&target, &program);
        let result = negative_test(
            &target,
            &positive,
            &hard,
            &[],
            &kb(),
            &[],
            &MutationConfig::default(),
        );
        assert!(
            matches!(result, MutationResult::Unsat),
            "the hard equivalent must make mutation UNSAT"
        );
    }

    #[test]
    fn degree_mutation_instantiates_virtual_resources() {
        let check = parse_check(
            "let r1:VM, r2:NIC in conn(r1.network_interface_ids -> r2.id) => indegree(r2, VM) == 1",
        )
        .unwrap();
        let program = vm_nic_program();
        let positive = positive_for(&check, &program);
        let result = negative_test(
            &check,
            &positive,
            &[],
            &[],
            &kb(),
            std::slice::from_ref(&program),
            &MutationConfig::default(),
        );
        let MutationResult::Negative(neg) = result else {
            panic!("expected a negative case");
        };
        assert!(neg.added_resources >= 1, "a second VM must be cloned");
        assert!(
            neg.program.of_type("azurerm_linux_virtual_machine").count() >= 2,
            "{:?}",
            neg.program.types()
        );
    }

    #[test]
    fn nullability_mutation_removes_optional_attr() {
        let check =
            parse_check("let r:VM in r.priority == 'Spot' => r.eviction_policy != null").unwrap();
        let program = Program::new().with(
            Resource::new("azurerm_linux_virtual_machine", "vm")
                .with("name", "vm1")
                .with("priority", "Spot")
                .with("eviction_policy", "Deallocate"),
        );
        let positive = positive_for(&check, &program);
        let result = negative_test(
            &check,
            &positive,
            &[],
            &[],
            &kb(),
            &[],
            &MutationConfig::default(),
        );
        let MutationResult::Negative(neg) = result else {
            panic!("expected a negative case");
        };
        let vm = neg
            .program
            .find(&ResourceId::new("azurerm_linux_virtual_machine", "vm"))
            .unwrap();
        assert!(vm.get_attr("eviction_policy").is_none(), "policy removed");
        // The condition still holds (cond preservation).
        assert_eq!(vm.get_attr("priority"), Some(&Value::s("Spot")));
    }

    #[test]
    fn cross_values_enable_name_equality_violations() {
        let check = parse_check(
            "let r1:ATTACH, r2:VM, r3:DISK in coconn(r1.virtual_machine_id -> r2.id, r1.managed_disk_id -> r3.id) => r2.os_disk.name != r3.name",
        )
        .unwrap();
        let mut vm = Resource::new("azurerm_linux_virtual_machine", "vm")
            .with("name", "vm1")
            .with("location", "eastus");
        let path: AttrPath = "os_disk.name".parse().unwrap();
        vm.set(&path, Value::s("vm1-osdisk"));
        let program = Program::new()
            .with(vm)
            .with(
                Resource::new("azurerm_managed_disk", "disk")
                    .with("name", "datadisk1")
                    .with("location", "eastus"),
            )
            .with(
                Resource::new("azurerm_virtual_machine_data_disk_attachment", "attach")
                    .with(
                        "virtual_machine_id",
                        Value::r("azurerm_linux_virtual_machine", "vm", "id"),
                    )
                    .with(
                        "managed_disk_id",
                        Value::r("azurerm_managed_disk", "disk", "id"),
                    )
                    .with("lun", 0i64)
                    .with("caching", Value::s("ReadWrite")),
            );
        let positive = positive_for(&check, &program);
        let result = negative_test(
            &check,
            &positive,
            &[],
            &[],
            &kb(),
            &[],
            &MutationConfig::default(),
        );
        let MutationResult::Negative(neg) = result else {
            panic!("expected a negative case (cross values must unlock it)");
        };
        let graph = ResourceGraph::build(neg.program.clone());
        let ctx = EvalContext {
            graph: &graph,
            kb: Some(&kb()),
        };
        assert!(!zodiac_spec::holds(&check, ctx), "names now clash");
    }

    #[test]
    fn length_mutation_truncates_blocks() {
        let check =
            parse_check("let r:GW in r.active_active == true => length(r.ip_configuration) >= 2")
                .unwrap();
        let mut gw = Resource::new("azurerm_virtual_network_gateway", "gw")
            .with("name", "gw1")
            .with("active_active", true);
        gw.attrs.insert(
            "ip_configuration".into(),
            Value::List(vec![
                Value::Map(Default::default()),
                Value::Map(Default::default()),
            ]),
        );
        let program = Program::new().with(gw);
        let positive = positive_for(&check, &program);
        let result = negative_test(
            &check,
            &positive,
            &[],
            &[],
            &kb(),
            &[],
            &MutationConfig::default(),
        );
        let MutationResult::Negative(neg) = result else {
            panic!("expected a negative case");
        };
        let gw = neg
            .program
            .find(&ResourceId::new("azurerm_virtual_network_gateway", "gw"))
            .unwrap();
        assert_eq!(
            gw.get_attr("ip_configuration")
                .and_then(Value::as_list)
                .map(<[Value]>::len),
            Some(1)
        );
    }
}
