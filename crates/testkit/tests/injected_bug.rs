//! Mutation-testing sanity check: re-introduce the PR-2 literal-escaping
//! bug (single quotes and backslashes printed raw inside check literals)
//! through the `test-hooks` feature's runtime switch, and prove the
//! differential oracle flags it — then prove the same derivation is clean
//! once the hook is off.
//!
//! This lives in its own integration-test binary because the hook is a
//! process-global flag: sharing a binary with other tests would let the
//! buggy printer leak into unrelated assertions.

use zodiac_testkit::{run_fuzz, FuzzConfig, PROPERTIES};

#[test]
fn oracle_flags_reintroduced_escaping_bug() {
    // One episode, with extra generated checks so the quote/backslash pool
    // strings are sampled plenty of times.
    let cfg = FuzzConfig {
        cases: 32,
        checks_per_episode: 128,
        ..Default::default()
    };

    let was_on = zodiac_spec::test_hooks::set_disable_literal_escaping(true);
    assert!(!was_on, "hook must start disabled");
    let buggy = run_fuzz(&cfg);
    zodiac_spec::test_hooks::set_disable_literal_escaping(false);

    let idx = PROPERTIES
        .iter()
        .position(|p| *p == "print-parse-roundtrip")
        .expect("property is registered");
    assert!(
        buggy.properties[idx].failures > 0,
        "the oracle must flag the escaping bug\n{}",
        buggy.render()
    );
    // Every reported failure carries a shrunk check whose printed form
    // still exhibits the bug (a quote or backslash in a literal).
    for f in buggy
        .failures
        .iter()
        .filter(|f| f.property == "print-parse-roundtrip")
    {
        assert!(
            f.detail.contains('\'') || f.detail.contains('\\'),
            "shrunk counterexample should isolate the unescaped character: {}",
            f.detail
        );
    }

    let clean = run_fuzz(&cfg);
    assert!(
        clean.passed(),
        "identical derivation must pass with escaping restored:\n{}",
        clean.render()
    );
}
