//! Smoke tests for the differential fuzzer: the default derivation passes,
//! renders byte-identically across runs, and every committed regression
//! seed replays clean.

use zodiac_testkit::{run_fuzz, FuzzConfig};

#[test]
fn default_seed_passes_and_renders_deterministically() {
    let cfg = FuzzConfig {
        cases: 64,
        ..Default::default()
    };
    let first = run_fuzz(&cfg);
    let second = run_fuzz(&cfg);
    assert_eq!(
        first.render(),
        second.render(),
        "two runs of the same config must render byte-identically"
    );
    assert!(first.passed(), "{}", first.render());
}

#[test]
fn regression_seeds_replay_clean() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/proptest-regressions/fuzz.txt");
    let seeds = zodiac_testkit::regression::load_seeds(path).expect("seed file must parse");
    assert!(!seeds.is_empty(), "{path} must pin at least one seed");
    for seed in seeds {
        let cfg = FuzzConfig {
            seed,
            cases: 32,
            ..Default::default()
        };
        let report = run_fuzz(&cfg);
        assert!(
            report.passed(),
            "seed {seed:#x} regressed:\n{}",
            report.render()
        );
    }
}

#[test]
fn time_budget_truncates_but_still_reports() {
    let cfg = FuzzConfig {
        cases: 256,
        max_seconds: Some(0),
        ..Default::default()
    };
    let report = run_fuzz(&cfg);
    assert!(
        report.truncated,
        "a zero budget must truncate after episode 0"
    );
    assert_eq!(report.episodes.len(), 1, "episode 0 always runs");
    assert!(report.render().contains("time budget exceeded"));
}
