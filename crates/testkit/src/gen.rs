//! Seeded `Arbitrary`-style generators for programs, corpora, and checks.
//!
//! Programs reuse the corpus motif machinery (`zodiac-corpus`) for a
//! realistic baseline, then apply *wild edits*: targeted ground-truth
//! violations from the noise-injector repertoire plus untargeted structural
//! mutations (attribute overwrites, deletions, resource removal). The mix
//! yields both deployable and failing programs, which is exactly what the
//! differential oracle needs — soundness is only testable on programs the
//! cloud accepts, efficacy only on programs it rejects.
//!
//! Every generator draws from a caller-owned [`StdRng`], so a single `u64`
//! seed replays the entire derivation.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use zodiac_corpus::CorpusConfig;
use zodiac_graph::ResourceGraph;
use zodiac_model::{Program, Value};
use zodiac_spec::build as b;
use zodiac_spec::{Check, CmpOp, Expr, Val};

/// Short type aliases the check generator binds over. All are KB-attended,
/// so generated checks survive the same normalisation mined checks do.
const CHECK_TYPES: &[&str] = &["VM", "NIC", "SUBNET", "VPC", "SA", "GW", "IP", "DISK", "FW"];

/// Attribute paths used in generated checks (a mix of scalar, nested, and
/// list-valued paths seen in the ground truth).
const CHECK_ATTRS: &[&str] = &[
    "location",
    "name",
    "sku",
    "size",
    "priority",
    "eviction_policy",
    "account_tier",
    "account_replication_type",
    "address_space",
    "address_prefixes",
    "allocation_method",
    "tags.note",
    "ip_configuration.subnet_id",
];

/// String-literal pool: realistic enum values plus strings that stress the
/// printer's escaping (quotes and backslashes).
const STR_POOL: &[&str] = &[
    "eastus",
    "westeurope",
    "Standard",
    "Basic",
    "Premium",
    "Spot",
    "GatewaySubnet",
    "it's quoted",
    "back\\slash",
    "mixed '\\' both",
    "",
];

/// A random string literal: usually from the pool, sometimes raw printable
/// ASCII (quotes and backslashes included) to probe the escaping printer.
pub fn arb_literal_string(rng: &mut StdRng) -> String {
    if rng.gen_bool(0.6) {
        return STR_POOL
            .choose(rng)
            .copied()
            .unwrap_or("eastus")
            .to_string();
    }
    let len = rng.gen_range(0..=12usize);
    (0..len)
        .map(|_| rng.gen_range(0x20..=0x7eu8) as char)
        .collect()
}

fn arb_scalar(rng: &mut StdRng) -> Value {
    match rng.gen_range(0..5u8) {
        0 => Value::Null,
        1 => Value::Bool(rng.gen_bool(0.5)),
        2 => Value::Int(rng.gen_range(0..4096)),
        _ => Value::s(arb_literal_string(rng)),
    }
}

/// Applies one untargeted structural mutation to `program`. Unlike the
/// corpus noise injectors (which violate exactly one known rule), wild
/// edits may break nothing, one rule, or several at once.
pub fn wild_edit(rng: &mut StdRng, program: &mut Program) {
    if program.is_empty() {
        return;
    }
    match rng.gen_range(0..6u8) {
        // Targeted: one of the known ground-truth violations.
        0 | 1 => {
            if let Some(kind) = zodiac_corpus::NOISE_KINDS.choose(rng) {
                zodiac_corpus::inject_kind(rng, program, kind);
            }
        }
        // Remove a resource outright (dangling references, missing deps).
        2 => {
            let idx = rng.gen_range(0..program.len());
            let id = program.resources()[idx].id();
            program.remove(&id);
        }
        // Overwrite one top-level attribute with a random scalar.
        3 | 4 => {
            let idx = rng.gen_range(0..program.len());
            let r = &mut program.resources_mut()[idx];
            let keys: Vec<String> = r.attrs.keys().cloned().collect();
            if let Some(key) = keys.choose(rng) {
                let v = arb_scalar(rng);
                r.attrs.insert(key.clone(), v);
            }
        }
        // Drop one attribute (missing-required, broken references).
        _ => {
            let idx = rng.gen_range(0..program.len());
            let r = &mut program.resources_mut()[idx];
            let keys: Vec<String> = r.attrs.keys().cloned().collect();
            if let Some(key) = keys.choose(rng) {
                r.unset(key);
            }
        }
    }
}

/// One arbitrary program: a single motif-generated project plus up to three
/// wild edits.
pub fn arb_program(rng: &mut StdRng) -> Program {
    let cfg = CorpusConfig {
        seed: rng.gen(),
        projects: 1,
        noise_rate: 0.0,
        rare_option_rate: if rng.gen_bool(0.05) { 1.0 } else { 0.0 },
        min_motifs: 1,
        max_motifs: 3,
    };
    let mut program = zodiac_corpus::generate(&cfg)
        .pop()
        .map(|p| p.program)
        .unwrap_or_default();
    for _ in 0..rng.gen_range(0..=3u8) {
        wild_edit(rng, &mut program);
    }
    program
}

/// An arbitrary compiled resource graph (the generator the shrinking and
/// evaluation layers consume directly).
pub fn arb_graph(rng: &mut StdRng) -> ResourceGraph {
    ResourceGraph::build(arb_program(rng))
}

/// An arbitrary clean corpus: `projects` motif-generated programs with no
/// injected noise (mining food, not deployment probes).
pub fn arb_corpus(rng: &mut StdRng, projects: usize) -> Vec<Program> {
    let cfg = CorpusConfig {
        seed: rng.gen(),
        projects,
        noise_rate: 0.0,
        rare_option_rate: 0.0,
        min_motifs: 1,
        max_motifs: 3,
    };
    zodiac_corpus::generate(&cfg)
        .into_iter()
        .map(|p| p.program)
        .collect()
}

fn arb_val(rng: &mut StdRng, var: &str) -> Val {
    match rng.gen_range(0..4u8) {
        0 => b::lit(arb_literal_string(rng)),
        1 => match rng.gen_range(0..3u8) {
            0 => b::null(),
            1 => b::lit(Value::Bool(rng.gen_bool(0.5))),
            _ => b::lit(Value::Int(rng.gen_range(0..64))),
        },
        _ => b::endpoint(var, *CHECK_ATTRS.choose(rng).unwrap_or(&"location")),
    }
}

fn arb_cmp_op(rng: &mut StdRng) -> CmpOp {
    *[
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Le,
        CmpOp::Ge,
        CmpOp::Lt,
        CmpOp::Gt,
    ]
    .choose(rng)
    .unwrap_or(&CmpOp::Eq)
}

fn arb_cmp(rng: &mut StdRng, var: &str) -> Expr {
    let lhs = b::endpoint(var, *CHECK_ATTRS.choose(rng).unwrap_or(&"location"));
    b::cmp(arb_cmp_op(rng), lhs, arb_val(rng, var))
}

/// An arbitrary well-formed check: intra-resource, connection-based, or
/// aggregation-based, mirroring the template families mining produces.
pub fn arb_check(rng: &mut StdRng) -> Check {
    let t1 = *CHECK_TYPES.choose(rng).unwrap_or(&"VM");
    match rng.gen_range(0..4u8) {
        // Intra-resource implication over one binding.
        0 | 1 => b::check([b::binding("r", t1)], arb_cmp(rng, "r"), arb_cmp(rng, "r")),
        // Connection-based inter-resource check.
        2 => {
            let stmt = if rng.gen_bool(0.5) {
                b::eq(b::endpoint("r1", "location"), b::endpoint("r2", "location"))
            } else {
                arb_cmp(rng, "r2")
            };
            b::check(
                [b::binding("r1", "VM"), b::binding("r2", "NIC")],
                b::conn("r1", "network_interface_ids", "r2", "id"),
                stmt,
            )
        }
        // Aggregation: degree bound under a connection condition.
        _ => {
            let tau = if rng.gen_bool(0.5) {
                b::is_type(*CHECK_TYPES.choose(rng).unwrap_or(&"VM"))
            } else {
                b::not_type(*CHECK_TYPES.choose(rng).unwrap_or(&"GW"))
            };
            b::check(
                [b::binding("r1", "GW"), b::binding("r2", "SUBNET")],
                b::conn("r1", "ip_configuration.subnet_id", "r2", "id"),
                b::le(
                    b::indegree("r2", tau),
                    b::lit(Value::Int(rng.gen_range(0..8))),
                ),
            )
        }
    }
}

/// Derives a child RNG from `rng`, so sub-generators can be replayed from a
/// printable `u64` without consuming an unpredictable amount of the parent
/// stream.
pub fn child_rng(rng: &mut StdRng) -> (u64, StdRng) {
    let seed: u64 = rng.gen();
    (seed, StdRng::seed_from_u64(seed))
}
