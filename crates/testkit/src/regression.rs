//! The `proptest-regressions/` seed-file convention.
//!
//! Every property test keeps a committed seed file; each line is one master
//! seed that replays a full derivation. When a fuzz run fails, the printed
//! replay seed goes into the file so the failure re-runs on every `cargo
//! test` forever after — the same role proptest's regression files play,
//! minus the dependency.
//!
//! Format: one `u64` seed per line, decimal or `0x`-prefixed hex (matching
//! the `{:#x}` the report prints); `#` starts a comment; blank lines are
//! ignored.

/// Parses a regression seed file's contents.
pub fn parse_seeds(text: &str) -> Result<Vec<u64>, String> {
    let mut seeds = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parsed = match line.strip_prefix("0x").or_else(|| line.strip_prefix("0X")) {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => line.parse(),
        };
        seeds.push(parsed.map_err(|e| format!("line {}: bad seed `{line}`: {e}", lineno + 1))?);
    }
    Ok(seeds)
}

/// Loads and parses a regression seed file.
pub fn load_seeds(path: &str) -> Result<Vec<u64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_seeds(&text).map_err(|e| format!("{path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_hex_decimal_comments_and_blanks() {
        let text = "# header\n\n0xC0FFEE\n42\n  0x4c110001 # not a trailing comment\n";
        // Trailing comments are NOT supported: the whole line must parse.
        assert!(parse_seeds(text).is_err());
        let ok = parse_seeds("# header\n\n0xC0FFEE\n42\n").unwrap();
        assert_eq!(ok, vec![0xC0FFEE, 42]);
    }

    #[test]
    fn rejects_garbage_with_line_number() {
        let err = parse_seeds("0xC0FFEE\nnot-a-seed\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }
}
