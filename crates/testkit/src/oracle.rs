//! The differential oracle: one fuzzing episode end-to-end.
//!
//! An episode runs the real pipeline — corpus → mining → validation
//! scheduler → counterexample demotion — against the bare [`CloudSim`]
//! (no worker threads, so every deployment interleaving is deterministic),
//! then asserts the property hierarchy documented in the crate root.

use crate::gen;
use crate::shrink;
use crate::{EpisodeStats, FuzzConfig, FuzzFailure, FuzzReport};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use zodiac_cloud::{CloudSim, DeployOutcome, Phase, TRANSIENT_PREFIX};
use zodiac_graph::ResourceGraph;
use zodiac_mining::MiningConfig;
use zodiac_model::Program;
use zodiac_obs::Obs;
use zodiac_repair::{RepairConfig, RepairOutcome};
use zodiac_spec::{parse_check, violations, Check, EvalContext};
use zodiac_validation::counterexample::counterexample_pass;
use zodiac_validation::{Scheduler, SchedulerConfig, ValidatedCheck};

/// Violating programs examined per check in the episode's §5.6 pass.
const CE_BUDGET: usize = 4;

/// True when printing then re-parsing `check` loses information.
fn roundtrip_fails(check: &Check) -> bool {
    match parse_check(&check.to_string()) {
        Ok(back) => back != *check,
        Err(_) => true,
    }
}

/// Runs one episode and records its stats, tallies, and failures.
pub(crate) fn run_episode(
    ep: usize,
    episode_seed: u64,
    episode_cases: usize,
    cfg: &FuzzConfig,
    obs: &Obs,
    report: &mut FuzzReport,
) {
    let mut rng = StdRng::seed_from_u64(episode_seed);
    let kb = zodiac_kb::azure_kb();
    let sim = CloudSim::new_azure();

    // --- the real pipeline, minus the engine wrapper -----------------------
    let corpus = gen::arb_corpus(&mut rng, cfg.corpus_projects.max(1));
    let mining = zodiac_mining::mine(&corpus, &kb, &MiningConfig::default());
    let outcome =
        Scheduler::new(&sim, &kb, &corpus, SchedulerConfig::default()).run(mining.checks.clone());

    // Generate this episode's wild programs up front: they are both the
    // soundness probes and the open-world corpus of the counterexample
    // pass, so soundness is asserted over post-demotion checks.
    let cases: Vec<(u64, Program)> = (0..episode_cases)
        .map(|_| {
            let (case_seed, mut case_rng) = gen::child_rng(&mut rng);
            (case_seed, gen::arb_program(&mut case_rng))
        })
        .collect();
    let case_programs: Vec<Program> = cases.iter().map(|(_, p)| p.clone()).collect();
    let ce = counterexample_pass(&outcome.validated, &case_programs, &kb, &sim, CE_BUDGET);
    let demoted: BTreeSet<usize> = ce.demoted.iter().copied().collect();
    let final_checks: Vec<&ValidatedCheck> = outcome
        .validated
        .iter()
        .enumerate()
        .filter(|(i, _)| !demoted.contains(i))
        .map(|(_, v)| v)
        .collect();

    let mut stats = EpisodeStats {
        seed: episode_seed,
        corpus_projects: corpus.len(),
        candidates: mining.checks.len(),
        validated: outcome.validated.len(),
        demoted: demoted.len(),
        cases: cases.len(),
        deployable: 0,
    };

    // --- P1: soundness -----------------------------------------------------
    for (case_seed, program) in &cases {
        report.tally("soundness", 1);
        if !sim.deploys_ok(program) {
            continue;
        }
        stats.deployable += 1;
        let graph = ResourceGraph::build(program.clone());
        let ctx = EvalContext {
            graph: &graph,
            kb: Some(&kb),
        };
        for v in &final_checks {
            if violations(&v.mined.check, ctx).is_empty() {
                continue;
            }
            let check = v.mined.check.clone();
            let still_fails = |p: &Program| {
                !p.is_empty() && sim.deploys_ok(p) && {
                    let g = ResourceGraph::build(p.clone());
                    !violations(
                        &check,
                        EvalContext {
                            graph: &g,
                            kb: Some(&kb),
                        },
                    )
                    .is_empty()
                }
            };
            let shrunk = shrink::shrink_program(program, still_fails);
            report.fail(FuzzFailure {
                property: "soundness",
                episode: ep,
                replay_seed: *case_seed,
                detail: format!(
                    "surviving check `{check}` rejects a program the cloud deploys\n\
                     shrunk program ({} of {} resources):\n{}",
                    shrunk.len(),
                    program.len(),
                    zodiac_hcl::to_hcl(&shrunk)
                ),
            });
        }
    }
    obs.counter("fuzz.episode.deployable", stats.deployable as u64);

    // --- P2: mutation efficacy --------------------------------------------
    for v in &outcome.validated {
        report.tally("mutation-efficacy", 1);
        if let Some(detail) = efficacy_violation(&sim, v) {
            report.fail(FuzzFailure {
                property: "mutation-efficacy",
                episode: ep,
                replay_seed: episode_seed,
                detail,
            });
        }
    }

    // --- P3: permutation stability -----------------------------------------
    report.tally("permutation-stability", 1);
    let mut shuffled = mining.checks.clone();
    shuffled.shuffle(&mut rng);
    let permuted = Scheduler::new(&sim, &kb, &corpus, SchedulerConfig::default()).run(shuffled);
    let base_set: BTreeSet<String> = outcome
        .validated
        .iter()
        .map(|v| v.mined.check.canonical())
        .collect();
    let perm_set: BTreeSet<String> = permuted
        .validated
        .iter()
        .map(|v| v.mined.check.canonical())
        .collect();
    if base_set != perm_set {
        let only_base: Vec<&String> = base_set.difference(&perm_set).collect();
        let only_perm: Vec<&String> = perm_set.difference(&base_set).collect();
        report.fail(FuzzFailure {
            property: "permutation-stability",
            episode: ep,
            replay_seed: episode_seed,
            detail: format!(
                "validated set changed under candidate permutation\n\
                 only in original order ({}): {:?}\n\
                 only in shuffled order ({}): {:?}",
                only_base.len(),
                only_base,
                only_perm.len(),
                only_perm
            ),
        });
    }

    // --- P6: schedule equivalence ------------------------------------------
    // `outcome` above ran the default wave-parallel path (conflict-graph
    // waves, batched deploys, incremental solving). Re-running the same
    // candidates one at a time must land every candidate in the same
    // verdict set. Reasons are excluded: a batched probe may trip a
    // different ground-truth rule first (benign divergence).
    report.tally("schedule-equivalence", 1);
    let sequential = Scheduler::new(
        &sim,
        &kb,
        &corpus,
        SchedulerConfig {
            wave_parallel: false,
            ..SchedulerConfig::default()
        },
    )
    .run(mining.checks.clone());
    let verdict_sets = |o: &zodiac_validation::ValidationOutcome| -> [BTreeSet<String>; 3] {
        [
            o.validated
                .iter()
                .map(|v| v.mined.check.canonical())
                .collect(),
            o.false_positives
                .iter()
                .map(|f| f.mined.check.canonical())
                .collect(),
            o.unresolved.iter().map(|m| m.check.canonical()).collect(),
        ]
    };
    let wave_sets = verdict_sets(&outcome);
    let seq_sets = verdict_sets(&sequential);
    for (which, (w, s)) in ["validated", "falsified", "unresolved"]
        .iter()
        .zip(wave_sets.iter().zip(&seq_sets))
    {
        if w == s {
            continue;
        }
        let only_wave: Vec<&String> = w.difference(s).collect();
        let only_seq: Vec<&String> = s.difference(w).collect();
        report.fail(FuzzFailure {
            property: "schedule-equivalence",
            episode: ep,
            replay_seed: episode_seed,
            detail: format!(
                "{which} set diverges between wave-parallel and sequential scheduling\n\
                 only wave-parallel ({}): {:?}\n\
                 only sequential ({}): {:?}",
                only_wave.len(),
                only_wave,
                only_seq.len(),
                only_seq
            ),
        });
    }

    // --- P4: corpus monotonicity -------------------------------------------
    // Self-duplication doubles every support count while keeping confidence
    // and lift bit-identical, so the mined set must not shrink (it may grow:
    // candidates below min_support clear the bar at double support).
    report.tally("corpus-monotonicity", 1);
    let doubled: Vec<Program> = corpus.iter().chain(corpus.iter()).cloned().collect();
    let mining_doubled = zodiac_mining::mine(&doubled, &kb, &MiningConfig::default());
    let base_mined: BTreeSet<String> = mining.checks.iter().map(|c| c.check.canonical()).collect();
    let doubled_mined: BTreeSet<String> = mining_doubled
        .checks
        .iter()
        .map(|c| c.check.canonical())
        .collect();
    let lost: Vec<&String> = base_mined.difference(&doubled_mined).collect();
    if !lost.is_empty() {
        report.fail(FuzzFailure {
            property: "corpus-monotonicity",
            episode: ep,
            replay_seed: episode_seed,
            detail: format!(
                "{} candidate(s) vanished when the corpus was self-duplicated: {:?}",
                lost.len(),
                lost
            ),
        });
    }

    // --- P10: shard invariance ---------------------------------------------
    // Mining with a random shard count, over both the materialised corpus
    // and a stream of it, must reproduce the 1-shard candidate list
    // byte-for-byte — same checks, same order, same statistics to the last
    // float bit. This is the fuzzing face of the exact integer-counter
    // shard merge (`CorpusStats::merge_from`).
    report.tally("shard-invariance", 1);
    let shard_cfg = zodiac_mining::ShardConfig {
        shards: rng.gen_range(2..=9),
        batch: rng.gen_range(1..=16),
    };
    let fingerprint = |checks: &[zodiac_mining::MinedCheck]| -> Vec<String> {
        checks
            .iter()
            .map(|c| {
                format!(
                    "{}|{}|{}|{:016x}|{:?}",
                    c.check,
                    c.family,
                    c.support,
                    c.confidence.to_bits(),
                    c.lift.map(f64::to_bits),
                )
            })
            .collect()
    };
    let baseline_fp = fingerprint(&mining.checks);
    let sharded = zodiac_mining::mine_sharded(&corpus, &kb, &MiningConfig::default(), &shard_cfg);
    let (streamed, streamed_n) = zodiac_mining::mine_streaming(
        corpus.iter().cloned(),
        &kb,
        &MiningConfig::default(),
        &shard_cfg,
    );
    for (mode, got, ok) in [
        ("materialised", fingerprint(&sharded.checks), true),
        (
            "streaming",
            fingerprint(&streamed.checks),
            streamed_n == corpus.len(),
        ),
    ] {
        if got == baseline_fp && ok {
            continue;
        }
        let only_base: Vec<&String> = baseline_fp.iter().filter(|c| !got.contains(c)).collect();
        let only_shard: Vec<&String> = got.iter().filter(|c| !baseline_fp.contains(c)).collect();
        report.fail(FuzzFailure {
            property: "shard-invariance",
            episode: ep,
            replay_seed: episode_seed,
            detail: format!(
                "{mode} mine with {} shards (batch {}) diverges from the 1-shard candidate list\n\
                 only 1-shard ({}): {:?}\n\
                 only sharded ({}): {:?}",
                shard_cfg.shards,
                shard_cfg.batch,
                only_base.len(),
                only_base,
                only_shard.len(),
                only_shard
            ),
        });
    }

    // --- P5: print/parse round-trip ----------------------------------------
    let generated: Vec<Check> = (0..cfg.checks_per_episode)
        .map(|_| gen::arb_check(&mut rng))
        .collect();
    for check in mining.checks.iter().map(|c| &c.check).chain(&generated) {
        report.tally("print-parse-roundtrip", 1);
        if !roundtrip_fails(check) {
            continue;
        }
        let shrunk = shrink::shrink_check(check, roundtrip_fails);
        let printed = shrunk.to_string();
        let parse_result = match parse_check(&printed) {
            Ok(back) if back != shrunk => "re-parses to a different check".to_string(),
            Ok(_) => "unexpectedly round-trips after shrinking".to_string(),
            Err(e) => format!("fails to re-parse: {e}"),
        };
        report.fail(FuzzFailure {
            property: "print-parse-roundtrip",
            episode: ep,
            replay_seed: episode_seed,
            detail: format!("printed form of a check {parse_result}\nshrunk check: {printed}"),
        });
    }

    // --- P7–P9: repair properties ------------------------------------------
    // Every repair the engine *accepts* against the surviving checks must be
    // sound (violates nothing, still deploys), minimal (no strict subset of
    // its edits clears the oracle stack), and intent-preserving (no deleted
    // resources, no deceptive diffs). Unrepairable/exhausted outcomes are
    // legitimate — the properties constrain accepted repairs only.
    let repair_checks: Vec<Check> = final_checks.iter().map(|v| v.mined.check.clone()).collect();
    if !repair_checks.is_empty() {
        let violates_some = |program: &Program| {
            let graph = ResourceGraph::build(program.clone());
            let ctx = EvalContext {
                graph: &graph,
                kb: Some(&kb),
            };
            repair_checks.iter().any(|c| !violations(c, ctx).is_empty())
        };
        // Targets: wild cases violating a surviving check, topped up with
        // noise-injected corpus programs (both derived from the episode rng,
        // so the target list is deterministic).
        let mut targets: Vec<Program> = cases
            .iter()
            .map(|(_, p)| p)
            .filter(|p| violates_some(p))
            .take(cfg.repairs_per_episode)
            .cloned()
            .collect();
        for base in &corpus {
            if targets.len() >= cfg.repairs_per_episode {
                break;
            }
            let mut noisy = base.clone();
            if zodiac_corpus::inject(&mut rng, &mut noisy).is_some() && violates_some(&noisy) {
                targets.push(noisy);
            }
        }
        for original in &targets {
            let repair = zodiac_repair::repair_program(
                original,
                &repair_checks,
                &kb,
                &sim,
                &RepairConfig::default(),
                obs,
            );
            let RepairOutcome::Accepted {
                program: repaired,
                edits,
            } = &repair.outcome
            else {
                continue;
            };

            // P7: soundness of the accepted repair.
            report.tally("repair-soundness", 1);
            if violates_some(repaired) || !sim.deploys_ok(repaired) {
                report.fail(FuzzFailure {
                    property: "repair-soundness",
                    episode: ep,
                    replay_seed: episode_seed,
                    detail: format!(
                        "accepted repair ({} edit(s)) still violates a surviving check or \
                         fails to deploy\nedits:\n{}",
                        edits.len(),
                        render_edits(edits)
                    ),
                });
            }

            // A subset of edits "passes" when it clears all three oracle
            // layers against the same original program and violated set.
            let subset_passes = |subset: &[zodiac_repair::RepairEdit]| {
                let candidate = zodiac_repair::apply_edits(original, subset);
                sim.deploys_ok(&candidate)
                    && !violates_some(&candidate)
                    && zodiac_repair::deceptive_fixes(original, &candidate, &repair.violated, &kb)
                        .is_empty()
            };

            // P8: minimality — enumerate strict subsets (edit lists are
            // small; the engine's own budget caps them).
            if edits.len() <= MINIMALITY_EDIT_CAP {
                report.tally("repair-minimality", 1);
                let proper_pass = (0..(1u32 << edits.len()) - 1).find(|mask| {
                    let subset: Vec<zodiac_repair::RepairEdit> = edits
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| mask & (1 << i) != 0)
                        .map(|(_, e)| e.clone())
                        .collect();
                    subset_passes(&subset)
                });
                if proper_pass.is_some() {
                    let shrunk = shrink::shrink_edits(edits, |subset| subset_passes(subset));
                    report.fail(FuzzFailure {
                        property: "repair-minimality",
                        episode: ep,
                        replay_seed: episode_seed,
                        detail: format!(
                            "a strict subset of an accepted {}-edit repair clears all three \
                             oracle layers\nminimal passing subset ({} edit(s)):\n{}",
                            edits.len(),
                            shrunk.len(),
                            render_edits(&shrunk)
                        ),
                    });
                }
            }

            // P9: intent preservation.
            report.tally("repair-intent", 1);
            let deleted: Vec<String> = original
                .resources()
                .iter()
                .map(|r| r.id())
                .filter(|id| repaired.find(id).is_none())
                .map(|id| id.to_string())
                .collect();
            let deceptions =
                zodiac_repair::deceptive_fixes(original, repaired, &repair.violated, &kb);
            if !deleted.is_empty() || !deceptions.is_empty() {
                report.fail(FuzzFailure {
                    property: "repair-intent",
                    episode: ep,
                    replay_seed: episode_seed,
                    detail: format!(
                        "accepted repair is not intent-preserving\n\
                         deleted resources: {:?}\ndeceptions: {:?}\nedits:\n{}",
                        deleted,
                        deceptions.iter().map(|d| d.to_string()).collect::<Vec<_>>(),
                        render_edits(edits)
                    ),
                });
            }
        }
    }

    report.episodes.push(stats);
}

/// Edits beyond this count skip the exponential minimality enumeration.
const MINIMALITY_EDIT_CAP: usize = 4;

fn render_edits(edits: &[zodiac_repair::RepairEdit]) -> String {
    edits
        .iter()
        .map(|e| format!("  {e}"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Checks one validated check's negative report against the rule table;
/// returns failure detail if the efficacy property is violated.
fn efficacy_violation(sim: &CloudSim, v: &ValidatedCheck) -> Option<String> {
    let check = &v.mined.check;
    match &v.negative_report.outcome {
        DeployOutcome::Success => Some(format!(
            "negative test for `{check}` deployed successfully, yet the check was validated"
        )),
        DeployOutcome::Failure { phase, rule_id, .. } => {
            if rule_id.starts_with(TRANSIENT_PREFIX) {
                return Some(format!(
                    "negative test for `{check}` failed on transient {rule_id} with no fault \
                     injector configured"
                ));
            }
            let declared = if rule_id == "core/dependency-cycle" {
                Some(Phase::PluginCheck)
            } else {
                sim.rules()
                    .iter()
                    .find(|r| r.id == *rule_id)
                    .map(|r| r.phase)
            };
            match declared {
                None => Some(format!(
                    "negative test for `{check}` failed on unknown rule {rule_id}"
                )),
                Some(declared) if declared != *phase => Some(format!(
                    "negative test for `{check}` failed at {phase}, but rule {rule_id} \
                     declares {declared}"
                )),
                Some(_) => None,
            }
        }
    }
}
