//! # zodiac-testkit
//!
//! Property-based **differential fuzzing** of the mine→mutate→validate
//! pipeline. The paper's core claim (§5.6) is that deployment-based
//! validation filters out wrong hypotheses; this crate checks that claim
//! against the simulator's ground truth on inputs nobody hand-wrote.
//!
//! The fuzzer runs in *episodes*. Each episode mines and validates checks
//! from a fresh seeded corpus, then asserts a hierarchy of properties:
//!
//! 1. **Soundness** — no surviving check rejects a program
//!    [`CloudSim`](zodiac_cloud::CloudSim) deploys successfully. Generated wild programs double as the
//!    open-world corpus for the §5.6 counterexample pass first, so the
//!    property is asserted over post-demotion checks, exactly as the
//!    pipeline ships them.
//! 2. **Mutation efficacy** — every validated check's SMT-mutated negative
//!    program failed deployment, in the *phase its ground-truth rule
//!    declares* (a differential check between the scheduler's captured
//!    report and the rule table).
//! 3. **Permutation stability** — re-running the scheduler on a shuffled
//!    candidate list validates the same check set.
//! 4. **Corpus monotonicity** — self-duplicating the corpus (which doubles
//!    support while provably preserving confidence and lift) never shrinks
//!    the mined candidate set.
//! 5. **Print/parse round-trip** — every mined and generated check
//!    re-parses to an identical IR value (the property that catches the
//!    historical literal-escaping bug).
//! 6. **Schedule equivalence** — the wave-parallel scheduler (the default
//!    pipeline path: conflict-graph waves, batched deploys, incremental
//!    solving) reaches verdicts set-identical to one-candidate-at-a-time
//!    sequential scheduling: the same validated, falsified, and unresolved
//!    candidate sets. Falsification *reasons* may differ — a batched probe
//!    can trip a different ground-truth rule first — so reasons are
//!    deliberately excluded from the comparison.
//! 7. **Repair soundness** — every repair `zodiac-repair` *accepts* against
//!    the episode's surviving checks yields a program that violates none of
//!    them and still deploys on [`CloudSim`](zodiac_cloud::CloudSim).
//! 8. **Repair minimality** — no strict subset of an accepted repair's
//!    edits clears all three oracle layers (deploy-succeeds, checks-pass,
//!    intent-preserved).
//! 9. **Repair intent** — an accepted repair never deletes a resource
//!    present in the original program and never trips the deceptive-fix
//!    detector (scope narrowing, dropped references or attributes the
//!    violated checks do not mention).
//!
//! Failures shrink deterministically ([`shrink`]) and the whole report is
//! a pure function of `(seed, cases)` — byte-identical across runs — so a
//! printed replay seed reproduces any failure exactly.
//!
//! ```no_run
//! use zodiac_testkit::{run_fuzz, FuzzConfig};
//! let report = run_fuzz(&FuzzConfig { cases: 64, ..Default::default() });
//! assert!(report.passed(), "{}", report.render());
//! ```

pub mod gen;
mod oracle;
pub mod regression;
pub mod shrink;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;
use zodiac_obs::Obs;

/// Fuzzing configuration. The report is a pure function of this value.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed; every episode and case derives from it.
    pub seed: u64,
    /// Total generated-program soundness cases.
    pub cases: usize,
    /// Cases per episode (each episode runs one mini pipeline).
    pub cases_per_episode: usize,
    /// Corpus projects mined per episode.
    pub corpus_projects: usize,
    /// Generated checks fed to the round-trip property per episode, on top
    /// of every mined candidate.
    pub checks_per_episode: usize,
    /// Violating programs repaired per episode for the repair properties
    /// (7–9). Targets are wild cases that violate a surviving check, topped
    /// up with noise-injected corpus programs.
    pub repairs_per_episode: usize,
    /// Optional wall-clock budget: no new episode starts after this many
    /// seconds. Truncation is recorded in the report, which makes the
    /// output timing-dependent — leave `None` (the default) when
    /// byte-identical reports matter.
    pub max_seconds: Option<u64>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0xC0FFEE,
            cases: 256,
            cases_per_episode: 64,
            corpus_projects: 32,
            checks_per_episode: 32,
            repairs_per_episode: 3,
            max_seconds: None,
        }
    }
}

/// The property names, in reporting order.
pub const PROPERTIES: &[&str] = &[
    "soundness",
    "mutation-efficacy",
    "permutation-stability",
    "corpus-monotonicity",
    "print-parse-roundtrip",
    "schedule-equivalence",
    "repair-soundness",
    "repair-minimality",
    "repair-intent",
    "shard-invariance",
];

/// One verified-property failure, with everything needed to replay it.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// Which property fell (one of [`PROPERTIES`]).
    pub property: &'static str,
    /// Episode index.
    pub episode: usize,
    /// Seed that replays the failing derivation (episode seed, or the
    /// per-case seed for program-level failures).
    pub replay_seed: u64,
    /// Human-readable detail, including the shrunk artifact.
    pub detail: String,
}

/// Per-episode pipeline statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct EpisodeStats {
    /// Episode seed (derived from the master seed).
    pub seed: u64,
    /// Corpus programs mined.
    pub corpus_projects: usize,
    /// Mined candidates entering validation.
    pub candidates: usize,
    /// Checks validated by the scheduler.
    pub validated: usize,
    /// Checks demoted by the counterexample pass.
    pub demoted: usize,
    /// Soundness cases generated.
    pub cases: usize,
    /// Of those, programs the simulator deployed successfully.
    pub deployable: usize,
}

/// Per-property tallies.
#[derive(Debug, Clone, Copy, Default)]
pub struct PropertyStats {
    /// Individual assertions checked.
    pub checked: usize,
    /// Assertions that failed.
    pub failures: usize,
}

/// The full fuzzing report. [`FuzzReport::render`] is deterministic for a
/// given [`FuzzConfig`] (with no time budget): no timestamps, no map
/// iteration of unordered state, no thread interleaving.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Master seed.
    pub seed: u64,
    /// Requested soundness cases.
    pub cases_requested: usize,
    /// Episodes planned from the configuration.
    pub episodes_planned: usize,
    /// Per-episode statistics (one entry per *completed* episode).
    pub episodes: Vec<EpisodeStats>,
    /// Per-property tallies, index-aligned with [`PROPERTIES`].
    pub properties: Vec<PropertyStats>,
    /// All failures, in discovery order.
    pub failures: Vec<FuzzFailure>,
    /// True when the time budget stopped the run early.
    pub truncated: bool,
}

impl FuzzReport {
    /// True when every property held on every case.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    fn tally(&mut self, property: &'static str, n: usize) {
        if let Some(i) = PROPERTIES.iter().position(|p| *p == property) {
            self.properties[i].checked += n;
        }
    }

    fn fail(&mut self, failure: FuzzFailure) {
        if let Some(i) = PROPERTIES.iter().position(|p| *p == failure.property) {
            self.properties[i].failures += 1;
        }
        self.failures.push(failure);
    }

    /// Renders the deterministic text report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "zodiac fuzz report");
        let _ = writeln!(out, "seed: {:#x}", self.seed);
        let _ = writeln!(out, "cases: {}", self.cases_requested);
        let _ = writeln!(
            out,
            "episodes: {}/{}{}",
            self.episodes.len(),
            self.episodes_planned,
            if self.truncated {
                " (time budget exceeded)"
            } else {
                ""
            }
        );
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{:<8} {:<20} {:>7} {:>11} {:>10} {:>8} {:>6} {:>11}",
            "episode",
            "seed",
            "corpus",
            "candidates",
            "validated",
            "demoted",
            "cases",
            "deployable"
        );
        for (i, e) in self.episodes.iter().enumerate() {
            let _ = writeln!(
                out,
                "{:<8} {:<20} {:>7} {:>11} {:>10} {:>8} {:>6} {:>11}",
                i,
                format!("{:#x}", e.seed),
                e.corpus_projects,
                e.candidates,
                e.validated,
                e.demoted,
                e.cases,
                e.deployable
            );
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "{:<24} {:>8} {:>9}", "property", "checked", "failures");
        for (name, stats) in PROPERTIES.iter().zip(&self.properties) {
            let _ = writeln!(
                out,
                "{:<24} {:>8} {:>9}",
                name, stats.checked, stats.failures
            );
        }
        if !self.failures.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "failures:");
            for f in &self.failures {
                let _ = writeln!(
                    out,
                    "[{}] episode {}, replay seed {:#x}",
                    f.property, f.episode, f.replay_seed
                );
                for line in f.detail.lines() {
                    let _ = writeln!(out, "  {line}");
                }
            }
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "result: {}",
            if self.passed() { "PASS" } else { "FAIL" }
        );
        out
    }
}

/// Runs the fuzzer without observability.
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzReport {
    run_fuzz_obs(cfg, &Obs::null())
}

/// [`run_fuzz`] with an observability handle: records a `fuzz` span with
/// one bounded `fuzz/episode` child per episode (the episode index is a
/// span attribute), plus `fuzz.cases`, `fuzz.deployable`, and
/// `fuzz.failures` counters.
pub fn run_fuzz_obs(cfg: &FuzzConfig, obs: &Obs) -> FuzzReport {
    let _span = obs.start_span("fuzz");
    let start = Instant::now();
    let cases = cfg.cases.max(1);
    let per_episode = cfg.cases_per_episode.max(1);
    let episodes = cases.div_ceil(per_episode);

    let mut report = FuzzReport {
        seed: cfg.seed,
        cases_requested: cases,
        episodes_planned: episodes,
        properties: vec![PropertyStats::default(); PROPERTIES.len()],
        ..Default::default()
    };

    let mut master = StdRng::seed_from_u64(cfg.seed);
    for ep in 0..episodes {
        let episode_seed: u64 = master.gen();
        if let Some(budget) = cfg.max_seconds {
            if ep > 0 && start.elapsed().as_secs() >= budget {
                report.truncated = true;
                break;
            }
        }
        let episode_cases = per_episode.min(cases - ep * per_episode);
        let mut span = obs.start_span("fuzz/episode");
        span.attr("episode", ep);
        oracle::run_episode(ep, episode_seed, episode_cases, cfg, obs, &mut report);
        span.finish();
    }

    obs.counter(
        "fuzz.cases",
        report.episodes.iter().map(|e| e.cases as u64).sum(),
    );
    obs.counter(
        "fuzz.deployable",
        report.episodes.iter().map(|e| e.deployable as u64).sum(),
    );
    obs.counter("fuzz.failures", report.failures.len() as u64);
    report
}
