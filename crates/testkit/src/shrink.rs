//! Deterministic greedy shrinking for failing fuzz cases.
//!
//! Shrinkers take the failing value plus a `still_fails` predicate and
//! return a (locally) minimal value for which the predicate still holds.
//! The search is greedy first-improvement over a fixed candidate order and
//! uses no randomness, so a shrunk counterexample is a pure function of the
//! original failure — two runs of the fuzzer print identical reports.

use std::collections::HashSet;
use zodiac_model::{Program, ResourceId, Value};
use zodiac_spec::{Check, Expr, Val};

/// Shrinks a program while `still_fails` holds: first drops whole
/// resources, then drops individual top-level attributes, to fixpoint.
pub fn shrink_program<F>(program: &Program, still_fails: F) -> Program
where
    F: Fn(&Program) -> bool,
{
    let mut current = program.clone();
    // Pass 1: remove resources, restarting after every success so earlier
    // resources get retried once later ones are gone.
    loop {
        let mut improved = false;
        for idx in 0..current.len() {
            let victim = current.resources()[idx].id();
            let keep: HashSet<ResourceId> = current
                .resources()
                .iter()
                .map(|r| r.id())
                .filter(|id| *id != victim)
                .collect();
            let mut candidate = current.clone();
            candidate.retain_ids(&keep);
            if still_fails(&candidate) {
                current = candidate;
                improved = true;
                break;
            }
        }
        if !improved {
            break;
        }
    }
    // Pass 2: drop attributes one at a time.
    loop {
        let mut improved = false;
        'outer: for idx in 0..current.len() {
            let keys: Vec<String> = current.resources()[idx].attrs.keys().cloned().collect();
            for key in keys {
                let mut candidate = current.clone();
                candidate.resources_mut()[idx].unset(&key);
                if still_fails(&candidate) {
                    current = candidate;
                    improved = true;
                    break 'outer;
                }
            }
        }
        if !improved {
            break;
        }
    }
    current
}

/// Shrinks a repair edit list while `still_fails` holds: greedy drop-one
/// with restart after every success, so a returned list is locally minimal
/// (no single edit can be removed). Deterministic — candidate order is the
/// input order.
pub fn shrink_edits<T, F>(edits: &[T], still_fails: F) -> Vec<T>
where
    T: Clone,
    F: Fn(&[T]) -> bool,
{
    let mut current = edits.to_vec();
    loop {
        let mut improved = false;
        for i in 0..current.len() {
            let mut candidate = current.clone();
            candidate.remove(i);
            if still_fails(&candidate) {
                current = candidate;
                improved = true;
                break;
            }
        }
        if !improved {
            return current;
        }
    }
}

/// Collects every string literal in a check, in printing order.
fn collect_str_lits(check: &Check, out: &mut Vec<String>) {
    fn walk_val(v: &Val, out: &mut Vec<String>) {
        match v {
            Val::Lit(Value::Str(s)) => out.push(s.clone()),
            Val::Length(inner) => walk_val(inner, out),
            _ => {}
        }
    }
    fn walk_expr(e: &Expr, out: &mut Vec<String>) {
        match e {
            Expr::Cmp { lhs, rhs, .. } => {
                walk_val(lhs, out);
                walk_val(rhs, out);
            }
            Expr::CoConn { first, second } | Expr::CoPath { first, second } => {
                walk_expr(first, out);
                walk_expr(second, out);
            }
            _ => {}
        }
    }
    walk_expr(&check.cond, out);
    walk_expr(&check.stmt, out);
}

/// Replaces the `n`-th string literal (printing order) with `new`.
fn replace_str_lit(check: &Check, n: usize, new: &str) -> Check {
    fn walk_val(v: &mut Val, seen: &mut usize, n: usize, new: &str) {
        match v {
            Val::Lit(Value::Str(s)) => {
                if *seen == n {
                    *s = new.to_string();
                }
                *seen += 1;
            }
            Val::Length(inner) => walk_val(inner, seen, n, new),
            _ => {}
        }
    }
    fn walk_expr(e: &mut Expr, seen: &mut usize, n: usize, new: &str) {
        match e {
            Expr::Cmp { lhs, rhs, .. } => {
                walk_val(lhs, seen, n, new);
                walk_val(rhs, seen, n, new);
            }
            Expr::CoConn { first, second } | Expr::CoPath { first, second } => {
                walk_expr(first, seen, n, new);
                walk_expr(second, seen, n, new);
            }
            _ => {}
        }
    }
    let mut out = check.clone();
    let mut seen = 0usize;
    walk_expr(&mut out.cond, &mut seen, n, new);
    walk_expr(&mut out.stmt, &mut seen, n, new);
    out
}

/// Shrinks a check while `still_fails` holds by shortening its string
/// literals: halve from the back, then drop single characters. The check's
/// shape is left intact — for printer/parser failures the literal content
/// is the interesting axis.
pub fn shrink_check<F>(check: &Check, still_fails: F) -> Check
where
    F: Fn(&Check) -> bool,
{
    let mut current = check.clone();
    loop {
        let mut lits = Vec::new();
        collect_str_lits(&current, &mut lits);
        let mut improved = false;
        'outer: for (n, lit) in lits.iter().enumerate() {
            if lit.is_empty() {
                continue;
            }
            let mut half = lit.len() / 2;
            while !lit.is_char_boundary(half) {
                half -= 1;
            }
            let mut candidates: Vec<String> = vec![lit[..half].to_string()];
            for (i, ch) in lit.char_indices() {
                let mut shorter = String::with_capacity(lit.len());
                shorter.push_str(&lit[..i]);
                shorter.push_str(&lit[i + ch.len_utf8()..]);
                candidates.push(shorter);
            }
            for candidate_lit in candidates {
                if candidate_lit.len() >= lit.len() {
                    continue;
                }
                let candidate = replace_str_lit(&current, n, &candidate_lit);
                if still_fails(&candidate) {
                    current = candidate;
                    improved = true;
                    break 'outer;
                }
            }
        }
        if !improved {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zodiac_model::Resource;
    use zodiac_spec::build as b;

    #[test]
    fn shrinks_program_to_failing_core() {
        let p = Program::new()
            .with(Resource::new("azurerm_storage_account", "bad").with("name", "Has_Upper"))
            .with(Resource::new("azurerm_storage_account", "ok").with("name", "fine"))
            .with(Resource::new("azurerm_resource_group", "rg").with("name", "rg"));
        // "Failure" = some SA has an underscore in its name.
        let fails = |p: &Program| {
            p.of_type("azurerm_storage_account")
                .any(|r| matches!(r.get_attr("name"), Some(Value::Str(s)) if s.contains('_')))
        };
        let shrunk = shrink_program(&p, fails);
        assert_eq!(shrunk.len(), 1);
        assert!(fails(&shrunk));
    }

    #[test]
    fn shrink_keeps_failing_attr_only() {
        let p = Program::new().with(
            Resource::new("azurerm_storage_account", "bad")
                .with("name", "Has_Upper")
                .with("location", "eastus")
                .with("account_tier", "Standard"),
        );
        let fails = |p: &Program| {
            p.resources()
                .iter()
                .any(|r| matches!(r.get_attr("name"), Some(Value::Str(s)) if s.contains('_')))
        };
        let shrunk = shrink_program(&p, fails);
        assert_eq!(shrunk.resources()[0].attrs.len(), 1);
    }

    #[test]
    fn shrinks_check_literal_to_minimal_quote() {
        let c = b::check(
            [b::binding("r", "VM")],
            b::eq(b::endpoint("r", "location"), b::lit("east'us and more")),
            b::ne(b::endpoint("r", "priority"), b::null()),
        );
        // "Failure" = some literal contains a quote.
        let fails = |c: &Check| {
            let mut lits = Vec::new();
            collect_str_lits(c, &mut lits);
            lits.iter().any(|l| l.contains('\''))
        };
        let shrunk = shrink_check(&c, fails);
        let mut lits = Vec::new();
        collect_str_lits(&shrunk, &mut lits);
        assert_eq!(lits[0], "'", "minimal literal is the quote alone");
    }

    #[test]
    fn shrink_edits_finds_minimal_subset() {
        // "Failure" = the list still contains both 2 and 4.
        let edits = vec![1, 2, 3, 4, 5];
        let fails = |e: &[i32]| e.contains(&2) && e.contains(&4);
        let shrunk = shrink_edits(&edits, fails);
        assert_eq!(shrunk, vec![2, 4]);
    }

    #[test]
    fn shrinking_is_deterministic() {
        let p = Program::new()
            .with(Resource::new("azurerm_storage_account", "a").with("name", "x_y"))
            .with(Resource::new("azurerm_storage_account", "b").with("name", "y_z"));
        let fails = |p: &Program| !p.is_empty();
        let one = shrink_program(&p, fails);
        let two = shrink_program(&p, fails);
        assert_eq!(one, two);
    }
}
