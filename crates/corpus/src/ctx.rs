//! Per-project generation context: naming, CIDR allocation, shared
//! resource-group scaffolding.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use zodiac_model::{Program, Resource, Value};

/// Weighted location distribution (common regions dominate, as on GitHub).
const LOCATION_WEIGHTS: &[(&str, u32)] = &[
    ("eastus", 30),
    ("eastus2", 12),
    ("westus2", 12),
    ("westeurope", 15),
    ("northeurope", 8),
    ("uksouth", 6),
    ("centralus", 6),
    ("southeastasia", 5),
    ("japaneast", 3),
    ("australiaeast", 3),
];

/// Weighted VM size distribution.
const SIZE_WEIGHTS: &[(&str, u32)] = &[
    ("Standard_B1s", 20),
    ("Standard_B2s", 14),
    ("Standard_D2s_v3", 16),
    ("Standard_D4s_v3", 8),
    ("Standard_DS1_v2", 8),
    ("Standard_F2s_v2", 10),
    ("Standard_F4s_v2", 6),
    ("Standard_E4s_v3", 5),
    ("Standard_B1ls", 6),
    ("Standard_A2_v2", 4),
    ("Standard_D8s_v3", 2),
    ("Standard_E8s_v3", 1),
];

/// Generation context for one project.
pub struct Ctx {
    /// Project-local RNG.
    pub rng: StdRng,
    program: Program,
    counters: BTreeMap<&'static str, usize>,
    next_vnet_block: u8,
    /// Project-wide default region.
    pub location: String,
    /// Whether this project uses the rare `Attach` create option.
    pub rare_attach: bool,
    rg: Option<String>,
    project_index: usize,
}

impl Ctx {
    /// Creates a context with its own seeded RNG.
    pub fn new(seed: u64, project_index: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let location = pick_weighted(&mut rng, LOCATION_WEIGHTS).to_string();
        Ctx {
            rng,
            program: Program::new(),
            counters: BTreeMap::new(),
            next_vnet_block: 0,
            location,
            rare_attach: false,
            rg: None,
            project_index,
        }
    }

    /// Finalises the program.
    pub fn finish(self) -> Program {
        self.program
    }

    /// A fresh local name for a resource kind, e.g. `vnet2`.
    pub fn fresh(&mut self, kind: &'static str) -> String {
        let n = self.counters.entry(kind).or_default();
        let name = if *n == 0 {
            kind.to_string()
        } else {
            format!("{kind}{n}")
        };
        *n += 1;
        name
    }

    /// A globally-unique-ish cloud-side name.
    pub fn cloud_name(&mut self, kind: &'static str) -> String {
        let local = self.fresh(kind);
        format!("{local}-p{}", self.project_index)
    }

    /// Allocates a fresh /16 VNet block within 10.0.0.0/8.
    pub fn alloc_vnet_cidr(&mut self) -> String {
        let block = self.next_vnet_block;
        self.next_vnet_block = self.next_vnet_block.wrapping_add(1);
        format!("10.{block}.0.0/16")
    }

    /// Allocates the `i`-th /24 subnet inside a /16 VNet block. An
    /// unparsable block (impossible for generator-produced CIDRs) falls back
    /// to the 10.0.0.0/16 block.
    pub fn subnet_cidr(vnet_cidr: &str, i: u8) -> String {
        let second = vnet_cidr
            .parse::<zodiac_model::Cidr>()
            .map(|c| c.addr().to_be_bytes()[1])
            .unwrap_or(0);
        format!("10.{second}.{i}.0/24")
    }

    /// Samples a weighted VM size.
    pub fn sample_size(&mut self) -> &'static str {
        pick_weighted(&mut self.rng, SIZE_WEIGHTS)
    }

    /// Adds a resource to the program. Generator names are unique by
    /// construction, so a duplicate id cannot occur; if one ever did, the
    /// first occurrence wins.
    pub fn add(&mut self, r: Resource) {
        let _ = self.program.add(r);
    }

    /// Ensures a resource group exists and returns a reference to its name.
    pub fn rg_ref(&mut self) -> Value {
        let local = match &self.rg {
            Some(local) => local.clone(),
            None => {
                let local = self.fresh("rg");
                let name = format!("rg-p{}", self.project_index);
                self.add(
                    Resource::new("azurerm_resource_group", local.clone())
                        .with("name", name)
                        .with("location", self.location.clone()),
                );
                self.rg = Some(local.clone());
                local
            }
        };
        Value::r("azurerm_resource_group", &local, "name")
    }
}

/// Picks from a weighted table (empty tables yield `""`).
pub fn pick_weighted<'a>(rng: &mut StdRng, table: &[(&'a str, u32)]) -> &'a str {
    let total: u32 = table.iter().map(|(_, w)| w).sum();
    let mut roll = rng.gen_range(0..total.max(1));
    for (item, w) in table {
        if roll < *w {
            return item;
        }
        roll -= w;
    }
    table.last().map(|(item, _)| *item).unwrap_or("")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_names_are_unique() {
        let mut ctx = Ctx::new(1, 0);
        let a = ctx.fresh("vnet");
        let b = ctx.fresh("vnet");
        let c = ctx.fresh("subnet");
        assert_ne!(a, b);
        assert_eq!(a, "vnet");
        assert_eq!(b, "vnet1");
        assert_eq!(c, "subnet");
    }

    #[test]
    fn vnet_blocks_do_not_overlap() {
        let mut ctx = Ctx::new(1, 0);
        let a: zodiac_model::Cidr = ctx.alloc_vnet_cidr().parse().unwrap();
        let b: zodiac_model::Cidr = ctx.alloc_vnet_cidr().parse().unwrap();
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn subnet_cidrs_nest_in_vnet() {
        let vnet = "10.3.0.0/16";
        let s0: zodiac_model::Cidr = Ctx::subnet_cidr(vnet, 0).parse().unwrap();
        let s1: zodiac_model::Cidr = Ctx::subnet_cidr(vnet, 1).parse().unwrap();
        let v: zodiac_model::Cidr = vnet.parse().unwrap();
        assert!(v.contains(&s0));
        assert!(v.contains(&s1));
        assert!(!s0.overlaps(&s1));
    }

    #[test]
    fn rg_is_created_once() {
        let mut ctx = Ctx::new(1, 7);
        ctx.rg_ref();
        ctx.rg_ref();
        let p = ctx.finish();
        assert_eq!(p.of_type("azurerm_resource_group").count(), 1);
    }

    #[test]
    fn weighted_pick_hits_all_eventually() {
        let mut rng = StdRng::seed_from_u64(3);
        let table = [("a", 1), ("b", 1)];
        let mut seen_a = false;
        let mut seen_b = false;
        for _ in 0..100 {
            match pick_weighted(&mut rng, &table) {
                "a" => seen_a = true,
                _ => seen_b = true,
            }
        }
        assert!(seen_a && seen_b);
    }
}
