//! Synthetic Terraform corpus generation.
//!
//! The paper mines checks from ~6,000 crawled GitHub projects. This crate is
//! the offline substitute: it samples realistic Azure infrastructure
//! *motifs* (single VMs, fleets, load-balanced web tiers, hub-and-spoke
//! VNets, VPN sites, firewalled hubs, storage, NAT egress, bastions, ...)
//! into compiled programs that deploy cleanly against the simulator's ground
//! truth, then optionally injects misconfigurations at a configurable rate
//! to model the buggy repositories found in the wild (§5.5 reports 2.0% of
//! projects violating at least one check).
//!
//! Generation is fully deterministic per seed.

mod ctx;
mod motifs;
mod noise;

pub use noise::{inject, inject_kind, NOISE_KINDS};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zodiac_model::Program;
use zodiac_obs::Obs;

/// Configuration for corpus generation.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of projects to generate.
    pub projects: usize,
    /// Probability that a project receives one injected misconfiguration.
    pub noise_rate: f64,
    /// Probability that a project uses the rare `Attach` VM create option
    /// (kept near zero to reproduce the paper's §5.6 open-world false
    /// positive).
    pub rare_option_rate: f64,
    /// Minimum number of motifs per project.
    pub min_motifs: usize,
    /// Maximum number of motifs per project.
    pub max_motifs: usize,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            seed: 0xC0FFEE,
            projects: 600,
            noise_rate: 0.02,
            rare_option_rate: 0.0,
            min_motifs: 1,
            max_motifs: 3,
        }
    }
}

/// One generated project (repository).
#[derive(Debug, Clone)]
pub struct Project {
    /// Project name, e.g. `project-0042`.
    pub name: String,
    /// The compiled program (deployment-plan view).
    pub program: Program,
    /// Name of the injected misconfiguration, if any.
    pub injected_noise: Option<&'static str>,
    /// Names of the motifs composed into this project.
    pub motifs: Vec<&'static str>,
}

impl Project {
    /// Renders the project as HCL source.
    pub fn to_hcl(&self) -> String {
        zodiac_hcl::to_hcl(&self.program)
    }
}

/// A streaming corpus source: yields projects one at a time from the seed,
/// without materialising a `Vec<Project>`.
///
/// The stream draws from the *same* sequential RNG as [`generate`], so the
/// project at stream position `i` is byte-identical to `generate(cfg)[i]` —
/// [`generate`] is literally a collector over this iterator. That identity
/// is what lets sharded streaming mining reproduce batch results exactly:
/// the corpus a 100k-project mine observes is the corpus a materialising
/// run would have built, it just never lives in memory all at once.
#[derive(Debug)]
pub struct ProjectStream {
    cfg: CorpusConfig,
    rng: StdRng,
    next: usize,
}

impl ProjectStream {
    /// Opens a stream over the corpus described by `cfg`.
    pub fn new(cfg: &CorpusConfig) -> Self {
        ProjectStream {
            cfg: cfg.clone(),
            rng: StdRng::seed_from_u64(cfg.seed),
            next: 0,
        }
    }

    /// Index of the next project the stream will yield.
    pub fn position(&self) -> usize {
        self.next
    }

    /// Projects remaining in the stream.
    pub fn remaining(&self) -> usize {
        self.cfg.projects - self.next
    }
}

impl Iterator for ProjectStream {
    type Item = Project;

    fn next(&mut self) -> Option<Project> {
        if self.next >= self.cfg.projects {
            return None;
        }
        let project = generate_project(&mut self.rng, &self.cfg, self.next);
        self.next += 1;
        Some(project)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining();
        (n, Some(n))
    }
}

impl ExactSizeIterator for ProjectStream {}

/// Records one streamed project's mix into the observability registry —
/// the per-project half of what [`generate_obs`] reports, usable from a
/// streaming consumer that never holds the corpus.
pub fn observe_project(p: &Project, obs: &Obs) {
    if obs.is_enabled() {
        obs.counter("corpus.projects", 1);
        obs.counter("corpus.resources", p.program.len() as u64);
        if let Some(kind) = p.injected_noise {
            obs.counter(&format!("corpus.noise.{kind}"), 1);
        }
        for motif in &p.motifs {
            obs.counter(&format!("corpus.motif.{motif}"), 1);
        }
    }
}

/// Generates a corpus.
pub fn generate(cfg: &CorpusConfig) -> Vec<Project> {
    generate_obs(cfg, &Obs::null())
}

/// [`generate`] with an observability handle: records a `pipeline/corpus`
/// span plus `corpus.projects`, `corpus.resources`, `corpus.noise.<kind>`,
/// and `corpus.motif.<name>` counters describing the generated mix.
pub fn generate_obs(cfg: &CorpusConfig, obs: &Obs) -> Vec<Project> {
    let _span = obs.start_span("pipeline/corpus");
    let projects: Vec<Project> = ProjectStream::new(cfg).collect();
    for p in &projects {
        observe_project(p, obs);
    }
    projects
}

fn generate_project(rng: &mut StdRng, cfg: &CorpusConfig, index: usize) -> Project {
    let mut ctx = ctx::Ctx::new(rng.gen(), index);
    ctx.rare_attach = rng.gen_bool(cfg.rare_option_rate.clamp(0.0, 1.0));
    let n_motifs = rng.gen_range(cfg.min_motifs..=cfg.max_motifs.max(cfg.min_motifs));
    let mut used = Vec::new();
    for _ in 0..n_motifs {
        let motif = motifs::sample(&mut ctx);
        used.push(motif);
    }
    let mut program = ctx.finish();
    let injected = if rng.gen_bool(cfg.noise_rate.clamp(0.0, 1.0)) {
        noise::inject(rng, &mut program)
    } else {
        None
    };
    Project {
        name: format!("project-{index:04}"),
        program,
        injected_noise: injected,
        motifs: used,
    }
}

/// Convenience: generates the default evaluation-scale corpus.
pub fn default_corpus() -> Vec<Project> {
    generate(&CorpusConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = CorpusConfig {
            projects: 10,
            ..Default::default()
        };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.len(), 10);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.program, y.program);
            assert_eq!(x.injected_noise, y.injected_noise);
        }
    }

    #[test]
    fn stream_is_byte_identical_to_generate() {
        let cfg = CorpusConfig {
            projects: 40,
            noise_rate: 0.2,
            rare_option_rate: 0.01,
            ..Default::default()
        };
        let batch = generate(&cfg);
        let mut stream = ProjectStream::new(&cfg);
        assert_eq!(stream.len(), 40);
        for (i, expected) in batch.iter().enumerate() {
            assert_eq!(stream.position(), i);
            let got = stream.next().expect("stream ends early");
            assert_eq!(got.name, expected.name);
            assert_eq!(got.program, expected.program);
            assert_eq!(got.injected_noise, expected.injected_noise);
            assert_eq!(got.motifs, expected.motifs);
            // Byte-identical through the HCL renderer as well.
            assert_eq!(got.to_hcl(), expected.to_hcl());
        }
        assert!(stream.next().is_none());
        assert_eq!(stream.remaining(), 0);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&CorpusConfig {
            projects: 5,
            seed: 1,
            ..Default::default()
        });
        let b = generate(&CorpusConfig {
            projects: 5,
            seed: 2,
            ..Default::default()
        });
        assert!(a.iter().zip(&b).any(|(x, y)| x.program != y.program));
    }

    #[test]
    fn projects_have_resources_and_hcl() {
        let corpus = generate(&CorpusConfig {
            projects: 20,
            noise_rate: 0.0,
            ..Default::default()
        });
        for p in &corpus {
            assert!(!p.program.is_empty(), "{} is empty", p.name);
            let hcl = p.to_hcl();
            assert!(hcl.contains("resource \""));
            // The HCL round-trips through the frontend.
            let back = zodiac_hcl::compile(&hcl).expect("generated HCL must compile");
            assert_eq!(back, p.program, "{} HCL does not roundtrip", p.name);
        }
    }

    #[test]
    fn noise_rate_controls_injection() {
        let clean = generate(&CorpusConfig {
            projects: 50,
            noise_rate: 0.0,
            ..Default::default()
        });
        assert!(clean.iter().all(|p| p.injected_noise.is_none()));
        let noisy = generate(&CorpusConfig {
            projects: 50,
            noise_rate: 1.0,
            ..Default::default()
        });
        let injected = noisy.iter().filter(|p| p.injected_noise.is_some()).count();
        // Injection can fail when a project lacks the needed resource, but
        // most projects should accept at least one injector.
        assert!(injected > 25, "only {injected}/50 injected");
    }
}
