//! Infrastructure motifs: the building blocks of synthetic projects.
//!
//! Each motif emits a self-contained, ground-truth-conforming cluster of
//! resources modelled on the infrastructure patterns that dominate public
//! Terraform repositories (the workloads the paper's introduction
//! motivates): single VMs, fleets, load-balanced web tiers, VPN sites,
//! hub-and-spoke peering, application gateways, firewalled hubs, storage
//! sites, NAT egress, bastions, secured subnets, and spot batches.

use crate::ctx::{pick_weighted, Ctx};
use rand::Rng;
use std::collections::BTreeMap;
use zodiac_model::{Resource, Value};

const MOTIF_WEIGHTS: &[(&str, u32)] = &[
    ("simple_vm", 22),
    ("vm_fleet", 10),
    ("web_lb", 9),
    ("secured_subnet", 10),
    ("storage_site", 12),
    ("data_disks", 8),
    ("vpn_site", 6),
    ("vnet2vnet", 3),
    ("hub_spoke", 6),
    ("appgw_web", 5),
    ("firewall_hub", 4),
    ("nat_egress", 4),
    ("bastion_admin", 3),
    ("spot_batch", 4),
];

/// Samples one motif and appends it to the project.
pub fn sample(ctx: &mut Ctx) -> &'static str {
    let motif = pick_weighted(&mut ctx.rng, MOTIF_WEIGHTS);
    match motif {
        "simple_vm" => simple_vm(ctx),
        "vm_fleet" => vm_fleet(ctx),
        "web_lb" => web_lb(ctx),
        "secured_subnet" => secured_subnet(ctx),
        "storage_site" => storage_site(ctx),
        "data_disks" => data_disks(ctx),
        "vpn_site" => vpn_site(ctx),
        "vnet2vnet" => vnet2vnet(ctx),
        "hub_spoke" => hub_spoke(ctx),
        "appgw_web" => appgw_web(ctx),
        "firewall_hub" => firewall_hub(ctx),
        "nat_egress" => nat_egress(ctx),
        "bastion_admin" => bastion_admin(ctx),
        _ => spot_batch(ctx),
    }
    // Table lookup and match arms are kept in sync by the catch-all.
    MOTIF_WEIGHTS
        .iter()
        .find(|(name, _)| *name == motif)
        .map(|(name, _)| *name)
        .unwrap_or("spot_batch")
}

fn map(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect::<BTreeMap<_, _>>(),
    )
}

// ----------------------------------------------------------------------
// Shared builders
// ----------------------------------------------------------------------

/// Creates a VNet, returning `(local_name, cidr)`.
pub fn vnet(ctx: &mut Ctx) -> (String, String) {
    let rg = ctx.rg_ref();
    let local = ctx.fresh("vnet");
    let cloud = ctx.cloud_name("net");
    let cidr = ctx.alloc_vnet_cidr();
    let loc = ctx.location.clone();
    ctx.add(
        Resource::new("azurerm_virtual_network", local.clone())
            .with("name", cloud)
            .with("location", loc)
            .with("resource_group_name", rg)
            .with("address_space", Value::List(vec![Value::s(cidr.clone())])),
    );
    (local, cidr)
}

/// Creates a /24 subnet at index `idx`, returning its local name.
pub fn subnet(ctx: &mut Ctx, vnet_local: &str, vnet_cidr: &str, idx: u8) -> String {
    named_subnet(ctx, vnet_local, &Ctx::subnet_cidr(vnet_cidr, idx), None)
}

/// Creates a subnet with an explicit CIDR and optional reserved name.
pub fn named_subnet(ctx: &mut Ctx, vnet_local: &str, cidr: &str, reserved: Option<&str>) -> String {
    let rg = ctx.rg_ref();
    let local = ctx.fresh("subnet");
    let name = match reserved {
        Some(r) => r.to_string(),
        None => ctx.cloud_name("snet"),
    };
    let mut r = Resource::new("azurerm_subnet", local.clone())
        .with("name", name)
        .with("resource_group_name", rg)
        .with(
            "virtual_network_name",
            Value::r("azurerm_virtual_network", vnet_local, "name"),
        )
        .with("address_prefixes", Value::List(vec![Value::s(cidr)]));
    // Ordinary subnets occasionally delegate to a managed service; reserved
    // subnets never may (a polling-phase ground rule).
    if reserved.is_none() && ctx.rng.gen_bool(0.05) {
        r = r.with(
            "delegation",
            map(vec![
                ("name", Value::s("delegation")),
                (
                    "service_delegation",
                    map(vec![(
                        "name",
                        Value::s("Microsoft.ContainerInstance/containerGroups"),
                    )]),
                ),
            ]),
        );
    }
    ctx.add(r);
    local
}

/// Creates a public IP with an uncorrelated random sku (Basic-weighted).
pub fn public_ip_any(ctx: &mut Ctx) -> String {
    let standard = ctx.rng.gen_bool(0.25);
    public_ip(ctx, standard)
}

/// Creates a public IP with correlated sku/allocation, returning its local
/// name. `standard` selects the Standard/Static pairing required by
/// firewalls, NAT gateways, bastions and application gateways; `false`
/// yields the Basic/Dynamic pairing.
pub fn public_ip(ctx: &mut Ctx, standard: bool) -> String {
    let rg = ctx.rg_ref();
    let local = ctx.fresh("pip");
    let cloud = ctx.cloud_name("ip");
    let loc = ctx.location.clone();
    let mut r = Resource::new("azurerm_public_ip", local.clone())
        .with("name", cloud)
        .with("location", loc)
        .with("resource_group_name", rg)
        .with(
            "allocation_method",
            if standard { "Static" } else { "Dynamic" },
        );
    // Basic-sku IPs often omit the sku attribute entirely (provider default).
    if standard {
        r = r.with("sku", "Standard");
    } else if ctx.rng.gen_bool(0.4) {
        r = r.with("sku", "Basic");
    }
    ctx.add(r);
    local
}

/// Creates a NIC on a subnet, optionally with a public IP, returning its
/// local name.
pub fn nic(ctx: &mut Ctx, subnet_local: &str, pip_local: Option<&str>) -> String {
    let rg = ctx.rg_ref();
    let local = ctx.fresh("nic");
    let cloud = ctx.cloud_name("nic");
    let loc = ctx.location.clone();
    let mut ipcfg = vec![
        ("name", Value::s("internal")),
        ("subnet_id", Value::r("azurerm_subnet", subnet_local, "id")),
        ("private_ip_address_allocation", Value::s("Dynamic")),
    ];
    if let Some(p) = pip_local {
        ipcfg.push((
            "public_ip_address_id",
            Value::r("azurerm_public_ip", p, "id"),
        ));
    }
    ctx.add(
        Resource::new("azurerm_network_interface", local.clone())
            .with("name", cloud)
            .with("location", loc)
            .with("resource_group_name", rg)
            .with("ip_configuration", map(ipcfg)),
    );
    local
}

/// Options for VM creation.
#[derive(Default)]
pub struct VmOpts {
    /// Fixed size (sampled when `None`).
    pub size: Option<&'static str>,
    /// Spot priority with an eviction policy.
    pub spot: bool,
    /// Availability set local name to join.
    pub avset: Option<String>,
}

/// Creates a VM over the given NICs, returning its local name.
pub fn vm(ctx: &mut Ctx, nic_locals: &[String], opts: VmOpts) -> String {
    let rg = ctx.rg_ref();
    let local = ctx.fresh("vm");
    let cloud = ctx.cloud_name("vm");
    let loc = ctx.location.clone();
    let mut size = opts.size.unwrap_or_else(|| ctx.sample_size());
    // Respect regional sku availability (developers notice the portal error
    // and pick an offered size).
    for _ in 0..8 {
        if zodiac_kb::docs::vm_sku_available(size, &ctx.location) {
            break;
        }
        size = ctx.sample_size();
    }
    if !zodiac_kb::docs::vm_sku_available(size, &ctx.location) {
        size = "Standard_B1s";
    }
    let nics: Vec<Value> = nic_locals
        .iter()
        .map(|n| Value::r("azurerm_network_interface", n, "id"))
        .collect();
    let mut os_disk = vec![
        ("caching", Value::s("ReadWrite")),
        ("storage_account_type", Value::s("Standard_LRS")),
    ];
    let os_disk_name = format!("{cloud}-osdisk");
    if ctx.rng.gen_bool(0.6) {
        os_disk.push(("name", Value::s(os_disk_name)));
    }
    let mut r = Resource::new("azurerm_linux_virtual_machine", local.clone())
        .with("name", cloud)
        .with("location", loc)
        .with("resource_group_name", rg)
        .with("size", size)
        .with("admin_username", "azureuser")
        .with("network_interface_ids", Value::List(nics))
        .with("os_disk", map(os_disk));
    if ctx.rare_attach {
        r = r.with("create_option", "Attach");
    } else {
        r = r.with(
            "source_image_reference",
            map(vec![
                ("publisher", Value::s("Canonical")),
                ("offer", Value::s("0001-com-ubuntu-server-jammy")),
                ("sku", Value::s("22_04-lts")),
                ("version", Value::s("latest")),
            ]),
        );
    }
    // Authentication: ssh-key style (no password) or password auth. The
    // password variants are what Checkov-style security baselines flag.
    if ctx.rng.gen_bool(0.25) {
        r = r
            .with("admin_password", "Sup3rS3cret!")
            .with("disable_password_authentication", false);
    }
    if opts.spot {
        r = r.with("priority", "Spot").with(
            "eviction_policy",
            if ctx.rng.gen_bool(0.8) {
                "Deallocate"
            } else {
                "Delete"
            },
        );
    }
    if let Some(avset) = opts.avset {
        r = r.with(
            "availability_set_id",
            Value::r("azurerm_availability_set", &avset, "id"),
        );
    }
    ctx.add(r);
    local
}

// ----------------------------------------------------------------------
// Motifs
// ----------------------------------------------------------------------

fn simple_vm(ctx: &mut Ctx) {
    let (v, cidr) = vnet(ctx);
    let s = subnet(ctx, &v, &cidr, 1);
    let pip = if ctx.rng.gen_bool(0.5) {
        Some(public_ip_any(ctx))
    } else {
        None
    };
    let n = nic(ctx, &s, pip.as_deref());
    vm(ctx, &[n], VmOpts::default());
}

fn vm_fleet(ctx: &mut Ctx) {
    let rg = ctx.rg_ref();
    let (v, cidr) = vnet(ctx);
    let s = subnet(ctx, &v, &cidr, 1);
    let avset_local = ctx.fresh("avset");
    let avset_cloud = ctx.cloud_name("avset");
    let loc = ctx.location.clone();
    ctx.add(
        Resource::new("azurerm_availability_set", avset_local.clone())
            .with("name", avset_cloud)
            .with("location", loc)
            .with("resource_group_name", rg)
            .with("managed", true),
    );
    let count = ctx.rng.gen_range(2..=4);
    let size = ctx.sample_size();
    for _ in 0..count {
        let n = nic(ctx, &s, None);
        vm(
            ctx,
            &[n],
            VmOpts {
                size: Some(size),
                avset: Some(avset_local.clone()),
                ..Default::default()
            },
        );
    }
}

fn web_lb(ctx: &mut Ctx) {
    let rg = ctx.rg_ref();
    let (v, cidr) = vnet(ctx);
    let s = subnet(ctx, &v, &cidr, 1);
    let standard = ctx.rng.gen_bool(0.6);
    let pip = public_ip(ctx, standard);
    let lb_local = ctx.fresh("lb");
    let lb_cloud = ctx.cloud_name("lb");
    let loc = ctx.location.clone();
    let mut lb = Resource::new("azurerm_lb", lb_local.clone())
        .with("name", lb_cloud)
        .with("location", loc)
        .with("resource_group_name", rg)
        .with(
            "frontend_ip_configuration",
            map(vec![
                ("name", Value::s("frontend")),
                (
                    "public_ip_address_id",
                    Value::r("azurerm_public_ip", &pip, "id"),
                ),
            ]),
        );
    if standard {
        lb = lb.with("sku", "Standard");
    }
    ctx.add(lb);
    let pool_local = ctx.fresh("pool");
    let pool_cloud = ctx.cloud_name("pool");
    ctx.add(
        Resource::new("azurerm_lb_backend_address_pool", pool_local.clone())
            .with("name", pool_cloud)
            .with("loadbalancer_id", Value::r("azurerm_lb", &lb_local, "id")),
    );
    for _ in 0..ctx.rng.gen_range(2..=3) {
        let n = nic(ctx, &s, None);
        vm(ctx, std::slice::from_ref(&n), VmOpts::default());
        let assoc = ctx.fresh("lbassoc");
        ctx.add(
            Resource::new(
                "azurerm_network_interface_backend_address_pool_association",
                assoc,
            )
            .with(
                "network_interface_id",
                Value::r("azurerm_network_interface", &n, "id"),
            )
            .with(
                "backend_address_pool_id",
                Value::r("azurerm_lb_backend_address_pool", &pool_local, "id"),
            )
            .with("ip_configuration_name", "internal"),
        );
    }
}

fn secured_subnet(ctx: &mut Ctx) {
    let rg = ctx.rg_ref();
    let (v, cidr) = vnet(ctx);
    let s = subnet(ctx, &v, &cidr, 1);
    let sg_local = ctx.fresh("sg");
    let sg_cloud = ctx.cloud_name("nsg");
    let loc = ctx.location.clone();
    let mut rules = Vec::new();
    let n_rules = ctx.rng.gen_range(1..=4);
    for i in 0..n_rules {
        let inbound = ctx.rng.gen_bool(0.7);
        let open_ssh = ctx.rng.gen_bool(0.15);
        rules.push(map(vec![
            ("name", Value::s(format!("rule-{i}"))),
            ("priority", Value::Int(100 + 10 * i as i64)),
            (
                "direction",
                Value::s(if inbound { "Inbound" } else { "Outbound" }),
            ),
            ("access", Value::s("Allow")),
            ("protocol", Value::s("Tcp")),
            ("source_port_range", Value::s("*")),
            (
                "destination_port_range",
                Value::s(if open_ssh { "22" } else { "443" }),
            ),
            (
                "source_address_prefix",
                Value::s(if open_ssh { "*" } else { "10.0.0.0/8" }),
            ),
            ("destination_address_prefix", Value::s("*")),
        ]));
    }
    // A single nested block compiles to a map (matching the HCL frontend);
    // repeated blocks compile to a list.
    let rules_value = match (rules.pop(), rules.is_empty()) {
        (Some(single), true) => single,
        (Some(last), false) => {
            rules.push(last);
            Value::List(rules)
        }
        (None, _) => Value::List(rules),
    };
    ctx.add(
        Resource::new("azurerm_network_security_group", sg_local.clone())
            .with("name", sg_cloud)
            .with("location", loc)
            .with("resource_group_name", rg)
            .with("security_rule", rules_value),
    );
    let assoc = ctx.fresh("sgassoc");
    ctx.add(
        Resource::new("azurerm_subnet_network_security_group_association", assoc)
            .with("subnet_id", Value::r("azurerm_subnet", &s, "id"))
            .with(
                "network_security_group_id",
                Value::r("azurerm_network_security_group", &sg_local, "id"),
            ),
    );
    // Often the secured subnet hosts a VM too.
    if ctx.rng.gen_bool(0.5) {
        let n = nic(ctx, &s, None);
        vm(ctx, &[n], VmOpts::default());
    }
}

fn storage_site(ctx: &mut Ctx) {
    let rg = ctx.rg_ref();
    let local = ctx.fresh("sa");
    let n: usize = ctx.rng.gen_range(0..=9999);
    let cloud = format!("sa{n:04}zodiac");
    let loc = ctx.location.clone();
    let premium = ctx.rng.gen_bool(0.2);
    let replication = if premium {
        *["LRS", "ZRS"]
            .get(ctx.rng.gen_range(0..2))
            .unwrap_or(&"LRS")
    } else {
        *["LRS", "GRS", "RAGRS", "ZRS", "GZRS"]
            .get(ctx.rng.gen_range(0..5))
            .unwrap_or(&"LRS")
    };
    ctx.add(
        Resource::new("azurerm_storage_account", local.clone())
            .with("name", cloud)
            .with("location", loc)
            .with("resource_group_name", rg)
            .with("account_tier", if premium { "Premium" } else { "Standard" })
            .with("account_replication_type", replication),
    );
    for _ in 0..ctx.rng.gen_range(1..=2) {
        let c = ctx.fresh("container");
        let c_cloud = ctx.cloud_name("data");
        ctx.add(
            Resource::new("azurerm_storage_container", c)
                .with("name", c_cloud.to_lowercase())
                .with(
                    "storage_account_name",
                    Value::r("azurerm_storage_account", &local, "name"),
                )
                .with("container_access_type", "private"),
        );
    }
}

fn data_disks(ctx: &mut Ctx) {
    let rg = ctx.rg_ref();
    let (v, cidr) = vnet(ctx);
    let s = subnet(ctx, &v, &cidr, 1);
    let n = nic(ctx, &s, None);
    // Pick a size with data-disk headroom.
    let size = *["Standard_D4s_v3", "Standard_E4s_v3", "Standard_B2s"]
        .get(ctx.rng.gen_range(0..3))
        .unwrap_or(&"Standard_D4s_v3");
    let vm_local = vm(
        ctx,
        &[n],
        VmOpts {
            size: Some(size),
            ..Default::default()
        },
    );
    let count = ctx.rng.gen_range(1..=3);
    for lun in 0..count {
        let disk_local = ctx.fresh("disk");
        let disk_cloud = ctx.cloud_name("datadisk");
        let loc = ctx.location.clone();
        ctx.add(
            Resource::new("azurerm_managed_disk", disk_local.clone())
                .with("name", disk_cloud)
                .with("location", loc)
                .with("resource_group_name", rg.clone())
                .with("storage_account_type", "Standard_LRS")
                .with("create_option", "Empty")
                .with("disk_size_gb", 64),
        );
        let attach = ctx.fresh("attach");
        ctx.add(
            Resource::new("azurerm_virtual_machine_data_disk_attachment", attach)
                .with(
                    "virtual_machine_id",
                    Value::r("azurerm_linux_virtual_machine", &vm_local, "id"),
                )
                .with(
                    "managed_disk_id",
                    Value::r("azurerm_managed_disk", &disk_local, "id"),
                )
                .with("lun", lun as i64)
                .with("caching", "ReadWrite"),
        );
    }
}

/// Gateway flavour options.
#[derive(Default)]
struct GwOpts {
    policy_based: bool,
    active_active: bool,
}

/// Creates a gateway on a fresh VNet, returning `(gw_local, vnet_local)`.
fn gateway(ctx: &mut Ctx, sku: &str, opts: GwOpts) -> (String, String) {
    let rg = ctx.rg_ref();
    let (v, cidr) = vnet(ctx);
    let octets: Vec<&str> = cidr.split('.').collect();
    let gw_subnet_cidr = format!("10.{}.255.0/27", octets[1]);
    let s = named_subnet(ctx, &v, &gw_subnet_cidr, Some("GatewaySubnet"));
    let pip = public_ip_any(ctx);
    let gw_local = ctx.fresh("gw");
    let gw_cloud = ctx.cloud_name("vpngw");
    let loc = ctx.location.clone();
    let mut r = Resource::new("azurerm_virtual_network_gateway", gw_local.clone())
        .with("name", gw_cloud)
        .with("location", loc)
        .with("resource_group_name", rg)
        .with("type", "Vpn")
        .with(
            "vpn_type",
            if opts.policy_based {
                "PolicyBased"
            } else {
                "RouteBased"
            },
        )
        .with("sku", sku);
    let first_ipcfg = map(vec![
        ("name", Value::s("gwipcfg")),
        (
            "public_ip_address_id",
            Value::r("azurerm_public_ip", &pip, "id"),
        ),
        ("subnet_id", Value::r("azurerm_subnet", &s, "id")),
    ]);
    if opts.active_active {
        // Active-active gateways carry two IP configurations and two IPs.
        let pip2 = public_ip_any(ctx);
        let second_ipcfg = map(vec![
            ("name", Value::s("gwipcfg2")),
            (
                "public_ip_address_id",
                Value::r("azurerm_public_ip", &pip2, "id"),
            ),
            ("subnet_id", Value::r("azurerm_subnet", &s, "id")),
        ]);
        r = r.with("active_active", true).with(
            "ip_configuration",
            Value::List(vec![first_ipcfg, second_ipcfg]),
        );
    } else {
        r = r.with("ip_configuration", first_ipcfg);
    }
    ctx.add(r);
    (gw_local, v)
}

fn vpn_site(ctx: &mut Ctx) {
    let rg = ctx.rg_ref();
    let policy_based = ctx.rng.gen_bool(0.12);
    let sku = if policy_based || ctx.rng.gen_bool(0.3) {
        "Basic"
    } else {
        "VpnGw1"
    };
    let active_active = !policy_based && sku != "Basic" && ctx.rng.gen_bool(0.15);
    let (gw, _v) = gateway(
        ctx,
        sku,
        GwOpts {
            policy_based,
            active_active,
        },
    );
    let lgw_local = ctx.fresh("lgw");
    let lgw_cloud = ctx.cloud_name("onprem");
    let loc = ctx.location.clone();
    ctx.add(
        Resource::new("azurerm_local_network_gateway", lgw_local.clone())
            .with("name", lgw_cloud)
            .with("location", loc.clone())
            .with("resource_group_name", rg.clone())
            .with("gateway_address", "203.0.113.12")
            .with(
                "address_space",
                Value::List(vec![Value::s("192.168.0.0/16")]),
            ),
    );
    let t = ctx.fresh("tunnel");
    let t_cloud = ctx.cloud_name("s2s");
    ctx.add(
        Resource::new("azurerm_virtual_network_gateway_connection", t)
            .with("name", t_cloud)
            .with("location", loc)
            .with("resource_group_name", rg)
            .with("type", "IPsec")
            .with(
                "virtual_network_gateway_id",
                Value::r("azurerm_virtual_network_gateway", &gw, "id"),
            )
            .with(
                "local_network_gateway_id",
                Value::r("azurerm_local_network_gateway", &lgw_local, "id"),
            )
            .with("shared_key", "abc123!"),
    );
}

fn vnet2vnet(ctx: &mut Ctx) {
    let rg = ctx.rg_ref();
    let (gw1, _v1) = gateway(ctx, "VpnGw1", GwOpts::default());
    let (gw2, _v2) = gateway(ctx, "VpnGw1", GwOpts::default());
    let loc = ctx.location.clone();
    for (a, b) in [(&gw1, &gw2), (&gw2, &gw1)] {
        let t = ctx.fresh("tunnel");
        let t_cloud = ctx.cloud_name("v2v");
        ctx.add(
            Resource::new("azurerm_virtual_network_gateway_connection", t)
                .with("name", t_cloud)
                .with("location", loc.clone())
                .with("resource_group_name", rg.clone())
                .with("type", "Vnet2Vnet")
                .with(
                    "virtual_network_gateway_id",
                    Value::r("azurerm_virtual_network_gateway", a, "id"),
                )
                .with(
                    "peer_virtual_network_gateway_id",
                    Value::r("azurerm_virtual_network_gateway", b, "id"),
                )
                .with("shared_key", "xyz789!"),
        );
    }
}

fn hub_spoke(ctx: &mut Ctx) {
    let rg = ctx.rg_ref();
    let (hub, hub_cidr) = vnet(ctx);
    subnet(ctx, &hub, &hub_cidr, 1);
    let spokes = ctx.rng.gen_range(1..=2);
    for _ in 0..spokes {
        let (spoke, spoke_cidr) = vnet(ctx);
        let s = subnet(ctx, &spoke, &spoke_cidr, 1);
        if ctx.rng.gen_bool(0.5) {
            let n = nic(ctx, &s, None);
            vm(ctx, &[n], VmOpts::default());
        }
        for (from, to) in [(&hub, &spoke), (&spoke, &hub)] {
            let p = ctx.fresh("peer");
            let p_cloud = ctx.cloud_name("peer");
            ctx.add(
                Resource::new("azurerm_virtual_network_peering", p)
                    .with("name", p_cloud)
                    .with("resource_group_name", rg.clone())
                    .with(
                        "virtual_network_name",
                        Value::r("azurerm_virtual_network", from, "name"),
                    )
                    .with(
                        "remote_virtual_network_id",
                        Value::r("azurerm_virtual_network", to, "id"),
                    )
                    .with("allow_forwarded_traffic", true),
            );
        }
    }
}

fn appgw_web(ctx: &mut Ctx) {
    let rg = ctx.rg_ref();
    let (v, cidr) = vnet(ctx);
    let gw_subnet = subnet(ctx, &v, &cidr, 0);
    let backend_subnet = subnet(ctx, &v, &cidr, 1);
    let pip = public_ip(ctx, true);
    let appgw_local = ctx.fresh("appgw");
    let appgw_cloud = ctx.cloud_name("appgw");
    let loc = ctx.location.clone();
    let v2 = ctx.rng.gen_bool(0.7);
    let (sku_name, sku_tier) = if v2 {
        ("Standard_v2", "Standard_v2")
    } else {
        ("Standard_Small", "Standard")
    };
    let mut rule = vec![
        ("name", Value::s("routing-rule")),
        ("rule_type", Value::s("Basic")),
    ];
    if v2 {
        rule.push(("priority", Value::Int(100)));
    }
    ctx.add(
        Resource::new("azurerm_application_gateway", appgw_local.clone())
            .with("name", appgw_cloud)
            .with("location", loc)
            .with("resource_group_name", rg)
            .with(
                "sku",
                map(vec![
                    ("name", Value::s(sku_name)),
                    ("tier", Value::s(sku_tier)),
                    ("capacity", Value::Int(2)),
                ]),
            )
            .with(
                "gateway_ip_configuration",
                map(vec![
                    ("name", Value::s("gwip")),
                    ("subnet_id", Value::r("azurerm_subnet", &gw_subnet, "id")),
                ]),
            )
            .with(
                "frontend_ip_configuration",
                map(vec![
                    ("name", Value::s("frontend")),
                    (
                        "public_ip_address_id",
                        Value::r("azurerm_public_ip", &pip, "id"),
                    ),
                ]),
            )
            .with(
                "backend_address_pool",
                map(vec![("name", Value::s("backend-pool"))]),
            )
            .with("request_routing_rule", map(rule)),
    );
    // Backend NICs go to the *other* subnet (the appgw subnet is exclusive).
    for _ in 0..ctx.rng.gen_range(1..=2) {
        let n = nic(ctx, &backend_subnet, None);
        vm(ctx, std::slice::from_ref(&n), VmOpts::default());
        let assoc = ctx.fresh("agwassoc");
        ctx.add(
            Resource::new(
                "azurerm_network_interface_application_gateway_backend_address_pool_association",
                assoc,
            )
            .with(
                "network_interface_id",
                Value::r("azurerm_network_interface", &n, "id"),
            )
            .with(
                "backend_address_pool_id",
                Value::r(
                    "azurerm_application_gateway",
                    &appgw_local,
                    "backend_address_pool_id",
                ),
            )
            .with("ip_configuration_name", "internal"),
        );
    }
}

fn firewall_hub(ctx: &mut Ctx) {
    let rg = ctx.rg_ref();
    let (v, cidr) = vnet(ctx);
    let octets: Vec<&str> = cidr.split('.').collect();
    let fw_subnet_cidr = format!("10.{}.254.0/26", octets[1]);
    let fw_subnet = named_subnet(ctx, &v, &fw_subnet_cidr, Some("AzureFirewallSubnet"));
    let workload_subnet = subnet(ctx, &v, &cidr, 1);
    let pip = public_ip(ctx, true);
    let fw_local = ctx.fresh("fw");
    let fw_cloud = ctx.cloud_name("firewall");
    let loc = ctx.location.clone();
    ctx.add(
        Resource::new("azurerm_firewall", fw_local)
            .with("name", fw_cloud)
            .with("location", loc.clone())
            .with("resource_group_name", rg.clone())
            .with("sku_name", "AZFW_VNet")
            .with("sku_tier", "Standard")
            .with(
                "ip_configuration",
                map(vec![
                    ("name", Value::s("fwipcfg")),
                    ("subnet_id", Value::r("azurerm_subnet", &fw_subnet, "id")),
                    (
                        "public_ip_address_id",
                        Value::r("azurerm_public_ip", &pip, "id"),
                    ),
                ]),
            ),
    );
    // Route workload traffic through the firewall.
    let rt_local = ctx.fresh("rt");
    let rt_cloud = ctx.cloud_name("rt");
    ctx.add(
        Resource::new("azurerm_route_table", rt_local.clone())
            .with("name", rt_cloud)
            .with("location", loc)
            .with("resource_group_name", rg.clone()),
    );
    let route = ctx.fresh("route");
    let route_cloud = ctx.cloud_name("default-route");
    let fw_ip = format!("10.{}.254.4", octets[1]);
    ctx.add(
        Resource::new("azurerm_route", route)
            .with("name", route_cloud)
            .with("resource_group_name", rg)
            .with(
                "route_table_name",
                Value::r("azurerm_route_table", &rt_local, "name"),
            )
            .with("address_prefix", "0.0.0.0/0")
            .with("next_hop_type", "VirtualAppliance")
            .with("next_hop_in_ip_address", fw_ip),
    );
    let assoc = ctx.fresh("rtassoc");
    ctx.add(
        Resource::new("azurerm_subnet_route_table_association", assoc)
            .with(
                "subnet_id",
                Value::r("azurerm_subnet", &workload_subnet, "id"),
            )
            .with(
                "route_table_id",
                Value::r("azurerm_route_table", &rt_local, "id"),
            ),
    );
}

fn nat_egress(ctx: &mut Ctx) {
    let rg = ctx.rg_ref();
    let (v, cidr) = vnet(ctx);
    let s = subnet(ctx, &v, &cidr, 1);
    let pip = public_ip(ctx, true);
    let nat_local = ctx.fresh("nat");
    let nat_cloud = ctx.cloud_name("natgw");
    let loc = ctx.location.clone();
    ctx.add(
        Resource::new("azurerm_nat_gateway", nat_local.clone())
            .with("name", nat_cloud)
            .with("location", loc)
            .with("resource_group_name", rg),
    );
    let ip_assoc = ctx.fresh("natip");
    ctx.add(
        Resource::new("azurerm_nat_gateway_public_ip_association", ip_assoc)
            .with(
                "nat_gateway_id",
                Value::r("azurerm_nat_gateway", &nat_local, "id"),
            )
            .with(
                "public_ip_address_id",
                Value::r("azurerm_public_ip", &pip, "id"),
            ),
    );
    let sn_assoc = ctx.fresh("natassoc");
    ctx.add(
        Resource::new("azurerm_subnet_nat_gateway_association", sn_assoc)
            .with("subnet_id", Value::r("azurerm_subnet", &s, "id"))
            .with(
                "nat_gateway_id",
                Value::r("azurerm_nat_gateway", &nat_local, "id"),
            ),
    );
}

fn bastion_admin(ctx: &mut Ctx) {
    let rg = ctx.rg_ref();
    let (v, cidr) = vnet(ctx);
    let octets: Vec<&str> = cidr.split('.').collect();
    let b_subnet_cidr = format!("10.{}.253.0/26", octets[1]);
    let b_subnet = named_subnet(ctx, &v, &b_subnet_cidr, Some("AzureBastionSubnet"));
    let workload = subnet(ctx, &v, &cidr, 1);
    let n = nic(ctx, &workload, None);
    vm(ctx, &[n], VmOpts::default());
    let pip = public_ip(ctx, true);
    let b_local = ctx.fresh("bastion");
    let b_cloud = ctx.cloud_name("bastion");
    let loc = ctx.location.clone();
    ctx.add(
        Resource::new("azurerm_bastion_host", b_local)
            .with("name", b_cloud)
            .with("location", loc)
            .with("resource_group_name", rg)
            .with(
                "ip_configuration",
                map(vec![
                    ("name", Value::s("bastion-ipcfg")),
                    ("subnet_id", Value::r("azurerm_subnet", &b_subnet, "id")),
                    (
                        "public_ip_address_id",
                        Value::r("azurerm_public_ip", &pip, "id"),
                    ),
                ]),
            ),
    );
}

fn spot_batch(ctx: &mut Ctx) {
    let (v, cidr) = vnet(ctx);
    let s = subnet(ctx, &v, &cidr, 1);
    for _ in 0..ctx.rng.gen_range(1..=3) {
        let n = nic(ctx, &s, None);
        vm(
            ctx,
            &[n],
            VmOpts {
                spot: true,
                ..Default::default()
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_motifs_build() {
        for i in 0..MOTIF_WEIGHTS.len() {
            let mut ctx = Ctx::new(42 + i as u64, i);
            sample(&mut ctx);
            let p = ctx.finish();
            assert!(!p.is_empty());
        }
    }
}
