//! Misconfiguration injection.
//!
//! Each injector mutates a generated program so that it violates exactly one
//! ground-truth rule, modelling the buggy repositories Zodiac finds in the
//! wild (§5.5) and giving the statistical filters counter-examples to chew
//! on. Injection is best-effort: an injector that finds no applicable
//! resource returns `false` and the next one is tried.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use zodiac_model::{AttrPath, Program, Value};

/// The names of all noise kinds, for reporting.
pub const NOISE_KINDS: &[&str] = &[
    "vm-nic-location-mismatch",
    "subnet-outside-vnet",
    "sibling-subnet-overlap",
    "premium-gzrs",
    "spot-without-eviction",
    "standard-ip-dynamic",
    "appgw-basic-ip",
    "gw-wrong-subnet-name",
    "nic-in-gateway-subnet",
    "basic-gw-active-active",
    "os-data-disk-name-clash",
    "missing-address-space",
    "invalid-enum-typo",
    "peering-cidr-overlap",
    "tunnel-vpc-overlap",
    "v2-rule-no-priority",
];

/// Injects one applicable misconfiguration, returning its kind.
pub fn inject(rng: &mut StdRng, program: &mut Program) -> Option<&'static str> {
    let mut order: Vec<&'static str> = NOISE_KINDS.to_vec();
    order.shuffle(rng);
    order
        .into_iter()
        .find(|kind| inject_kind(rng, program, kind))
}

/// Applies a *specific* injector, returning whether it took effect.
pub fn inject_kind(rng: &mut StdRng, program: &mut Program, kind: &str) -> bool {
    {
        match kind {
            "vm-nic-location-mismatch" => vm_nic_location(rng, program),
            "subnet-outside-vnet" => subnet_outside_vnet(program),
            "sibling-subnet-overlap" => sibling_overlap(program),
            "premium-gzrs" => premium_gzrs(program),
            "spot-without-eviction" => spot_without_eviction(program),
            "standard-ip-dynamic" => standard_ip_dynamic(program),
            "appgw-basic-ip" => appgw_basic_ip(program),
            "gw-wrong-subnet-name" => gw_wrong_subnet(program),
            "nic-in-gateway-subnet" => nic_in_gateway_subnet(program),
            "basic-gw-active-active" => basic_gw_active_active(program),
            "os-data-disk-name-clash" => disk_name_clash(program),
            "missing-address-space" => missing_address_space(program),
            "invalid-enum-typo" => invalid_enum(program),
            "peering-cidr-overlap" => peering_overlap(program),
            "tunnel-vpc-overlap" => tunnel_overlap(program),
            "v2-rule-no-priority" => v2_no_priority(program),
            _ => false,
        }
    }
}

fn first_of<'a>(program: &'a mut Program, rtype: &str) -> Option<&'a mut zodiac_model::Resource> {
    program
        .resources_mut()
        .iter_mut()
        .find(|r| r.rtype == rtype)
}

fn vm_nic_location(rng: &mut StdRng, program: &mut Program) -> bool {
    // Move a NIC referenced by a VM to a different region.
    let nic_name = program
        .of_type("azurerm_linux_virtual_machine")
        .flat_map(|vm| vm.references())
        .find(|(_, r)| r.rtype == "azurerm_network_interface")
        .map(|(_, r)| r.name.clone());
    let Some(nic_name) = nic_name else {
        return false;
    };
    let Some(nic) = program.find_mut(&zodiac_model::ResourceId::new(
        "azurerm_network_interface",
        &nic_name,
    )) else {
        return false;
    };
    let current = nic
        .get_attr("location")
        .and_then(Value::as_str)
        .unwrap_or_default()
        .to_string();
    let other: Vec<&str> = ["westus", "northeurope", "japaneast"]
        .into_iter()
        .filter(|l| *l != current)
        .collect();
    let pick = other[rng.gen_range(0..other.len())];
    nic.attrs.insert("location".into(), Value::s(pick));
    true
}

fn subnet_outside_vnet(program: &mut Program) -> bool {
    let Some(subnet) = program.resources_mut().iter_mut().find(|r| {
        r.rtype == "azurerm_subnet"
            && r.get_attr("name").and_then(Value::as_str) != Some("GatewaySubnet")
    }) else {
        return false;
    };
    subnet.attrs.insert(
        "address_prefixes".into(),
        Value::List(vec![Value::s("192.168.77.0/24")]),
    );
    true
}

fn sibling_overlap(program: &mut Program) -> bool {
    // Find two subnets of the same VNet and give the second the first's CIDR.
    let mut by_vnet: Vec<(String, usize)> = Vec::new();
    for (i, r) in program.resources().iter().enumerate() {
        if r.rtype != "azurerm_subnet" {
            continue;
        }
        let Some(vn) = r
            .references()
            .into_iter()
            .find(|(_, rf)| rf.rtype == "azurerm_virtual_network")
        else {
            continue;
        };
        by_vnet.push((vn.1.name.clone(), i));
    }
    for w in by_vnet.windows(2) {
        if w[0].0 == w[1].0 {
            let prefix = program.resources()[w[0].1]
                .get_attr("address_prefixes")
                .cloned();
            if let Some(p) = prefix {
                program.resources_mut()[w[1].1]
                    .attrs
                    .insert("address_prefixes".into(), p);
                return true;
            }
        }
    }
    false
}

fn premium_gzrs(program: &mut Program) -> bool {
    let Some(sa) = first_of(program, "azurerm_storage_account") else {
        return false;
    };
    sa.attrs.insert("account_tier".into(), Value::s("Premium"));
    sa.attrs
        .insert("account_replication_type".into(), Value::s("GZRS"));
    true
}

fn spot_without_eviction(program: &mut Program) -> bool {
    let Some(vm) = first_of(program, "azurerm_linux_virtual_machine") else {
        return false;
    };
    vm.attrs.insert("priority".into(), Value::s("Spot"));
    vm.attrs.remove("eviction_policy");
    true
}

fn standard_ip_dynamic(program: &mut Program) -> bool {
    let Some(ip) = program.resources_mut().iter_mut().find(|r| {
        r.rtype == "azurerm_public_ip"
            && r.get_attr("sku").and_then(Value::as_str) != Some("Standard")
    }) else {
        return false;
    };
    ip.attrs.insert("sku".into(), Value::s("Standard"));
    ip.attrs
        .insert("allocation_method".into(), Value::s("Dynamic"));
    true
}

fn appgw_basic_ip(program: &mut Program) -> bool {
    // The documentation-example bug (§5.5): the APPGW frontend IP demoted to
    // Basic/Dynamic.
    let ip_name = program
        .of_type("azurerm_application_gateway")
        .flat_map(|g| g.references())
        .find(|(path, r)| r.rtype == "azurerm_public_ip" && path.to_string().contains("frontend"))
        .map(|(_, r)| r.name.clone());
    let Some(ip_name) = ip_name else { return false };
    let Some(ip) = program.find_mut(&zodiac_model::ResourceId::new(
        "azurerm_public_ip",
        &ip_name,
    )) else {
        return false;
    };
    ip.attrs.insert("sku".into(), Value::s("Basic"));
    ip.attrs
        .insert("allocation_method".into(), Value::s("Dynamic"));
    true
}

fn gw_wrong_subnet(program: &mut Program) -> bool {
    // Rename the GatewaySubnet used by a gateway to an ordinary name.
    let has_gw = program.of_type("azurerm_virtual_network_gateway").count() > 0;
    if !has_gw {
        return false;
    }
    let Some(subnet) = program.resources_mut().iter_mut().find(|r| {
        r.rtype == "azurerm_subnet"
            && r.get_attr("name").and_then(Value::as_str) == Some("GatewaySubnet")
    }) else {
        return false;
    };
    subnet.attrs.insert("name".into(), Value::s("gateway-snet"));
    true
}

fn nic_in_gateway_subnet(program: &mut Program) -> bool {
    // Point an existing NIC into the GatewaySubnet.
    let gw_subnet = program
        .resources()
        .iter()
        .find(|r| {
            r.rtype == "azurerm_subnet"
                && r.get_attr("name").and_then(Value::as_str) == Some("GatewaySubnet")
        })
        .map(|r| r.name.clone());
    let Some(gw_subnet) = gw_subnet else {
        return false;
    };
    let Some(nic) = first_of(program, "azurerm_network_interface") else {
        return false;
    };
    let Ok(path) = "ip_configuration.subnet_id".parse::<AttrPath>() else {
        return false;
    };
    nic.set(&path, Value::r("azurerm_subnet", &gw_subnet, "id"));
    true
}

fn basic_gw_active_active(program: &mut Program) -> bool {
    let Some(gw) = first_of(program, "azurerm_virtual_network_gateway") else {
        return false;
    };
    gw.attrs.insert("sku".into(), Value::s("Basic"));
    gw.attrs.insert("active_active".into(), Value::Bool(true));
    true
}

fn disk_name_clash(program: &mut Program) -> bool {
    // Give a data disk the same name as its VM's os_disk.
    let vm_and_disk = program
        .of_type("azurerm_virtual_machine_data_disk_attachment")
        .find_map(|a| {
            let vm = a
                .references()
                .into_iter()
                .find(|(_, r)| r.rtype == "azurerm_linux_virtual_machine")?;
            let disk = a
                .references()
                .into_iter()
                .find(|(_, r)| r.rtype == "azurerm_managed_disk")?;
            Some((vm.1.name.clone(), disk.1.name.clone()))
        });
    let Some((vm_name, disk_name)) = vm_and_disk else {
        return false;
    };
    let os_name = program
        .find(&zodiac_model::ResourceId::new(
            "azurerm_linux_virtual_machine",
            &vm_name,
        ))
        .and_then(|vm| {
            let path: AttrPath = "os_disk.name".parse().ok()?;
            vm.get(&path).cloned()
        });
    let Some(os_name) = os_name else { return false };
    let Some(disk) = program.find_mut(&zodiac_model::ResourceId::new(
        "azurerm_managed_disk",
        &disk_name,
    )) else {
        return false;
    };
    disk.attrs.insert("name".into(), os_name);
    true
}

fn missing_address_space(program: &mut Program) -> bool {
    let Some(vnet) = first_of(program, "azurerm_virtual_network") else {
        return false;
    };
    vnet.attrs.remove("address_space").is_some()
}

fn invalid_enum(program: &mut Program) -> bool {
    let Some(ip) = first_of(program, "azurerm_public_ip") else {
        return false;
    };
    ip.attrs
        .insert("allocation_method".into(), Value::s("dynamic"));
    true
}

fn peering_overlap(program: &mut Program) -> bool {
    // Make two peered VNets share an address space (moving the remote VNet's
    // subnets along, so the only violation is the peering itself).
    let peering = program
        .of_type("azurerm_virtual_network_peering")
        .find_map(|p| {
            let refs = p.references();
            let local = refs
                .iter()
                .find(|(path, _)| path.to_string() == "virtual_network_name")?
                .1
                .name
                .clone();
            let remote = refs
                .iter()
                .find(|(path, _)| path.to_string() == "remote_virtual_network_id")?
                .1
                .name
                .clone();
            Some((local, remote))
        });
    let Some((local, remote)) = peering else {
        return false;
    };
    move_vnet_onto(program, &remote, &local)
}

fn tunnel_overlap(program: &mut Program) -> bool {
    // Give the two VNets behind a Vnet2Vnet tunnel overlapping spaces. The
    // tunnel deploys last (gateways are slow), so everything else lands
    // first — the worst-case blast radius the paper's §5.1 example walks
    // through.
    let gws: Vec<String> = program
        .of_type("azurerm_virtual_network_gateway_connection")
        .filter(|t| t.get_attr("type").and_then(Value::as_str) == Some("Vnet2Vnet"))
        .flat_map(|t| t.references())
        .filter(|(_, r)| r.rtype == "azurerm_virtual_network_gateway")
        .map(|(_, r)| r.name.clone())
        .collect();
    if gws.len() < 2 {
        return false;
    }
    // Resolve each gateway's VNet through its GatewaySubnet.
    let vnet_of = |program: &Program, gw: &str| -> Option<String> {
        let gw_res = program.find(&zodiac_model::ResourceId::new(
            "azurerm_virtual_network_gateway",
            gw,
        ))?;
        let subnet = gw_res
            .references()
            .into_iter()
            .find(|(_, r)| r.rtype == "azurerm_subnet")?
            .1
            .name;
        let subnet_res = program.find(&zodiac_model::ResourceId::new("azurerm_subnet", &subnet))?;
        Some(
            subnet_res
                .references()
                .into_iter()
                .find(|(_, r)| r.rtype == "azurerm_virtual_network")?
                .1
                .name,
        )
    };
    let (Some(v1), Some(v2)) = (vnet_of(program, &gws[0]), vnet_of(program, &gws[1])) else {
        return false;
    };
    if v1 == v2 {
        return false;
    }
    move_vnet_onto(program, &v2, &v1)
}

/// Rewrites `vnet`'s address space to equal `onto`'s, relocating every
/// subnet of `vnet` into the new space (same third/fourth octet layout).
fn move_vnet_onto(program: &mut Program, vnet: &str, onto: &str) -> bool {
    let space = program
        .find(&zodiac_model::ResourceId::new(
            "azurerm_virtual_network",
            onto,
        ))
        .and_then(|v| v.get_attr("address_space").cloned());
    let Some(space) = space else { return false };
    let new_octet = space
        .as_list()
        .and_then(|l| l.first())
        .and_then(Value::as_str)
        .and_then(|s| s.split('.').nth(1).map(str::to_string));
    let Some(new_octet) = new_octet else {
        return false;
    };
    let Some(vnet_res) = program.find_mut(&zodiac_model::ResourceId::new(
        "azurerm_virtual_network",
        vnet,
    )) else {
        return false;
    };
    vnet_res.attrs.insert("address_space".into(), space);
    // Relocate the VNet's subnets.
    let subnet_names: Vec<String> = program
        .of_type("azurerm_subnet")
        .filter(|s| {
            s.references()
                .iter()
                .any(|(_, r)| r.rtype == "azurerm_virtual_network" && r.name == vnet)
        })
        .map(|s| s.name.clone())
        .collect();
    for name in subnet_names {
        let Some(subnet) =
            program.find_mut(&zodiac_model::ResourceId::new("azurerm_subnet", &name))
        else {
            continue;
        };
        let Some(Value::List(prefixes)) = subnet.attrs.get("address_prefixes").cloned() else {
            continue;
        };
        let moved: Vec<Value> = prefixes
            .iter()
            .map(|p| match p.as_str() {
                Some(cidr) => {
                    let parts: Vec<&str> = cidr.split('.').collect();
                    if parts.len() == 4 {
                        Value::s(format!(
                            "{}.{}.{}.{}",
                            parts[0], new_octet, parts[2], parts[3]
                        ))
                    } else {
                        p.clone()
                    }
                }
                None => p.clone(),
            })
            .collect();
        subnet
            .attrs
            .insert("address_prefixes".into(), Value::List(moved));
    }
    true
}

fn v2_no_priority(program: &mut Program) -> bool {
    let Some(appgw) = program.resources_mut().iter_mut().find(|r| {
        r.rtype == "azurerm_application_gateway"
            && "sku.name"
                .parse::<AttrPath>()
                .ok()
                .and_then(|path| r.get(&path))
                .and_then(Value::as_str)
                == Some("Standard_v2")
    }) else {
        return false;
    };
    let Some(Value::Map(rule)) = appgw.attrs.get_mut("request_routing_rule") else {
        return false;
    };
    rule.remove("priority").is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn injectors_apply_when_possible() {
        // Build a program with a VM+NIC and verify location noise applies.
        let mut p = Program::new()
            .with(
                zodiac_model::Resource::new("azurerm_network_interface", "nic")
                    .with("location", "eastus"),
            )
            .with(
                zodiac_model::Resource::new("azurerm_linux_virtual_machine", "vm")
                    .with("location", "eastus")
                    .with(
                        "network_interface_ids",
                        Value::List(vec![Value::r("azurerm_network_interface", "nic", "id")]),
                    ),
            );
        let mut rng = StdRng::seed_from_u64(1);
        assert!(vm_nic_location(&mut rng, &mut p));
        let nic = p
            .find(&zodiac_model::ResourceId::new(
                "azurerm_network_interface",
                "nic",
            ))
            .unwrap();
        assert_ne!(nic.get_attr("location"), Some(&Value::s("eastus")));
    }

    #[test]
    fn injectors_fail_gracefully() {
        let mut p = Program::new();
        assert!(!premium_gzrs(&mut p));
        assert!(!spot_without_eviction(&mut p));
        assert!(!gw_wrong_subnet(&mut p));
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(inject(&mut rng, &mut p), None);
    }
}
