//! Property-based tests: the branch-and-bound solver agrees with brute-force
//! enumeration on satisfiability and optimal penalty.

use proptest::prelude::*;
use zodiac_model::Value;
use zodiac_solver::{solve, Constraint, Op, Problem, Term};

fn arb_term(nvars: usize) -> impl Strategy<Value = Term> {
    prop_oneof![
        (0..nvars).prop_map(Term::Var),
        (0i64..4).prop_map(|n| Term::Const(Value::Int(n))),
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Eq),
        Just(Op::Ne),
        Just(Op::Le),
        Just(Op::Ge),
        Just(Op::Lt),
        Just(Op::Gt),
    ]
}

fn arb_constraint(nvars: usize, depth: u32) -> BoxedStrategy<Constraint> {
    let leaf = (arb_op(), arb_term(nvars), arb_term(nvars))
        .prop_map(|(op, lhs, rhs)| Constraint::Cmp { op, lhs, rhs });
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = arb_constraint(nvars, depth - 1);
    prop_oneof![
        3 => leaf,
        1 => sub.clone().prop_map(|c| Constraint::Not(Box::new(c))),
        1 => prop::collection::vec(arb_constraint(nvars, depth - 1), 1..3).prop_map(Constraint::And),
        1 => prop::collection::vec(arb_constraint(nvars, depth - 1), 1..3).prop_map(Constraint::Or),
        1 => (prop::collection::vec(0..nvars, 1..3), -2i64..3, arb_op(), 0i64..4).prop_map(
            |(vars, offset, op, bound)| Constraint::Linear { vars, offset, op, bound }
        ),
    ]
    .boxed()
}

/// Brute-force: enumerate every assignment, return (any SAT, best penalty).
fn brute_force(
    domains: &[Vec<Value>],
    hard: &[Constraint],
    soft: &[(Constraint, u64)],
) -> Option<u64> {
    let mut best: Option<u64> = None;
    let mut idx = vec![0usize; domains.len()];
    loop {
        let assignment: Vec<Option<Value>> = idx
            .iter()
            .zip(domains)
            .map(|(&i, d)| Some(d[i].clone()))
            .collect();
        if hard.iter().all(|c| c.eval(&assignment) == Some(true)) {
            let penalty: u64 = soft
                .iter()
                .filter(|(c, _)| c.eval(&assignment) != Some(true))
                .map(|(_, w)| *w)
                .sum();
            best = Some(best.map_or(penalty, |b: u64| b.min(penalty)));
        }
        // Increment the multi-index.
        let mut k = 0;
        loop {
            if k == domains.len() {
                return best;
            }
            idx[k] += 1;
            if idx[k] < domains[k].len() {
                break;
            }
            idx[k] = 0;
            k += 1;
        }
    }
}

/// Linear vars must range over booleans for the Linear constraint to make
/// sense, so every variable's domain mixes ints and the booleans it needs.
fn arb_problem() -> impl Strategy<Value = (Vec<Vec<Value>>, Vec<Constraint>, Vec<(Constraint, u64)>)>
{
    (2usize..=4).prop_flat_map(|nvars| {
        let domain = prop::collection::vec(
            prop_oneof![
                (0i64..4).prop_map(Value::Int),
                any::<bool>().prop_map(Value::Bool),
            ],
            1..4,
        )
        .prop_map(|mut d| {
            d.dedup();
            d
        });
        (
            prop::collection::vec(domain, nvars..=nvars),
            prop::collection::vec(arb_constraint(nvars, 1), 0..4),
            prop::collection::vec((arb_constraint(nvars, 1), 1u64..5), 0..4),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn agrees_with_brute_force((domains, hard, soft) in arb_problem()) {
        let mut p = Problem::new();
        for d in &domains {
            p.add_var(d.clone());
        }
        for c in &hard {
            p.require(c.clone());
        }
        for (c, w) in &soft {
            p.prefer(c.clone(), *w);
        }
        let expected = brute_force(&domains, &hard, &soft);
        let got = solve(&p);
        match (expected, got.solution()) {
            (None, None) => {}
            (Some(best), Some(sol)) => {
                prop_assert_eq!(sol.penalty, best, "suboptimal penalty");
                // The returned assignment actually satisfies the hard set.
                let assignment: Vec<Option<Value>> =
                    sol.assignment.iter().cloned().map(Some).collect();
                for c in &hard {
                    prop_assert_eq!(c.eval(&assignment), Some(true));
                }
                // And the reported violated set matches reality.
                let actual_penalty: u64 = soft
                    .iter()
                    .enumerate()
                    .filter(|(_, (c, _))| c.eval(&assignment) != Some(true))
                    .map(|(_, (_, w))| *w)
                    .sum();
                prop_assert_eq!(actual_penalty, sol.penalty);
            }
            (None, Some(sol)) => {
                prop_assert!(false, "solver returned SAT {sol:?} on an UNSAT problem");
            }
            (Some(best), None) => {
                prop_assert!(false, "solver returned UNSAT but penalty {best} is achievable");
            }
        }
    }
}
