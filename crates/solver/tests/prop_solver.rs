//! Property-based tests: the branch-and-bound solver agrees with brute-force
//! enumeration on satisfiability and optimal penalty. Random problems come
//! from a seeded RNG so every run replays the same sample.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zodiac_model::Value;
use zodiac_solver::{solve, Constraint, Op, Problem, Term};

fn arb_term(rng: &mut StdRng, nvars: usize) -> Term {
    if rng.gen_bool(0.5) {
        Term::Var(rng.gen_range(0..nvars))
    } else {
        Term::Const(Value::Int(rng.gen_range(0..4i64)))
    }
}

fn arb_op(rng: &mut StdRng) -> Op {
    match rng.gen_range(0..6u8) {
        0 => Op::Eq,
        1 => Op::Ne,
        2 => Op::Le,
        3 => Op::Ge,
        4 => Op::Lt,
        _ => Op::Gt,
    }
}

fn leaf(rng: &mut StdRng, nvars: usize) -> Constraint {
    Constraint::Cmp {
        op: arb_op(rng),
        lhs: arb_term(rng, nvars),
        rhs: arb_term(rng, nvars),
    }
}

fn arb_constraint(rng: &mut StdRng, nvars: usize, depth: u32) -> Constraint {
    if depth == 0 {
        return leaf(rng, nvars);
    }
    // Weights mirror the original strategy: leaves three times as likely as
    // each compound form.
    match rng.gen_range(0..7u8) {
        0..=2 => leaf(rng, nvars),
        3 => Constraint::Not(Box::new(arb_constraint(rng, nvars, depth - 1))),
        4 => Constraint::And(
            (0..rng.gen_range(1..3usize))
                .map(|_| arb_constraint(rng, nvars, depth - 1))
                .collect(),
        ),
        5 => Constraint::Or(
            (0..rng.gen_range(1..3usize))
                .map(|_| arb_constraint(rng, nvars, depth - 1))
                .collect(),
        ),
        _ => Constraint::Linear {
            vars: (0..rng.gen_range(1..3usize))
                .map(|_| rng.gen_range(0..nvars))
                .collect(),
            offset: rng.gen_range(-2..3i64),
            op: arb_op(rng),
            bound: rng.gen_range(0..4i64),
        },
    }
}

/// Brute-force: enumerate every assignment, return (any SAT, best penalty).
fn brute_force(
    domains: &[Vec<Value>],
    hard: &[Constraint],
    soft: &[(Constraint, u64)],
) -> Option<u64> {
    let mut best: Option<u64> = None;
    let mut idx = vec![0usize; domains.len()];
    loop {
        let assignment: Vec<Option<Value>> = idx
            .iter()
            .zip(domains)
            .map(|(&i, d)| Some(d[i].clone()))
            .collect();
        if hard.iter().all(|c| c.eval(&assignment) == Some(true)) {
            let penalty: u64 = soft
                .iter()
                .filter(|(c, _)| c.eval(&assignment) != Some(true))
                .map(|(_, w)| *w)
                .sum();
            best = Some(best.map_or(penalty, |b: u64| b.min(penalty)));
        }
        // Increment the multi-index.
        let mut k = 0;
        loop {
            if k == domains.len() {
                return best;
            }
            idx[k] += 1;
            if idx[k] < domains[k].len() {
                break;
            }
            idx[k] = 0;
            k += 1;
        }
    }
}

/// Linear vars must range over booleans for the Linear constraint to make
/// sense, so every variable's domain mixes ints and the booleans it needs.
#[allow(clippy::type_complexity)]
fn arb_problem(rng: &mut StdRng) -> (Vec<Vec<Value>>, Vec<Constraint>, Vec<(Constraint, u64)>) {
    let nvars = rng.gen_range(2..=4usize);
    let mut domains = Vec::with_capacity(nvars);
    for _ in 0..nvars {
        let mut d: Vec<Value> = (0..rng.gen_range(1..4usize))
            .map(|_| {
                if rng.gen_bool(0.5) {
                    Value::Int(rng.gen_range(0..4i64))
                } else {
                    Value::Bool(rng.gen_bool(0.5))
                }
            })
            .collect();
        d.dedup();
        domains.push(d);
    }
    let hard = (0..rng.gen_range(0..4usize))
        .map(|_| arb_constraint(rng, nvars, 1))
        .collect();
    let soft = (0..rng.gen_range(0..4usize))
        .map(|_| (arb_constraint(rng, nvars, 1), rng.gen_range(1..5u64)))
        .collect();
    (domains, hard, soft)
}

#[test]
fn agrees_with_brute_force() {
    let mut rng = StdRng::seed_from_u64(0x501_4E12);
    for case in 0..256 {
        let (domains, hard, soft) = arb_problem(&mut rng);
        let mut p = Problem::new();
        for d in &domains {
            p.add_var(d.clone());
        }
        for c in &hard {
            p.require(c.clone());
        }
        for (c, w) in &soft {
            p.prefer(c.clone(), *w);
        }
        let expected = brute_force(&domains, &hard, &soft);
        let got = solve(&p);
        match (expected, got.solution()) {
            (None, None) => {}
            (Some(best), Some(sol)) => {
                assert_eq!(sol.penalty, best, "case {case}: suboptimal penalty");
                // The returned assignment actually satisfies the hard set.
                let assignment: Vec<Option<Value>> =
                    sol.assignment.iter().cloned().map(Some).collect();
                for c in &hard {
                    assert_eq!(c.eval(&assignment), Some(true), "case {case}");
                }
                // And the reported violated set matches reality.
                let actual_penalty: u64 = soft
                    .iter()
                    .filter(|(c, _)| c.eval(&assignment) != Some(true))
                    .map(|(_, w)| *w)
                    .sum();
                assert_eq!(actual_penalty, sol.penalty, "case {case}");
            }
            (None, Some(sol)) => {
                panic!("case {case}: solver returned SAT {sol:?} on an UNSAT problem");
            }
            (Some(best), None) => {
                panic!("case {case}: solver returned UNSAT but penalty {best} is achievable");
            }
        }
    }
}
