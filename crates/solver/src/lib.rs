//! A finite-domain constraint solver with weighted soft constraints.
//!
//! Zodiac's solver-aided mutation (§4.1) encodes a positive test case with
//! symbolic attribute values and asks a solver for a concrete assignment
//! that violates the target check, conforms to every other known check, and
//! *minimises the distance* from the original program. The paper uses Z3
//! with MaxSMT optimisation objectives; this crate implements the same
//! contract over the (finite) mutation search space:
//!
//! * variables range over explicit candidate-value domains (enum members,
//!   locations, adjacent CIDR ranges, candidate endpoints, booleans);
//! * **hard** constraints must hold — if they cannot, the problem is UNSAT
//!   (the signal the validation scheduler uses to classify checks);
//! * **soft** constraints carry weights; the solver branch-and-bounds to an
//!   assignment of minimum total violated weight, which encodes both
//!   "prefer original values" and "prefer violating no `R_c` check".
//!
//! The search is exact for the sizes mutation produces (tens of variables,
//! small domains); a node budget bounds pathological cases, returning the
//! best solution found so far (and never spuriously reporting UNSAT: the
//! budget only kicks in after a first solution exists).
//!
//! # Incremental re-solving
//!
//! Mutation encodings for the same candidate differ between scheduler
//! iterations only in the soft-constraint set (demoted checks drop out,
//! weights shift) while variables and hard constraints stay put. The delta
//! API exploits this: [`Problem::delta_from`] classifies how a problem
//! differs from a previously solved one, [`Problem::seed_bound`] turns the
//! previous model into a feasible penalty upper bound for the new problem,
//! and [`solve_with_bound`] uses that bound for strictly-better pruning —
//! returning a result *identical* to a cold [`solve`], just faster.

mod constraint;
mod search;

pub use constraint::{Constraint, Op, Term};
pub use search::{solve, solve_with_bound, Outcome, Solution};

use zodiac_model::Value;

/// Index of a solver variable.
pub type VarId = usize;

/// A constraint problem over finite-domain variables.
#[derive(Debug, Clone, Default)]
pub struct Problem {
    domains: Vec<Vec<Value>>,
    hard: Vec<Constraint>,
    soft: Vec<(Constraint, u64)>,
    node_budget: Option<u64>,
}

impl Problem {
    /// Creates an empty problem.
    pub fn new() -> Self {
        Problem::default()
    }

    /// Adds a variable with a candidate domain, ordered by preference
    /// (the search tries earlier values first). Empty domains make the
    /// problem trivially UNSAT.
    pub fn add_var(&mut self, domain: Vec<Value>) -> VarId {
        self.domains.push(domain);
        self.domains.len() - 1
    }

    /// Adds a boolean variable (preferring `false`).
    pub fn add_bool(&mut self) -> VarId {
        self.add_var(vec![Value::Bool(false), Value::Bool(true)])
    }

    /// Adds a hard constraint.
    pub fn require(&mut self, c: Constraint) {
        self.hard.push(c);
    }

    /// Adds a soft constraint with a violation weight.
    pub fn prefer(&mut self, c: Constraint, weight: u64) {
        self.soft.push((c, weight));
    }

    /// Caps the number of search nodes explored after the first solution.
    pub fn set_node_budget(&mut self, budget: u64) {
        self.node_budget = Some(budget);
    }

    /// The variable domains.
    pub fn domains(&self) -> &[Vec<Value>] {
        &self.domains
    }

    /// The hard constraints.
    pub fn hard(&self) -> &[Constraint] {
        &self.hard
    }

    /// The soft constraints.
    pub fn soft(&self) -> &[(Constraint, u64)] {
        &self.soft
    }

    pub(crate) fn budget(&self) -> u64 {
        self.node_budget.unwrap_or(2_000_000)
    }

    /// Classifies how this problem differs from a previously solved one.
    ///
    /// `Identical` means the old model *is* this problem's answer;
    /// `Compatible` means the variables are the same, so the old model can
    /// seed a penalty bound via [`seed_bound`](Problem::seed_bound) when it
    /// is still feasible; `Incompatible` means no reuse is possible.
    pub fn delta_from(&self, prev: &Problem) -> Delta {
        if self.domains != prev.domains {
            return Delta::Incompatible;
        }
        if self.hard == prev.hard && self.soft == prev.soft {
            Delta::Identical
        } else {
            Delta::Compatible
        }
    }

    /// Validates a previous model against this problem and, when it still
    /// satisfies every hard constraint (and every value is in-domain),
    /// returns its total soft penalty — a feasible upper bound suitable for
    /// [`solve_with_bound`]. Returns `None` when the model does not carry
    /// over; solving then falls back to a cold search.
    pub fn seed_bound(&self, assignment: &[Value]) -> Option<u64> {
        if assignment.len() != self.domains.len() {
            return None;
        }
        for (value, domain) in assignment.iter().zip(&self.domains) {
            if !domain.contains(value) {
                return None;
            }
        }
        let full: Vec<Option<Value>> = assignment.iter().cloned().map(Some).collect();
        for c in &self.hard {
            if c.eval(&full) != Some(true) {
                return None;
            }
        }
        let mut penalty = 0u64;
        for (c, w) in &self.soft {
            if c.eval(&full) != Some(true) {
                penalty += w;
            }
        }
        Some(penalty)
    }
}

/// The relationship between two [`Problem`]s, as seen by
/// [`Problem::delta_from`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delta {
    /// Same domains and constraints: a previous solution is still optimal.
    Identical,
    /// Same domains, different constraints: a previous model can seed the
    /// search with a penalty bound if it remains feasible.
    Compatible,
    /// Different variables or domains: nothing carries over.
    Incompatible,
}

#[cfg(test)]
mod delta_tests {
    use super::*;

    fn base() -> Problem {
        let mut p = Problem::new();
        let x = p.add_var(vec![Value::Int(0), Value::Int(1)]);
        p.require(Constraint::ne(Term::Var(x), Term::i(0)));
        p.prefer(Constraint::eq(Term::Var(x), Term::i(0)), 1);
        p
    }

    #[test]
    fn delta_classification() {
        let a = base();
        let b = base();
        assert_eq!(b.delta_from(&a), Delta::Identical);

        let mut c = base();
        c.prefer(Constraint::eq(Term::Var(0), Term::i(1)), 2);
        assert_eq!(c.delta_from(&a), Delta::Compatible);

        let mut d = base();
        d.add_var(vec![Value::Int(9)]);
        assert_eq!(d.delta_from(&a), Delta::Incompatible);
    }

    #[test]
    fn seed_bound_totals_ground_softs() {
        let mut p = Problem::new();
        let x = p.add_var(vec![Value::Int(0), Value::Int(1)]);
        p.prefer(Constraint::False, 5); // Ground, always violated.
        p.prefer(Constraint::eq(Term::Var(x), Term::i(1)), 3);
        assert_eq!(p.seed_bound(&[Value::Int(1)]), Some(5));
        assert_eq!(p.seed_bound(&[Value::Int(0)]), Some(8));
    }
}
