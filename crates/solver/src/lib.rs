//! A finite-domain constraint solver with weighted soft constraints.
//!
//! Zodiac's solver-aided mutation (§4.1) encodes a positive test case with
//! symbolic attribute values and asks a solver for a concrete assignment
//! that violates the target check, conforms to every other known check, and
//! *minimises the distance* from the original program. The paper uses Z3
//! with MaxSMT optimisation objectives; this crate implements the same
//! contract over the (finite) mutation search space:
//!
//! * variables range over explicit candidate-value domains (enum members,
//!   locations, adjacent CIDR ranges, candidate endpoints, booleans);
//! * **hard** constraints must hold — if they cannot, the problem is UNSAT
//!   (the signal the validation scheduler uses to classify checks);
//! * **soft** constraints carry weights; the solver branch-and-bounds to an
//!   assignment of minimum total violated weight, which encodes both
//!   "prefer original values" and "prefer violating no `R_c` check".
//!
//! The search is exact for the sizes mutation produces (tens of variables,
//! small domains); a node budget bounds pathological cases, returning the
//! best solution found so far (and never spuriously reporting UNSAT: the
//! budget only kicks in after a first solution exists).

mod constraint;
mod search;

pub use constraint::{Constraint, Op, Term};
pub use search::{solve, Outcome, Solution};

use zodiac_model::Value;

/// Index of a solver variable.
pub type VarId = usize;

/// A constraint problem over finite-domain variables.
#[derive(Debug, Clone, Default)]
pub struct Problem {
    domains: Vec<Vec<Value>>,
    hard: Vec<Constraint>,
    soft: Vec<(Constraint, u64)>,
    node_budget: Option<u64>,
}

impl Problem {
    /// Creates an empty problem.
    pub fn new() -> Self {
        Problem::default()
    }

    /// Adds a variable with a candidate domain, ordered by preference
    /// (the search tries earlier values first). Empty domains make the
    /// problem trivially UNSAT.
    pub fn add_var(&mut self, domain: Vec<Value>) -> VarId {
        self.domains.push(domain);
        self.domains.len() - 1
    }

    /// Adds a boolean variable (preferring `false`).
    pub fn add_bool(&mut self) -> VarId {
        self.add_var(vec![Value::Bool(false), Value::Bool(true)])
    }

    /// Adds a hard constraint.
    pub fn require(&mut self, c: Constraint) {
        self.hard.push(c);
    }

    /// Adds a soft constraint with a violation weight.
    pub fn prefer(&mut self, c: Constraint, weight: u64) {
        self.soft.push((c, weight));
    }

    /// Caps the number of search nodes explored after the first solution.
    pub fn set_node_budget(&mut self, budget: u64) {
        self.node_budget = Some(budget);
    }

    /// The variable domains.
    pub fn domains(&self) -> &[Vec<Value>] {
        &self.domains
    }

    /// The hard constraints.
    pub fn hard(&self) -> &[Constraint] {
        &self.hard
    }

    /// The soft constraints.
    pub fn soft(&self) -> &[(Constraint, u64)] {
        &self.soft
    }

    pub(crate) fn budget(&self) -> u64 {
        self.node_budget.unwrap_or(2_000_000)
    }
}
