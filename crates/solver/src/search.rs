//! Branch-and-bound search over finite domains.
//!
//! The search maintains per-variable watch lists: when a variable is
//! assigned, only the constraints mentioning it are re-evaluated. Because
//! three-valued evaluation is monotone (a constraint decided under a partial
//! assignment keeps its value under every extension), this is sound for both
//! hard-constraint pruning and the incremental soft-penalty lower bound used
//! for branch-and-bound.

use crate::constraint::{Constraint, Term};
use crate::{Problem, VarId};
use zodiac_model::Value;

/// A satisfying assignment with its soft-constraint penalty.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// One value per variable.
    pub assignment: Vec<Value>,
    /// Total weight of violated soft constraints.
    pub penalty: u64,
    /// Indices of violated soft constraints.
    pub violated_soft: Vec<usize>,
}

/// The result of solving.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// An optimal (or budget-capped best) solution.
    Sat(Solution),
    /// No assignment satisfies the hard constraints.
    Unsat,
}

impl Outcome {
    /// The solution, if SAT.
    pub fn solution(&self) -> Option<&Solution> {
        match self {
            Outcome::Sat(s) => Some(s),
            Outcome::Unsat => None,
        }
    }

    /// True if UNSAT.
    pub fn is_unsat(&self) -> bool {
        matches!(self, Outcome::Unsat)
    }
}

/// Collects the variables a constraint mentions.
fn vars_of(c: &Constraint, out: &mut Vec<VarId>) {
    match c {
        Constraint::True | Constraint::False => {}
        Constraint::Cmp { lhs, rhs, .. } => {
            if let Term::Var(v) = lhs {
                out.push(*v);
            }
            if let Term::Var(v) = rhs {
                out.push(*v);
            }
        }
        Constraint::Not(inner) => vars_of(inner, out),
        Constraint::And(items) | Constraint::Or(items) => {
            for i in items {
                vars_of(i, out);
            }
        }
        Constraint::Linear { vars, .. } => out.extend(vars.iter().copied()),
    }
}

/// Solves a problem by branch-and-bound, minimising soft-constraint penalty.
///
/// Variable order is by increasing domain size (fail-first); value order is
/// the domain's preference order. The node budget only limits *optimality*
/// proving when a solution exists; UNSAT results are exact unless the budget
/// is hit first, in which case the best-known solution (if any) is returned.
pub fn solve(problem: &Problem) -> Outcome {
    let n = problem.domains().len();
    if problem.domains().iter().any(Vec::is_empty) {
        return Outcome::Unsat;
    }
    let mut order: Vec<VarId> = (0..n).collect();
    order.sort_by_key(|&v| problem.domains()[v].len());

    // Watch lists.
    let mut hard_watch: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut soft_watch: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut ground_hard_false = false;
    for (i, c) in problem.hard().iter().enumerate() {
        let mut vs = Vec::new();
        vars_of(c, &mut vs);
        vs.sort_unstable();
        vs.dedup();
        if vs.is_empty() {
            if c.eval(&[]) == Some(false) {
                ground_hard_false = true;
            }
            continue;
        }
        for v in vs {
            hard_watch[v].push(i);
        }
    }
    if ground_hard_false {
        return Outcome::Unsat;
    }
    let mut ground_penalty = 0u64;
    let mut ground_violated: Vec<usize> = Vec::new();
    for (i, (c, w)) in problem.soft().iter().enumerate() {
        let mut vs = Vec::new();
        vars_of(c, &mut vs);
        vs.sort_unstable();
        vs.dedup();
        if vs.is_empty() {
            if c.eval(&[]) != Some(true) {
                ground_penalty += w;
                ground_violated.push(i);
            }
            continue;
        }
        for v in vs {
            soft_watch[v].push(i);
        }
    }

    let mut state = Search {
        problem,
        order,
        hard_watch,
        soft_watch,
        assignment: vec![None; n],
        soft_false: vec![false; problem.soft().len()],
        lb: ground_penalty,
        best: None,
        nodes: 0,
    };
    state.dfs(0);
    match state.best {
        Some(mut s) => {
            s.violated_soft.extend(ground_violated);
            s.violated_soft.sort_unstable();
            s.violated_soft.dedup();
            Outcome::Sat(s)
        }
        None => Outcome::Unsat,
    }
}

struct Search<'a> {
    problem: &'a Problem,
    order: Vec<VarId>,
    hard_watch: Vec<Vec<usize>>,
    soft_watch: Vec<Vec<usize>>,
    assignment: Vec<Option<Value>>,
    soft_false: Vec<bool>,
    lb: u64,
    best: Option<Solution>,
    nodes: u64,
}

impl Search<'_> {
    /// Returns `true` to abort the whole search (budget exhausted after a
    /// first solution was found).
    fn dfs(&mut self, depth: usize) -> bool {
        self.nodes += 1;
        if self.best.is_some() && self.nodes > self.problem.budget() {
            return true;
        }
        if let Some(best) = &self.best {
            if self.lb >= best.penalty {
                return false; // Bound.
            }
        }
        if depth == self.order.len() {
            let violated_soft: Vec<usize> = self
                .soft_false
                .iter()
                .enumerate()
                .filter(|(_, f)| **f)
                .map(|(i, _)| i)
                .collect();
            let better = self.best.as_ref().is_none_or(|b| self.lb < b.penalty);
            if better {
                self.best = Some(Solution {
                    assignment: self
                        .assignment
                        .iter()
                        .map(|o| o.clone().expect("complete assignment"))
                        .collect(),
                    penalty: self.lb,
                    violated_soft,
                });
            }
            return false;
        }

        let var = self.order[depth];
        let domain = self.problem.domains()[var].clone();
        for value in domain {
            self.assignment[var] = Some(value);
            // Hard pruning: only constraints watching `var` can have changed.
            let mut feasible = true;
            for &ci in &self.hard_watch[var] {
                if self.problem.hard()[ci].eval(&self.assignment) == Some(false) {
                    feasible = false;
                    break;
                }
            }
            if !feasible {
                self.assignment[var] = None;
                continue;
            }
            // Incremental soft lower bound with an undo trail.
            let mut newly_false: Vec<usize> = Vec::new();
            for &si in &self.soft_watch[var] {
                if !self.soft_false[si]
                    && self.problem.soft()[si].0.eval(&self.assignment) == Some(false)
                {
                    self.soft_false[si] = true;
                    self.lb += self.problem.soft()[si].1;
                    newly_false.push(si);
                }
            }
            let abort = self.dfs(depth + 1);
            for si in newly_false {
                self.soft_false[si] = false;
                self.lb -= self.problem.soft()[si].1;
            }
            self.assignment[var] = None;
            if abort {
                return true;
            }
            if matches!(&self.best, Some(b) if b.penalty <= self.lb) && self.lb == 0 {
                return true; // A zero-penalty optimum cannot be improved.
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{Constraint, Op, Term};

    #[test]
    fn solves_simple_equality() {
        let mut p = Problem::new();
        let x = p.add_var(vec![Value::s("a"), Value::s("b")]);
        p.require(Constraint::eq(Term::Var(x), Term::s("b")));
        let sol = solve(&p);
        assert_eq!(sol.solution().unwrap().assignment[x], Value::s("b"));
    }

    #[test]
    fn reports_unsat() {
        let mut p = Problem::new();
        let x = p.add_var(vec![Value::s("a")]);
        p.require(Constraint::eq(Term::Var(x), Term::s("b")));
        assert!(solve(&p).is_unsat());
    }

    #[test]
    fn ground_false_hard_is_unsat() {
        let mut p = Problem::new();
        p.add_var(vec![Value::Int(0)]);
        p.require(Constraint::False);
        assert!(solve(&p).is_unsat());
    }

    #[test]
    fn ground_soft_counts_in_penalty() {
        let mut p = Problem::new();
        p.add_var(vec![Value::Int(0)]);
        p.prefer(Constraint::False, 7);
        let sol = solve(&p);
        let s = sol.solution().unwrap();
        assert_eq!(s.penalty, 7);
        assert_eq!(s.violated_soft, vec![0]);
    }

    #[test]
    fn empty_domain_is_unsat() {
        let mut p = Problem::new();
        p.add_var(vec![]);
        assert!(solve(&p).is_unsat());
    }

    #[test]
    fn prefers_low_penalty() {
        let mut p = Problem::new();
        let x = p.add_var(vec![Value::s("orig"), Value::s("mut1"), Value::s("mut2")]);
        p.require(Constraint::ne(Term::Var(x), Term::s("orig")));
        p.prefer(Constraint::eq(Term::Var(x), Term::s("mut2")), 5);
        let sol = solve(&p);
        let s = sol.solution().unwrap();
        assert_eq!(s.assignment[x], Value::s("mut2"));
        assert_eq!(s.penalty, 0);
    }

    #[test]
    fn minimises_total_weight() {
        let mut p = Problem::new();
        let x = p.add_var(vec![Value::Int(0), Value::Int(1)]);
        let y = p.add_var(vec![Value::Int(0), Value::Int(1)]);
        p.require(Constraint::Or(vec![
            Constraint::eq(Term::Var(x), Term::i(1)),
            Constraint::eq(Term::Var(y), Term::i(1)),
        ]));
        p.prefer(Constraint::eq(Term::Var(x), Term::i(0)), 1);
        p.prefer(Constraint::eq(Term::Var(y), Term::i(0)), 3);
        let sol = solve(&p);
        let s = sol.solution().unwrap();
        assert_eq!(s.assignment[x], Value::Int(1));
        assert_eq!(s.assignment[y], Value::Int(0));
        assert_eq!(s.penalty, 1);
        assert_eq!(s.violated_soft, vec![0]);
    }

    #[test]
    fn linear_degree_constraints() {
        let mut p = Problem::new();
        let a = p.add_bool();
        let b = p.add_bool();
        let c = p.add_bool();
        p.require(Constraint::Linear {
            vars: vec![a, b, c],
            offset: 2,
            op: Op::Le,
            bound: 3,
        });
        p.require(Constraint::Linear {
            vars: vec![a, b, c],
            offset: 2,
            op: Op::Ge,
            bound: 3,
        });
        for v in [a, b, c] {
            p.prefer(
                Constraint::eq(Term::Var(v), Term::Const(Value::Bool(false))),
                1,
            );
        }
        let sol = solve(&p);
        let s = sol.solution().unwrap();
        let count = s
            .assignment
            .iter()
            .filter(|v| **v == Value::Bool(true))
            .count();
        assert_eq!(count, 1);
        assert_eq!(s.penalty, 1);
    }

    #[test]
    fn overlap_constraints_choose_adjacent_cidr() {
        let mut p = Problem::new();
        let cidr = p.add_var(vec![Value::s("10.0.1.0/24"), Value::s("10.0.2.0/24")]);
        p.require(Constraint::Not(Box::new(Constraint::Cmp {
            op: Op::Overlap,
            lhs: Term::Var(cidr),
            rhs: Term::s("10.0.1.0/24"),
        })));
        let sol = solve(&p);
        assert_eq!(
            sol.solution().unwrap().assignment[cidr],
            Value::s("10.0.2.0/24")
        );
    }

    #[test]
    fn budget_still_returns_best_found() {
        let mut p = Problem::new();
        for _ in 0..8 {
            p.add_var(vec![Value::Int(0), Value::Int(1)]);
        }
        p.set_node_budget(10);
        let sol = solve(&p);
        assert!(sol.solution().is_some());
    }

    #[test]
    fn mutation_violates_only_the_targeted_constraint() {
        // The mutator's encoding: to build a negative program for one target
        // check, it requires the *negation* of the target, keeps every other
        // ground rule hard, and prefers the original attribute values soft.
        // The found mutation must therefore violate exactly the target —
        // every other ground rule stays satisfied.
        let mut p = Problem::new();
        // eviction_policy: originally "Deallocate", may be unset.
        let policy = p.add_var(vec![Value::s("Deallocate"), Value::Null]);
        // location: originally "eastus"; another ground rule pins it.
        let loc = p.add_var(vec![Value::s("eastus"), Value::s("westus")]);
        // Target: `policy != null` (spot-needs-eviction-policy). Negated hard.
        p.require(Constraint::eq(Term::Var(policy), Term::Const(Value::Null)));
        // Unrelated ground rule, kept hard: the NIC's location must match.
        p.require(Constraint::eq(Term::Var(loc), Term::s("eastus")));
        // Minimal-edit preference: stay at the original values.
        p.prefer(Constraint::eq(Term::Var(policy), Term::s("Deallocate")), 1);
        p.prefer(Constraint::eq(Term::Var(loc), Term::s("eastus")), 1);

        let sol = solve(&p);
        let s = sol.solution().expect("mutation target is satisfiable");
        // The target constraint is violated...
        assert_eq!(s.assignment[policy], Value::Null);
        // ...while the other ground rule still holds...
        assert_eq!(s.assignment[loc], Value::s("eastus"));
        // ...and the only regretted edit is the targeted attribute.
        assert_eq!(s.violated_soft, vec![0]);
        assert_eq!(s.penalty, 1);
    }

    #[test]
    fn unsat_mutation_target_returns_none_without_panicking() {
        // A target whose negation contradicts a hard ground rule: no negative
        // program exists. The mutator must get `None`, not a panic.
        let mut p = Problem::new();
        let tier = p.add_var(vec![Value::s("Standard"), Value::s("Premium")]);
        // Ground rule (hard): the account tier must be Standard or Premium —
        // encoded as "not equal to anything outside the domain" is implicit,
        // so pin it directly.
        p.require(Constraint::eq(Term::Var(tier), Term::s("Standard")));
        // Negated target clashes: `tier != Standard`.
        p.require(Constraint::ne(Term::Var(tier), Term::s("Standard")));
        p.prefer(Constraint::eq(Term::Var(tier), Term::s("Standard")), 1);

        let sol = solve(&p);
        assert!(sol.is_unsat());
        assert!(sol.solution().is_none());
    }

    #[test]
    fn large_problem_terminates_quickly() {
        // 30 variables with 10-value domains and chained inequalities: the
        // watch-list search must not enumerate the cross product.
        let mut p = Problem::new();
        let vars: Vec<_> = (0..30)
            .map(|_| p.add_var((0..10).map(Value::Int).collect()))
            .collect();
        for w in vars.windows(2) {
            p.require(Constraint::ne(Term::Var(w[0]), Term::Var(w[1])));
        }
        p.require(Constraint::eq(Term::Var(vars[0]), Term::i(3)));
        for &v in &vars {
            p.prefer(Constraint::eq(Term::Var(v), Term::i(0)), 1);
        }
        let t0 = std::time::Instant::now();
        let sol = solve(&p);
        assert!(sol.solution().is_some());
        assert!(t0.elapsed().as_secs() < 5, "took {:?}", t0.elapsed());
    }
}
