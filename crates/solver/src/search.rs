//! Branch-and-bound search over finite domains.
//!
//! The search maintains per-variable watch lists: when a variable is
//! assigned, only the constraints mentioning it are re-evaluated. Because
//! three-valued evaluation is monotone (a constraint decided under a partial
//! assignment keeps its value under every extension), this is sound for both
//! hard-constraint pruning and the incremental soft-penalty lower bound used
//! for branch-and-bound.
//!
//! Two exactness-preserving accelerations sit on top of the plain DFS:
//!
//! * **Component decomposition** — variables that share no constraint are
//!   independent, so the problem splits into connected components of the
//!   constraint graph, each solved separately. Penalties are separable
//!   across components, which makes the composed answer *identical* to the
//!   monolithic search (the first optimal leaf in DFS order factors into
//!   the per-component first optima), while the explored space drops from
//!   the product of the component spaces to their sum. Mutation encodings
//!   are dominated by many small independent components — one or two
//!   attributes tied together by a grounded check — where this is the
//!   difference between millions of nodes and a few hundred.
//! * **Seeded upper bounds** ([`solve_with_bound`]) — a known-feasible
//!   penalty from a previous model of a near-identical problem prunes
//!   subtrees that provably cannot do *strictly* better. Strictness keeps
//!   every assignment at least as good as the bound reachable in original
//!   DFS order, so the returned solution is identical to an unseeded run.

use crate::constraint::{Constraint, Term};
use crate::{Problem, VarId};
use zodiac_model::Value;

/// A satisfying assignment with its soft-constraint penalty.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// One value per variable.
    pub assignment: Vec<Value>,
    /// Total weight of violated soft constraints.
    pub penalty: u64,
    /// Indices of violated soft constraints.
    pub violated_soft: Vec<usize>,
}

/// The result of solving.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// An optimal (or budget-capped best) solution.
    Sat(Solution),
    /// No assignment satisfies the hard constraints.
    Unsat,
}

impl Outcome {
    /// The solution, if SAT.
    pub fn solution(&self) -> Option<&Solution> {
        match self {
            Outcome::Sat(s) => Some(s),
            Outcome::Unsat => None,
        }
    }

    /// True if UNSAT.
    pub fn is_unsat(&self) -> bool {
        matches!(self, Outcome::Unsat)
    }
}

/// Collects the variables a constraint mentions.
pub(crate) fn vars_of(c: &Constraint, out: &mut Vec<VarId>) {
    match c {
        Constraint::True | Constraint::False => {}
        Constraint::Cmp { lhs, rhs, .. } => {
            if let Term::Var(v) = lhs {
                out.push(*v);
            }
            if let Term::Var(v) = rhs {
                out.push(*v);
            }
        }
        Constraint::Not(inner) => vars_of(inner, out),
        Constraint::And(items) | Constraint::Or(items) => {
            for i in items {
                vars_of(i, out);
            }
        }
        Constraint::Linear { vars, .. } => out.extend(vars.iter().copied()),
    }
}

/// Solves a problem by branch-and-bound, minimising soft-constraint penalty.
///
/// Variable order is by increasing domain size (fail-first); value order is
/// the domain's preference order. The node budget only limits *optimality*
/// proving when a solution exists; UNSAT results are exact unless the budget
/// is hit first, in which case the best-known solution (if any) is returned.
pub fn solve(problem: &Problem) -> Outcome {
    solve_with_bound(problem, None)
}

/// [`solve`] with an optional known-feasible penalty upper bound, usually
/// obtained via [`Problem::seed_bound`] from a previous model of a similar
/// problem. Subtrees whose penalty lower bound *strictly exceeds* the bound
/// are pruned; anything at least as good as the bound stays reachable in
/// original DFS order, so the result is identical to an unseeded [`solve`]
/// — the bound buys pruning, never a different answer. Callers must get the
/// bound from `seed_bound`, which verifies the seed is actually feasible.
pub fn solve_with_bound(problem: &Problem, bound: Option<u64>) -> Outcome {
    let n = problem.domains().len();
    if problem.domains().iter().any(Vec::is_empty) {
        return Outcome::Unsat;
    }

    // Build watch lists, settle ground (variable-free) constraints, and
    // union variables that share a constraint.
    let mut hard_watch: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut soft_watch: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut uf = UnionFind::new(n);
    let mut vs = Vec::new();
    for (i, c) in problem.hard().iter().enumerate() {
        vs.clear();
        vars_of(c, &mut vs);
        vs.sort_unstable();
        vs.dedup();
        if vs.is_empty() {
            if c.eval(&[]) == Some(false) {
                return Outcome::Unsat;
            }
            continue;
        }
        for w in vs.windows(2) {
            uf.union(w[0], w[1]);
        }
        for &v in &vs {
            hard_watch[v].push(i);
        }
    }
    let mut ground_penalty = 0u64;
    let mut ground_violated: Vec<usize> = Vec::new();
    for (i, (c, w)) in problem.soft().iter().enumerate() {
        vs.clear();
        vars_of(c, &mut vs);
        vs.sort_unstable();
        vs.dedup();
        if vs.is_empty() {
            if c.eval(&[]) != Some(true) {
                ground_penalty += w;
                ground_violated.push(i);
            }
            continue;
        }
        for win in vs.windows(2) {
            uf.union(win[0], win[1]);
        }
        for &v in &vs {
            soft_watch[v].push(i);
        }
    }

    // Group variables into connected components, ordered by their smallest
    // member so the grouping is deterministic.
    let mut comp_of_root: Vec<usize> = vec![usize::MAX; n];
    let mut components: Vec<Vec<VarId>> = Vec::new();
    for v in 0..n {
        let root = uf.find(v);
        if comp_of_root[root] == usize::MAX {
            comp_of_root[root] = components.len();
            components.push(Vec::new());
        }
        components[comp_of_root[root]].push(v);
    }

    // Solve each component independently. Penalties are separable across
    // components, so per-component optima compose to the global optimum,
    // and the stable fail-first sort within a component is the restriction
    // of the monolithic order — the composed solution is the one the
    // undecomposed search would have returned first.
    let mut assignment: Vec<Value> = vec![Value::Null; n];
    let mut violated_soft: Vec<usize> = ground_violated;
    let mut penalty = ground_penalty;
    let mut nodes = 0u64;
    // Penalty still spendable under the seed bound: the bound covers the
    // total, and each unsolved component contributes at least 0.
    let mut remaining_bound = bound.map(|b| b.saturating_sub(ground_penalty));
    for mut order in components {
        order.sort_by_key(|&v| problem.domains()[v].len());
        let mut state = Search {
            problem,
            order,
            hard_watch: &hard_watch,
            soft_watch: &soft_watch,
            assignment: vec![None; n],
            soft_false: vec![false; problem.soft().len()],
            lb: 0,
            best: None,
            nodes: &mut nodes,
            bound: remaining_bound,
        };
        state.dfs(0);
        let Some(best) = state.best else {
            return Outcome::Unsat;
        };
        for &v in &state.order {
            if let Some(val) = best.assignment[v].clone() {
                assignment[v] = val;
            }
        }
        violated_soft.extend(best.violated_soft);
        penalty += best.penalty;
        if let Some(b) = remaining_bound.as_mut() {
            *b = b.saturating_sub(best.penalty);
        }
    }
    violated_soft.sort_unstable();
    Outcome::Sat(Solution {
        assignment,
        penalty,
        violated_soft,
    })
}

/// Path-compressing union-find over variable indices.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Attach the larger root under the smaller so components keep a
            // deterministic smallest-index representative.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

/// A component's best-so-far: the assignment is full-width so watch-list
/// evaluation needs no index translation, but only the component's own
/// variables are ever `Some`.
struct ComponentBest {
    assignment: Vec<Option<Value>>,
    penalty: u64,
    violated_soft: Vec<usize>,
}

struct Search<'a> {
    problem: &'a Problem,
    /// The component's variables in fail-first order.
    order: Vec<VarId>,
    hard_watch: &'a [Vec<usize>],
    soft_watch: &'a [Vec<usize>],
    assignment: Vec<Option<Value>>,
    soft_false: Vec<bool>,
    /// Penalty of soft constraints already decided false.
    lb: u64,
    best: Option<ComponentBest>,
    /// Node counter shared across the problem's components.
    nodes: &'a mut u64,
    /// Seeded upper bound on this component's penalty, if any.
    bound: Option<u64>,
}

impl Search<'_> {
    /// Returns `true` to abort this component's search: either the node
    /// budget ran out after a first solution, or a zero-penalty optimum was
    /// found (nothing can strictly improve on it).
    fn dfs(&mut self, depth: usize) -> bool {
        *self.nodes += 1;
        if self.best.is_some() && *self.nodes > self.problem.budget() {
            return true;
        }
        if let Some(best) = &self.best {
            if self.lb >= best.penalty {
                return false;
            }
        }
        if let Some(bound) = self.bound {
            if self.lb > bound {
                return false; // Seeded bound: nothing strictly better here.
            }
        }
        if depth == self.order.len() {
            let violated_soft: Vec<usize> = self
                .soft_false
                .iter()
                .enumerate()
                .filter_map(|(i, f)| f.then_some(i))
                .collect();
            self.best = Some(ComponentBest {
                assignment: self.assignment.clone(),
                penalty: self.lb,
                violated_soft,
            });
            return self.lb == 0;
        }

        let var = self.order[depth];
        for di in 0..self.problem.domains()[var].len() {
            let value = self.problem.domains()[var][di].clone();
            self.assignment[var] = Some(value);
            // Hard pruning: only constraints watching `var` can have changed.
            let mut feasible = true;
            for &ci in &self.hard_watch[var] {
                if self.problem.hard()[ci].eval(&self.assignment) == Some(false) {
                    feasible = false;
                    break;
                }
            }
            if !feasible {
                self.assignment[var] = None;
                continue;
            }
            // Incremental soft lower bound, with an undo trail.
            let mut newly_false: Vec<usize> = Vec::new();
            for &si in &self.soft_watch[var] {
                if !self.soft_false[si]
                    && self.problem.soft()[si].0.eval(&self.assignment) == Some(false)
                {
                    self.soft_false[si] = true;
                    self.lb += self.problem.soft()[si].1;
                    newly_false.push(si);
                }
            }
            let abort = self.dfs(depth + 1);
            for si in newly_false {
                self.soft_false[si] = false;
                self.lb -= self.problem.soft()[si].1;
            }
            self.assignment[var] = None;
            if abort {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{Constraint, Op, Term};

    #[test]
    fn solves_simple_equality() {
        let mut p = Problem::new();
        let x = p.add_var(vec![Value::s("a"), Value::s("b")]);
        p.require(Constraint::eq(Term::Var(x), Term::s("b")));
        let sol = solve(&p);
        assert_eq!(sol.solution().unwrap().assignment[x], Value::s("b"));
    }

    #[test]
    fn reports_unsat() {
        let mut p = Problem::new();
        let x = p.add_var(vec![Value::s("a")]);
        p.require(Constraint::eq(Term::Var(x), Term::s("b")));
        assert!(solve(&p).is_unsat());
    }

    #[test]
    fn ground_false_hard_is_unsat() {
        let mut p = Problem::new();
        p.add_var(vec![Value::Int(0)]);
        p.require(Constraint::False);
        assert!(solve(&p).is_unsat());
    }

    #[test]
    fn ground_soft_counts_in_penalty() {
        let mut p = Problem::new();
        p.add_var(vec![Value::Int(0)]);
        p.prefer(Constraint::False, 7);
        let sol = solve(&p);
        let s = sol.solution().unwrap();
        assert_eq!(s.penalty, 7);
        assert_eq!(s.violated_soft, vec![0]);
    }

    #[test]
    fn empty_domain_is_unsat() {
        let mut p = Problem::new();
        p.add_var(vec![]);
        assert!(solve(&p).is_unsat());
    }

    #[test]
    fn prefers_low_penalty() {
        let mut p = Problem::new();
        let x = p.add_var(vec![Value::s("orig"), Value::s("mut1"), Value::s("mut2")]);
        p.require(Constraint::ne(Term::Var(x), Term::s("orig")));
        p.prefer(Constraint::eq(Term::Var(x), Term::s("mut2")), 5);
        let sol = solve(&p);
        let s = sol.solution().unwrap();
        assert_eq!(s.assignment[x], Value::s("mut2"));
        assert_eq!(s.penalty, 0);
    }

    #[test]
    fn minimises_total_weight() {
        let mut p = Problem::new();
        let x = p.add_var(vec![Value::Int(0), Value::Int(1)]);
        let y = p.add_var(vec![Value::Int(0), Value::Int(1)]);
        p.require(Constraint::Or(vec![
            Constraint::eq(Term::Var(x), Term::i(1)),
            Constraint::eq(Term::Var(y), Term::i(1)),
        ]));
        p.prefer(Constraint::eq(Term::Var(x), Term::i(0)), 1);
        p.prefer(Constraint::eq(Term::Var(y), Term::i(0)), 3);
        let sol = solve(&p);
        let s = sol.solution().unwrap();
        assert_eq!(s.assignment[x], Value::Int(1));
        assert_eq!(s.assignment[y], Value::Int(0));
        assert_eq!(s.penalty, 1);
        assert_eq!(s.violated_soft, vec![0]);
    }

    #[test]
    fn linear_degree_constraints() {
        let mut p = Problem::new();
        let a = p.add_bool();
        let b = p.add_bool();
        let c = p.add_bool();
        p.require(Constraint::Linear {
            vars: vec![a, b, c],
            offset: 2,
            op: Op::Le,
            bound: 3,
        });
        p.require(Constraint::Linear {
            vars: vec![a, b, c],
            offset: 2,
            op: Op::Ge,
            bound: 3,
        });
        for v in [a, b, c] {
            p.prefer(
                Constraint::eq(Term::Var(v), Term::Const(Value::Bool(false))),
                1,
            );
        }
        let sol = solve(&p);
        let s = sol.solution().unwrap();
        let count = s
            .assignment
            .iter()
            .filter(|v| **v == Value::Bool(true))
            .count();
        assert_eq!(count, 1);
        assert_eq!(s.penalty, 1);
    }

    #[test]
    fn overlap_constraints_choose_adjacent_cidr() {
        let mut p = Problem::new();
        let cidr = p.add_var(vec![Value::s("10.0.1.0/24"), Value::s("10.0.2.0/24")]);
        p.require(Constraint::Not(Box::new(Constraint::Cmp {
            op: Op::Overlap,
            lhs: Term::Var(cidr),
            rhs: Term::s("10.0.1.0/24"),
        })));
        let sol = solve(&p);
        assert_eq!(
            sol.solution().unwrap().assignment[cidr],
            Value::s("10.0.2.0/24")
        );
    }

    #[test]
    fn budget_still_returns_best_found() {
        let mut p = Problem::new();
        let vars: Vec<_> = (0..8)
            .map(|_| p.add_var(vec![Value::Int(0), Value::Int(1)]))
            .collect();
        // Chain the variables so they form one component and the budget
        // actually bites before optimality is proven.
        for w in vars.windows(2) {
            p.prefer(Constraint::ne(Term::Var(w[0]), Term::Var(w[1])), 1);
        }
        p.set_node_budget(10);
        let sol = solve(&p);
        assert!(sol.solution().is_some());
    }

    #[test]
    fn mutation_violates_only_the_targeted_constraint() {
        // The mutator's encoding: to build a negative program for one target
        // check, it requires the *negation* of the target, keeps every other
        // ground rule hard, and prefers the original attribute values soft.
        // The found mutation must therefore violate exactly the target —
        // every other ground rule stays satisfied.
        let mut p = Problem::new();
        // eviction_policy: originally "Deallocate", may be unset.
        let policy = p.add_var(vec![Value::s("Deallocate"), Value::Null]);
        // location: originally "eastus"; another ground rule pins it.
        let loc = p.add_var(vec![Value::s("eastus"), Value::s("westus")]);
        // Target: `policy != null` (spot-needs-eviction-policy). Negated hard.
        p.require(Constraint::eq(Term::Var(policy), Term::Const(Value::Null)));
        // Unrelated ground rule, kept hard: the NIC's location must match.
        p.require(Constraint::eq(Term::Var(loc), Term::s("eastus")));
        // Minimal-edit preference: stay at the original values.
        p.prefer(Constraint::eq(Term::Var(policy), Term::s("Deallocate")), 1);
        p.prefer(Constraint::eq(Term::Var(loc), Term::s("eastus")), 1);

        let sol = solve(&p);
        let s = sol.solution().expect("mutation target is satisfiable");
        // The target constraint is violated...
        assert_eq!(s.assignment[policy], Value::Null);
        // ...while the other ground rule still holds...
        assert_eq!(s.assignment[loc], Value::s("eastus"));
        // ...and the only regretted edit is the targeted attribute.
        assert_eq!(s.violated_soft, vec![0]);
        assert_eq!(s.penalty, 1);
    }

    #[test]
    fn unsat_mutation_target_returns_none_without_panicking() {
        // A target whose negation contradicts a hard ground rule: no negative
        // program exists. The mutator must get `None`, not a panic.
        let mut p = Problem::new();
        let tier = p.add_var(vec![Value::s("Standard"), Value::s("Premium")]);
        p.require(Constraint::eq(Term::Var(tier), Term::s("Standard")));
        // Negated target clashes: `tier != Standard`.
        p.require(Constraint::ne(Term::Var(tier), Term::s("Standard")));
        p.prefer(Constraint::eq(Term::Var(tier), Term::s("Standard")), 1);

        let sol = solve(&p);
        assert!(sol.is_unsat());
        assert!(sol.solution().is_none());
    }

    #[test]
    fn large_problem_terminates_quickly() {
        // 30 variables with 10-value domains and chained inequalities: the
        // watch-list search must not enumerate the cross product.
        let mut p = Problem::new();
        let vars: Vec<_> = (0..30)
            .map(|_| p.add_var((0..10).map(Value::Int).collect()))
            .collect();
        for w in vars.windows(2) {
            p.require(Constraint::ne(Term::Var(w[0]), Term::Var(w[1])));
        }
        p.require(Constraint::eq(Term::Var(vars[0]), Term::i(3)));
        for &v in &vars {
            p.prefer(Constraint::eq(Term::Var(v), Term::i(0)), 1);
        }
        let t0 = std::time::Instant::now();
        let sol = solve(&p);
        assert!(sol.solution().is_some());
        assert!(t0.elapsed().as_secs() < 5, "took {:?}", t0.elapsed());
    }

    /// Many independent pairs: decomposition must keep the answer identical
    /// to solving each pair alone, and must not enumerate the cross product.
    #[test]
    fn independent_components_compose_exactly() {
        let mut p = Problem::new();
        let mut pairs = Vec::new();
        for _ in 0..12 {
            let a = p.add_var((0..6).map(Value::Int).collect());
            let b = p.add_var((0..6).map(Value::Int).collect());
            p.require(Constraint::ne(Term::Var(a), Term::Var(b)));
            p.prefer(Constraint::eq(Term::Var(a), Term::i(0)), 2);
            p.prefer(Constraint::eq(Term::Var(b), Term::i(0)), 1);
            pairs.push((a, b));
        }
        let t0 = std::time::Instant::now();
        let sol = solve(&p);
        let s = sol.solution().unwrap();
        // Per pair the optimum keeps a=0 (weight 2) and concedes b=1
        // (weight 1); the global answer is exactly that, per pair.
        for &(a, b) in &pairs {
            assert_eq!(s.assignment[a], Value::Int(0));
            assert_eq!(s.assignment[b], Value::Int(1));
        }
        assert_eq!(s.penalty, 12);
        assert_eq!(s.violated_soft.len(), 12);
        assert!(
            t0.elapsed().as_millis() < 1000,
            "decomposed search must not enumerate 6^24 leaves ({:?})",
            t0.elapsed()
        );
    }

    /// An unconstrained variable forms its own component and takes its
    /// preferred (first) domain value.
    #[test]
    fn unconstrained_variable_takes_preferred_value() {
        let mut p = Problem::new();
        let free = p.add_var(vec![Value::s("keep"), Value::s("other")]);
        let x = p.add_var(vec![Value::Int(0), Value::Int(1)]);
        p.require(Constraint::eq(Term::Var(x), Term::i(1)));
        let sol = solve(&p);
        let s = sol.solution().unwrap();
        assert_eq!(s.assignment[free], Value::s("keep"));
        assert_eq!(s.assignment[x], Value::Int(1));
    }

    /// One UNSAT component makes the whole problem UNSAT even when every
    /// other component is satisfiable.
    #[test]
    fn unsat_component_is_global_unsat() {
        let mut p = Problem::new();
        let ok = p.add_var(vec![Value::Int(0)]);
        p.prefer(Constraint::eq(Term::Var(ok), Term::i(0)), 1);
        let bad = p.add_var(vec![Value::Int(0)]);
        p.require(Constraint::eq(Term::Var(bad), Term::i(1)));
        assert!(solve(&p).is_unsat());
    }

    /// A seeded bound never changes the answer — only the work done.
    #[test]
    fn seeded_bound_preserves_solution() {
        let mut p = Problem::new();
        let x = p.add_var(vec![Value::Int(0), Value::Int(1), Value::Int(2)]);
        let y = p.add_var(vec![Value::Int(0), Value::Int(1), Value::Int(2)]);
        p.require(Constraint::ne(Term::Var(x), Term::Var(y)));
        p.prefer(Constraint::eq(Term::Var(x), Term::i(2)), 2);
        p.prefer(Constraint::eq(Term::Var(y), Term::i(1)), 3);
        let plain = solve(&p);
        let seed = p.seed_bound(&[Value::Int(0), Value::Int(1)]).unwrap();
        let seeded = solve_with_bound(&p, Some(seed));
        assert_eq!(plain, seeded);
        // A loose bound is equally harmless.
        assert_eq!(plain, solve_with_bound(&p, Some(u64::MAX)));
    }

    #[test]
    fn seed_bound_rejects_infeasible_models() {
        let mut p = Problem::new();
        let x = p.add_var(vec![Value::Int(0), Value::Int(1)]);
        p.require(Constraint::eq(Term::Var(x), Term::i(1)));
        // Hard-violating assignment: no bound.
        assert_eq!(p.seed_bound(&[Value::Int(0)]), None);
        // Out-of-domain assignment: no bound.
        assert_eq!(p.seed_bound(&[Value::Int(7)]), None);
        // Wrong arity: no bound.
        assert_eq!(p.seed_bound(&[]), None);
        // Feasible assignment here has zero penalty.
        assert_eq!(p.seed_bound(&[Value::Int(1)]), Some(0));
    }
}
