//! Constraint representation and three-valued evaluation.

use crate::VarId;
use zodiac_model::{Cidr, Value};

/// A term: a variable or a constant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Term {
    /// A solver variable.
    Var(VarId),
    /// A constant value.
    Const(Value),
}

impl Term {
    /// Convenience constructor for string constants.
    pub fn s(v: impl Into<String>) -> Term {
        Term::Const(Value::Str(v.into()))
    }

    /// Convenience constructor for integer constants.
    pub fn i(v: i64) -> Term {
        Term::Const(Value::Int(v))
    }

    fn value<'a>(&'a self, assignment: &'a [Option<Value>]) -> Option<&'a Value> {
        match self {
            Term::Var(v) => assignment.get(*v).and_then(|o| o.as_ref()),
            Term::Const(c) => Some(c),
        }
    }
}

/// Relational operators over terms — the same operator set the check
/// language uses, so mutation passes check operators through unchanged.
pub use zodiac_model::CmpOp as Op;

/// A constraint over solver variables.
#[derive(Debug, Clone, PartialEq)]
pub enum Constraint {
    /// Always true.
    True,
    /// Always false.
    False,
    /// `lhs op rhs`.
    Cmp {
        /// Operator.
        op: Op,
        /// Left term.
        lhs: Term,
        /// Right term.
        rhs: Term,
    },
    /// Negation.
    Not(Box<Constraint>),
    /// Conjunction.
    And(Vec<Constraint>),
    /// Disjunction.
    Or(Vec<Constraint>),
    /// `offset + Σ bool-vars op bound` — pseudo-boolean counting, used for
    /// degree constraints ("at most k NICs may be instantiated").
    Linear {
        /// Boolean variables counted when true.
        vars: Vec<VarId>,
        /// Constant offset (already-present edges).
        offset: i64,
        /// Comparison operator (`Le`, `Ge`, `Lt`, `Gt`, `Eq`, `Ne`).
        op: Op,
        /// Right-hand bound.
        bound: i64,
    },
}

impl Constraint {
    /// `lhs == rhs`.
    pub fn eq(lhs: Term, rhs: Term) -> Constraint {
        Constraint::Cmp {
            op: Op::Eq,
            lhs,
            rhs,
        }
    }

    /// `lhs != rhs`.
    pub fn ne(lhs: Term, rhs: Term) -> Constraint {
        Constraint::Cmp {
            op: Op::Ne,
            lhs,
            rhs,
        }
    }

    /// `a => b` as `¬a ∨ b`.
    pub fn implies(a: Constraint, b: Constraint) -> Constraint {
        Constraint::Or(vec![Constraint::Not(Box::new(a)), b])
    }

    /// Three-valued evaluation under a partial assignment: `Some(b)` when
    /// the truth value is already determined, `None` otherwise.
    pub fn eval(&self, assignment: &[Option<Value>]) -> Option<bool> {
        match self {
            Constraint::True => Some(true),
            Constraint::False => Some(false),
            Constraint::Cmp { op, lhs, rhs } => {
                let l = lhs.value(assignment)?;
                let r = rhs.value(assignment)?;
                Some(cmp(*op, l, r))
            }
            Constraint::Not(inner) => inner.eval(assignment).map(|b| !b),
            Constraint::And(items) => {
                let mut all_known = true;
                for item in items {
                    match item.eval(assignment) {
                        Some(false) => return Some(false),
                        Some(true) => {}
                        None => all_known = false,
                    }
                }
                if all_known {
                    Some(true)
                } else {
                    None
                }
            }
            Constraint::Or(items) => {
                let mut all_known = true;
                for item in items {
                    match item.eval(assignment) {
                        Some(true) => return Some(true),
                        Some(false) => {}
                        None => all_known = false,
                    }
                }
                if all_known {
                    Some(false)
                } else {
                    None
                }
            }
            Constraint::Linear {
                vars,
                offset,
                op,
                bound,
            } => {
                let mut min = *offset;
                let mut max = *offset;
                for v in vars {
                    match assignment.get(*v).and_then(|o| o.as_ref()) {
                        Some(Value::Bool(true)) => {
                            min += 1;
                            max += 1;
                        }
                        Some(_) => {}
                        None => max += 1,
                    }
                }
                linear_range(*op, min, max, *bound)
            }
        }
    }
}

fn linear_range(op: Op, min: i64, max: i64, bound: i64) -> Option<bool> {
    let over = |v: i64| match op {
        Op::Le => v <= bound,
        Op::Ge => v >= bound,
        Op::Lt => v < bound,
        Op::Gt => v > bound,
        Op::Eq => v == bound,
        Op::Ne => v != bound,
        Op::Overlap | Op::Contain => false,
    };
    match op {
        Op::Le | Op::Lt => {
            if over(max) {
                Some(true)
            } else if !over(min) {
                Some(false)
            } else {
                None
            }
        }
        Op::Ge | Op::Gt => {
            if over(min) {
                Some(true)
            } else if !over(max) {
                Some(false)
            } else {
                None
            }
        }
        Op::Eq => {
            if min == max {
                Some(min == bound)
            } else if bound < min || bound > max {
                Some(false)
            } else {
                None
            }
        }
        Op::Ne => {
            if min == max {
                Some(min != bound)
            } else if bound < min || bound > max {
                Some(true)
            } else {
                None
            }
        }
        Op::Overlap | Op::Contain => Some(false),
    }
}

fn cmp(op: Op, l: &Value, r: &Value) -> bool {
    match op {
        Op::Eq => l == r,
        Op::Ne => l != r,
        Op::Le | Op::Ge | Op::Lt | Op::Gt => {
            let (Some(a), Some(b)) = (l.as_int(), r.as_int()) else {
                return false;
            };
            match op {
                Op::Le => a <= b,
                Op::Ge => a >= b,
                Op::Lt => a < b,
                Op::Gt => a > b,
                _ => unreachable!(),
            }
        }
        Op::Overlap | Op::Contain => {
            let parse = |v: &Value| v.as_str().and_then(|s| s.parse::<Cidr>().ok());
            let (Some(a), Some(b)) = (parse(l), parse(r)) else {
                return false;
            };
            if op == Op::Overlap {
                a.overlaps(&b)
            } else {
                a.contains(&b)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_valued_cmp() {
        let c = Constraint::eq(Term::Var(0), Term::s("eastus"));
        assert_eq!(c.eval(&[None]), None);
        assert_eq!(c.eval(&[Some(Value::s("eastus"))]), Some(true));
        assert_eq!(c.eval(&[Some(Value::s("westus"))]), Some(false));
    }

    #[test]
    fn and_or_short_circuit_on_partial() {
        let t = Constraint::True;
        let f = Constraint::False;
        let unknown = Constraint::eq(Term::Var(0), Term::i(1));
        let a = &[None];
        assert_eq!(
            Constraint::And(vec![f.clone(), unknown.clone()]).eval(a),
            Some(false)
        );
        assert_eq!(
            Constraint::And(vec![t.clone(), unknown.clone()]).eval(a),
            None
        );
        assert_eq!(Constraint::Or(vec![t, unknown.clone()]).eval(a), Some(true));
        assert_eq!(Constraint::Or(vec![f, unknown]).eval(a), None);
    }

    #[test]
    fn implies_encoding() {
        let imp = Constraint::implies(
            Constraint::eq(Term::Var(0), Term::s("Spot")),
            Constraint::ne(Term::Var(1), Term::Const(Value::Null)),
        );
        let sat = &[Some(Value::s("Spot")), Some(Value::s("Deallocate"))];
        let unsat = &[Some(Value::s("Spot")), Some(Value::Null)];
        let vacuous = &[Some(Value::s("Regular")), Some(Value::Null)];
        assert_eq!(imp.eval(sat), Some(true));
        assert_eq!(imp.eval(unsat), Some(false));
        assert_eq!(imp.eval(vacuous), Some(true));
    }

    #[test]
    fn linear_bounds() {
        // offset 2 + two bool vars <= 3
        let c = Constraint::Linear {
            vars: vec![0, 1],
            offset: 2,
            op: Op::Le,
            bound: 3,
        };
        assert_eq!(c.eval(&[None, None]), None);
        assert_eq!(c.eval(&[Some(Value::Bool(true)), None]), None);
        assert_eq!(
            c.eval(&[Some(Value::Bool(true)), Some(Value::Bool(true))]),
            Some(false)
        );
        assert_eq!(c.eval(&[Some(Value::Bool(false)), None]), Some(true));
    }

    #[test]
    fn cidr_ops() {
        let overlap = Constraint::Cmp {
            op: Op::Overlap,
            lhs: Term::s("10.0.0.0/16"),
            rhs: Term::s("10.0.1.0/24"),
        };
        assert_eq!(overlap.eval(&[]), Some(true));
        let contain = Constraint::Cmp {
            op: Op::Contain,
            lhs: Term::s("10.0.1.0/24"),
            rhs: Term::s("10.0.0.0/16"),
        };
        assert_eq!(contain.eval(&[]), Some(false));
    }

    #[test]
    fn non_cidr_strings_never_overlap() {
        let c = Constraint::Cmp {
            op: Op::Overlap,
            lhs: Term::s("hello"),
            rhs: Term::s("10.0.0.0/8"),
        };
        assert_eq!(c.eval(&[]), Some(false));
    }
}
