//! The Zodiac semantic knowledge base (§3.1).
//!
//! The KB holds the "base facts" from which semantic checks are built, in
//! three classes mirroring the paper:
//!
//! * **Class 1 — IaC native constraints**, extracted from the provider
//!   schema: whether an attribute is required/optional/computed, its shape
//!   (scalar, list, nested block), and its base type.
//! * **Class 2 — provider-specific constraints**: enum domains and defaults,
//!   reserved values (e.g. the `GatewaySubnet` subnet name), whether a string
//!   is a CIDR range, a port, or a cloud location.
//! * **Class 3 — resource references**: which inbound endpoints may legally
//!   connect to which outbound endpoints, and whether a reference implies
//!   deployment ordering.
//!
//! The schema for 30+ Azure resource types is encoded in [`azure`]; the
//! corpus-driven extraction that the paper performs over crawled repositories
//! is implemented in [`extract`] and merged into the same [`KnowledgeBase`]
//! type. Documentation tables (VM sku limits, gateway sku limits, ...) used
//! by both the cloud simulator and the interpolation oracle live in [`docs`].

pub mod alias;
pub mod azure;
pub mod docs;
pub mod extract;
pub mod schema;

pub use alias::{long_name, short_name};
pub use schema::{
    AttrKind, AttrSchema, AttrShape, BaseType, EndpointSpec, KnowledgeBase, ResourceSchema,
    ValueFormat,
};

/// Builds the full knowledge base for the Azure provider: the static schema
/// (Class 1) plus the curated Class 2 / Class 3 facts.
pub fn azure_kb() -> KnowledgeBase {
    azure::build()
}
