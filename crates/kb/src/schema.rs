//! Knowledge-base data structures and builder.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use zodiac_model::Value;

/// Class-1 fact: is the attribute required, optional, or computed?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttrKind {
    /// Must be supplied by the developer.
    Required,
    /// May be omitted (possibly defaulted by the provider).
    Optional,
    /// Value only known after deployment (e.g. `id`); never written.
    Computed,
}

/// Class-1 fact: the shape of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttrShape {
    /// A single scalar value.
    Scalar,
    /// A list of scalars.
    List,
    /// A single nested block.
    Block,
    /// A repeatable nested block (list of blocks).
    ListBlock,
}

/// Class-1 fact: the base type of a scalar attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BaseType {
    /// String-valued.
    Str,
    /// Integer-valued.
    Int,
    /// Boolean-valued.
    Bool,
    /// A reference to another resource's attribute.
    Ref,
}

/// Class-2 fact: the provider-specific interpretation of a value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ValueFormat {
    /// No special interpretation (free-form name, key, etc.).
    Plain,
    /// Closed enum of legal values, with an optional provider default.
    Enum {
        /// Legal values.
        values: Vec<String>,
        /// Value assumed when the attribute is omitted.
        default: Option<String>,
    },
    /// Free-form string, but certain values are reserved with special
    /// semantics (e.g. subnet name `GatewaySubnet`).
    ReservedName {
        /// The reserved values.
        reserved: Vec<String>,
    },
    /// An IPv4 CIDR range.
    Cidr,
    /// A port number or port range string.
    Port,
    /// A cloud region name.
    Location,
    /// An integer within an inclusive range.
    IntRange {
        /// Minimum legal value.
        min: i64,
        /// Maximum legal value.
        max: i64,
    },
    /// A boolean with a provider default.
    BoolDefault {
        /// Value assumed when omitted.
        default: bool,
    },
}

impl ValueFormat {
    /// The provider default for this format, as a model value, if any.
    pub fn default_value(&self) -> Option<Value> {
        match self {
            ValueFormat::Enum {
                default: Some(d), ..
            } => Some(Value::s(d.clone())),
            ValueFormat::BoolDefault { default } => Some(Value::Bool(*default)),
            _ => None,
        }
    }

    /// The enum domain if this is an enum format.
    pub fn enum_values(&self) -> Option<&[String]> {
        match self {
            ValueFormat::Enum { values, .. } => Some(values),
            _ => None,
        }
    }
}

/// Class-3 fact: a legal inbound→outbound endpoint pairing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EndpointSpec {
    /// Inbound endpoint name on the source resource (indices stripped),
    /// e.g. `ip_configuration.subnet_id`.
    pub in_endpoint: String,
    /// Legal target resource type.
    pub target_type: String,
    /// Outbound endpoint attribute on the target, e.g. `id`.
    pub target_attr: String,
    /// True if the reference implies the source deploys after the target
    /// (attachment semantics) rather than a mere value equality.
    pub ordering: bool,
    /// True if the endpoint accepts a list of targets (e.g. a VM's
    /// `network_interface_ids`); false for single-target endpoints.
    pub many: bool,
}

/// Schema entry for one attribute (Class 1 + Class 2 combined).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttrSchema {
    /// Dotted attribute path (indices stripped), e.g. `os_disk.name`.
    pub path: String,
    /// Required / optional / computed.
    pub kind: AttrKind,
    /// Scalar / list / block shape.
    pub shape: AttrShape,
    /// Base type of the leaf value.
    pub base: BaseType,
    /// Provider-specific value interpretation.
    pub format: ValueFormat,
}

/// Schema for one resource type.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceSchema {
    /// Full resource type name, e.g. `azurerm_subnet`.
    pub rtype: String,
    /// Attribute schemas keyed by dotted path.
    pub attrs: BTreeMap<String, AttrSchema>,
    /// Legal endpoint pairings (Class 3), keyed by inbound endpoint name.
    pub endpoints: BTreeMap<String, EndpointSpec>,
}

impl ResourceSchema {
    /// Attribute schema by dotted path.
    pub fn attr(&self, path: &str) -> Option<&AttrSchema> {
        self.attrs.get(path)
    }

    /// Endpoint spec by inbound endpoint name.
    pub fn endpoint(&self, in_endpoint: &str) -> Option<&EndpointSpec> {
        self.endpoints.get(in_endpoint)
    }

    /// Paths of all required attributes (excluding endpoints).
    pub fn required_attrs(&self) -> impl Iterator<Item = &AttrSchema> {
        self.attrs.values().filter(|a| a.kind == AttrKind::Required)
    }

    /// All attributes with an enum format.
    pub fn enum_attrs(&self) -> impl Iterator<Item = &AttrSchema> {
        self.attrs
            .values()
            .filter(|a| matches!(a.format, ValueFormat::Enum { .. }))
    }
}

/// The semantic knowledge base: schemas for every supported resource type.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct KnowledgeBase {
    /// Resource schemas keyed by full type name.
    pub resources: BTreeMap<String, ResourceSchema>,
    /// Known cloud locations (Class 2, provider-wide).
    pub locations: Vec<String>,
}

impl KnowledgeBase {
    /// Schema for a resource type, if supported ("attended" in the paper's
    /// terminology; unsupported types are "unattended" and left untouched by
    /// mutation).
    pub fn resource(&self, rtype: &str) -> Option<&ResourceSchema> {
        self.resources.get(rtype)
    }

    /// True if the type is covered by the KB.
    pub fn is_attended(&self, rtype: &str) -> bool {
        self.resources.contains_key(rtype)
    }

    /// All supported resource type names.
    pub fn types(&self) -> impl Iterator<Item = &str> {
        self.resources.keys().map(String::as_str)
    }

    /// Looks up the Class-2 format of `rtype.path`.
    pub fn format(&self, rtype: &str, path: &str) -> Option<&ValueFormat> {
        self.resources
            .get(rtype)
            .and_then(|r| r.attrs.get(path))
            .map(|a| &a.format)
    }

    /// Looks up the provider default of `rtype.path`, if any.
    pub fn default_of(&self, rtype: &str, path: &str) -> Option<Value> {
        self.format(rtype, path)
            .and_then(ValueFormat::default_value)
    }

    /// Merges another KB into this one. Attributes and endpoints present in
    /// `other` but missing here are added; existing entries are kept (the
    /// static schema wins over extracted facts).
    pub fn merge_from(&mut self, other: KnowledgeBase) {
        for (rtype, rs) in other.resources {
            let entry = self
                .resources
                .entry(rtype.clone())
                .or_insert_with(|| ResourceSchema {
                    rtype,
                    ..Default::default()
                });
            for (path, attr) in rs.attrs {
                entry.attrs.entry(path).or_insert(attr);
            }
            for (ep, spec) in rs.endpoints {
                entry.endpoints.entry(ep).or_insert(spec);
            }
        }
        for loc in other.locations {
            if !self.locations.contains(&loc) {
                self.locations.push(loc);
            }
        }
    }

    /// Total number of attribute entries across all resource types.
    pub fn attr_count(&self) -> usize {
        self.resources.values().map(|r| r.attrs.len()).sum()
    }
}

/// Fluent builder for resource schemas, used by the Azure data module.
pub struct SchemaBuilder {
    kb: KnowledgeBase,
    current: Option<ResourceSchema>,
}

impl SchemaBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        SchemaBuilder {
            kb: KnowledgeBase::default(),
            current: None,
        }
    }

    /// Sets the provider-wide location list.
    pub fn locations(mut self, locs: &[&str]) -> Self {
        self.kb.locations = locs.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Starts a new resource type.
    pub fn resource(mut self, rtype: &str) -> Self {
        self.flush();
        self.current = Some(ResourceSchema {
            rtype: rtype.to_string(),
            ..Default::default()
        });
        self
    }

    fn cur(&mut self) -> &mut ResourceSchema {
        self.current.as_mut().expect("attr before resource()")
    }

    /// Adds an attribute.
    pub fn attr(
        mut self,
        path: &str,
        kind: AttrKind,
        shape: AttrShape,
        base: BaseType,
        format: ValueFormat,
    ) -> Self {
        let a = AttrSchema {
            path: path.to_string(),
            kind,
            shape,
            base,
            format,
        };
        self.cur().attrs.insert(path.to_string(), a);
        self
    }

    /// Shorthand: a required plain string attribute.
    pub fn req_str(self, path: &str) -> Self {
        self.attr(
            path,
            AttrKind::Required,
            AttrShape::Scalar,
            BaseType::Str,
            ValueFormat::Plain,
        )
    }

    /// Shorthand: an optional plain string attribute.
    pub fn opt_str(self, path: &str) -> Self {
        self.attr(
            path,
            AttrKind::Optional,
            AttrShape::Scalar,
            BaseType::Str,
            ValueFormat::Plain,
        )
    }

    /// Shorthand: a required location attribute.
    pub fn location(self) -> Self {
        self.attr(
            "location",
            AttrKind::Required,
            AttrShape::Scalar,
            BaseType::Str,
            ValueFormat::Location,
        )
    }

    /// Shorthand: an enum attribute.
    pub fn enum_attr(
        self,
        path: &str,
        kind: AttrKind,
        values: &[&str],
        default: Option<&str>,
    ) -> Self {
        self.attr(
            path,
            kind,
            AttrShape::Scalar,
            BaseType::Str,
            ValueFormat::Enum {
                values: values.iter().map(|s| s.to_string()).collect(),
                default: default.map(str::to_string),
            },
        )
    }

    /// Shorthand: a computed `id` output attribute.
    pub fn id(self) -> Self {
        self.attr(
            "id",
            AttrKind::Computed,
            AttrShape::Scalar,
            BaseType::Str,
            ValueFormat::Plain,
        )
    }

    /// Adds a Class-3 endpoint.
    pub fn endpoint(
        mut self,
        in_endpoint: &str,
        kind: AttrKind,
        target_type: &str,
        target_attr: &str,
        many: bool,
    ) -> Self {
        let spec = EndpointSpec {
            in_endpoint: in_endpoint.to_string(),
            target_type: target_type.to_string(),
            target_attr: target_attr.to_string(),
            ordering: true,
            many,
        };
        self.cur().endpoints.insert(in_endpoint.to_string(), spec);
        // Endpoints are also attributes from the Class-1 perspective.
        let shape = if many {
            AttrShape::List
        } else {
            AttrShape::Scalar
        };
        let a = AttrSchema {
            path: in_endpoint.to_string(),
            kind,
            shape,
            base: BaseType::Ref,
            format: ValueFormat::Plain,
        };
        self.cur().attrs.insert(in_endpoint.to_string(), a);
        self
    }

    fn flush(&mut self) {
        if let Some(r) = self.current.take() {
            self.kb.resources.insert(r.rtype.clone(), r);
        }
    }

    /// Finalises the KB.
    pub fn build(mut self) -> KnowledgeBase {
        self.flush();
        self.kb
    }
}

impl Default for SchemaBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_schema() {
        let kb = SchemaBuilder::new()
            .locations(&["eastus", "westus"])
            .resource("azurerm_subnet")
            .req_str("name")
            .attr(
                "address_prefixes",
                AttrKind::Required,
                AttrShape::List,
                BaseType::Str,
                ValueFormat::Cidr,
            )
            .endpoint(
                "virtual_network_name",
                AttrKind::Required,
                "azurerm_virtual_network",
                "name",
                false,
            )
            .build();
        let s = kb.resource("azurerm_subnet").unwrap();
        assert_eq!(s.attrs.len(), 3);
        assert!(s.endpoint("virtual_network_name").is_some());
        assert_eq!(
            s.endpoint("virtual_network_name").unwrap().target_type,
            "azurerm_virtual_network"
        );
        assert!(kb.is_attended("azurerm_subnet"));
        assert!(!kb.is_attended("azurerm_cosmosdb_account"));
    }

    #[test]
    fn merge_prefers_existing() {
        let mut a = SchemaBuilder::new()
            .resource("t")
            .enum_attr("sku", AttrKind::Optional, &["Basic"], Some("Basic"))
            .build();
        let b = SchemaBuilder::new()
            .resource("t")
            .enum_attr("sku", AttrKind::Optional, &["Other"], None)
            .opt_str("extra")
            .build();
        a.merge_from(b);
        let t = a.resource("t").unwrap();
        assert_eq!(
            t.attr("sku").unwrap().format.enum_values().unwrap(),
            &["Basic".to_string()]
        );
        assert!(t.attr("extra").is_some());
    }

    #[test]
    fn default_value_lookup() {
        let kb = SchemaBuilder::new()
            .resource("t")
            .enum_attr(
                "sku",
                AttrKind::Optional,
                &["Basic", "Standard"],
                Some("Basic"),
            )
            .attr(
                "active_active",
                AttrKind::Optional,
                AttrShape::Scalar,
                BaseType::Bool,
                ValueFormat::BoolDefault { default: false },
            )
            .build();
        assert_eq!(kb.default_of("t", "sku"), Some(Value::s("Basic")));
        assert_eq!(
            kb.default_of("t", "active_active"),
            Some(Value::Bool(false))
        );
        assert_eq!(kb.default_of("t", "missing"), None);
    }
}
