//! Corpus-driven knowledge-base extraction.
//!
//! The paper gathers Class-2 facts (enum domains, CIDR-ness, defaults) and
//! Class-3 facts (reference semantics) "from the crawled Terraform
//! repositories, which contain common usage patterns for resource
//! attributes" (§3.1). This module implements that extraction: given a
//! corpus of compiled programs, it infers per-attribute value formats and
//! observed endpoint pairings, producing a [`KnowledgeBase`] that can be
//! merged with (or used instead of) the curated schema — the latter is the
//! "w/o KB" configuration ablated in Figure 7a.

use crate::schema::{
    AttrKind, AttrSchema, AttrShape, BaseType, EndpointSpec, KnowledgeBase, ResourceSchema,
    ValueFormat,
};
use std::collections::{BTreeMap, BTreeSet};
use zodiac_model::{Cidr, Program, Value};

/// Tunables for extraction.
#[derive(Debug, Clone)]
pub struct ExtractConfig {
    /// Maximum number of distinct string values for an attribute to be
    /// considered an enum.
    pub enum_max_distinct: usize,
    /// Minimum number of occurrences before an attribute is classified.
    pub min_occurrences: usize,
    /// Fraction of values that must parse as CIDR for CIDR classification.
    pub cidr_fraction: f64,
}

impl Default for ExtractConfig {
    fn default() -> Self {
        ExtractConfig {
            enum_max_distinct: 8,
            min_occurrences: 5,
            cidr_fraction: 0.9,
        }
    }
}

#[derive(Default)]
struct AttrStats {
    strings: BTreeMap<String, usize>,
    ints: usize,
    bools: usize,
    cidr_like: usize,
    total: usize,
    present_in: usize,
    programs_with_resource: usize,
}

/// Extracts a knowledge base from a corpus of compiled programs.
pub fn extract(programs: &[Program], cfg: &ExtractConfig) -> KnowledgeBase {
    let mut attr_stats: BTreeMap<(String, String), AttrStats> = BTreeMap::new();
    let mut endpoints: BTreeMap<(String, String), BTreeMap<(String, String), usize>> =
        BTreeMap::new();
    let mut endpoint_many: BTreeSet<(String, String)> = BTreeSet::new();
    let mut locations: BTreeMap<String, usize> = BTreeMap::new();
    let mut resource_counts: BTreeMap<String, usize> = BTreeMap::new();

    for program in programs {
        for r in program.resources() {
            *resource_counts.entry(r.rtype.clone()).or_default() += 1;
            // Walk leaf attributes.
            let mut leaves: Vec<(String, &Value)> = Vec::new();
            for (k, v) in &r.attrs {
                collect_leaves(k, v, &mut leaves);
            }
            for (path, v) in &leaves {
                let stats = attr_stats
                    .entry((r.rtype.clone(), path.clone()))
                    .or_default();
                stats.total += 1;
                match v {
                    Value::Str(s) => {
                        *stats.strings.entry(s.clone()).or_default() += 1;
                        if s.parse::<Cidr>().is_ok() {
                            stats.cidr_like += 1;
                        }
                        if path == "location" {
                            *locations.entry(s.clone()).or_default() += 1;
                        }
                    }
                    Value::Int(_) => stats.ints += 1,
                    Value::Bool(_) => stats.bools += 1,
                    _ => {}
                }
            }
            // References become Class-3 candidates. List-valued endpoints are
            // detected from the raw attribute shape.
            for (path, reference) in r.references() {
                let ep = zodiac_graph::endpoint_name(&path);
                let key = (r.rtype.clone(), ep.clone());
                *endpoints
                    .entry(key.clone())
                    .or_default()
                    .entry((reference.rtype.clone(), reference.attr.clone()))
                    .or_default() += 1;
                if path
                    .0
                    .last()
                    .is_some_and(|seg| seg.parse::<usize>().is_ok())
                {
                    endpoint_many.insert(key);
                }
            }
        }
        // Track presence for required/optional inference.
        for r in program.resources() {
            let present: BTreeSet<String> = {
                let mut leaves = Vec::new();
                for (k, v) in &r.attrs {
                    collect_leaves(k, v, &mut leaves);
                }
                leaves.into_iter().map(|(p, _)| p).collect()
            };
            for path in present {
                if let Some(st) = attr_stats.get_mut(&(r.rtype.clone(), path)) {
                    st.present_in += 1;
                }
            }
        }
    }
    for ((rtype, _), st) in attr_stats.iter_mut() {
        st.programs_with_resource = resource_counts.get(rtype).copied().unwrap_or(0);
    }

    let mut kb = KnowledgeBase {
        locations: {
            let mut locs: Vec<(String, usize)> = locations.into_iter().collect();
            locs.sort_by_key(|l| std::cmp::Reverse(l.1));
            locs.into_iter().map(|(l, _)| l).collect()
        },
        ..Default::default()
    };

    for ((rtype, path), st) in attr_stats {
        if st.total < cfg.min_occurrences {
            continue;
        }
        let format = classify(&st, &path, cfg);
        let base = if st.ints > st.total / 2 {
            BaseType::Int
        } else if st.bools > st.total / 2 {
            BaseType::Bool
        } else {
            BaseType::Str
        };
        // Required inference: present in (almost) every instance.
        let kind = if st.present_in * 100 >= st.programs_with_resource * 95 {
            AttrKind::Required
        } else {
            AttrKind::Optional
        };
        let entry = kb
            .resources
            .entry(rtype.clone())
            .or_insert_with(|| ResourceSchema {
                rtype,
                ..Default::default()
            });
        entry.attrs.insert(
            path.clone(),
            AttrSchema {
                path,
                kind,
                shape: AttrShape::Scalar,
                base,
                format,
            },
        );
    }

    for ((rtype, ep), targets) in endpoints {
        // Take the dominant observed target as the legal pairing.
        let Some(((ttype, tattr), _count)) = targets.iter().max_by_key(|(_, c)| **c) else {
            continue;
        };
        let many = endpoint_many.contains(&(rtype.clone(), ep.clone()));
        let entry = kb
            .resources
            .entry(rtype.clone())
            .or_insert_with(|| ResourceSchema {
                rtype: rtype.clone(),
                ..Default::default()
            });
        entry.endpoints.insert(
            ep.clone(),
            EndpointSpec {
                in_endpoint: ep,
                target_type: ttype.clone(),
                target_attr: tattr.clone(),
                ordering: true,
                many,
            },
        );
    }

    kb
}

fn classify(st: &AttrStats, path: &str, cfg: &ExtractConfig) -> ValueFormat {
    let str_total: usize = st.strings.values().sum();
    if str_total > 0 && (st.cidr_like as f64) / (str_total as f64) >= cfg.cidr_fraction {
        return ValueFormat::Cidr;
    }
    if path == "location" {
        return ValueFormat::Location;
    }
    if st.bools > 0 && st.bools * 2 >= st.total {
        return ValueFormat::BoolDefault { default: false };
    }
    if str_total >= cfg.min_occurrences
        && !st.strings.is_empty()
        && st.strings.len() <= cfg.enum_max_distinct
        // Enum heuristics: values recur (not unique names).
        && st.strings.values().all(|&c| c >= 2)
    {
        let mut values: Vec<(String, usize)> = st.strings.clone().into_iter().collect();
        values.sort_by_key(|v| std::cmp::Reverse(v.1));
        let default = values.first().map(|(v, _)| v.clone());
        return ValueFormat::Enum {
            values: values.into_iter().map(|(v, _)| v).collect(),
            default,
        };
    }
    ValueFormat::Plain
}

fn collect_leaves<'a>(path: &str, v: &'a Value, out: &mut Vec<(String, &'a Value)>) {
    match v {
        Value::Map(m) => {
            for (k, inner) in m {
                collect_leaves(&format!("{path}.{k}"), inner, out);
            }
        }
        Value::List(l) => {
            for inner in l {
                // Indices stripped: all elements contribute to the same path.
                match inner {
                    Value::Map(_) | Value::List(_) => collect_leaves(path, inner, out),
                    other => out.push((path.to_string(), other)),
                }
            }
        }
        Value::Ref(_) => {} // References are Class-3, handled separately.
        other => out.push((path.to_string(), other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zodiac_model::{Program, Resource};

    fn corpus() -> Vec<Program> {
        (0..10)
            .map(|i| {
                Program::new()
                    .with(
                        Resource::new("azurerm_public_ip", "ip")
                            .with("name", format!("ip-{i}"))
                            .with("location", "eastus")
                            .with("sku", if i % 2 == 0 { "Basic" } else { "Standard" })
                            .with(
                                "allocation_method",
                                if i % 2 == 0 { "Dynamic" } else { "Static" },
                            ),
                    )
                    .with(Resource::new("azurerm_subnet", "s").with(
                        "address_prefixes",
                        Value::List(vec![Value::s(format!("10.0.{i}.0/24"))]),
                    ))
                    .with(
                        Resource::new("azurerm_network_interface", "nic")
                            .with("subnet_id", Value::r("azurerm_subnet", "s", "id")),
                    )
            })
            .collect()
    }

    #[test]
    fn infers_enums() {
        let kb = extract(&corpus(), &ExtractConfig::default());
        let fmt = kb.format("azurerm_public_ip", "sku").unwrap();
        let values = fmt.enum_values().unwrap();
        assert!(values.contains(&"Basic".to_string()));
        assert!(values.contains(&"Standard".to_string()));
    }

    #[test]
    fn names_are_not_enums() {
        let kb = extract(&corpus(), &ExtractConfig::default());
        let fmt = kb.format("azurerm_public_ip", "name").unwrap();
        assert_eq!(fmt, &ValueFormat::Plain);
    }

    #[test]
    fn infers_cidr() {
        let kb = extract(&corpus(), &ExtractConfig::default());
        let fmt = kb.format("azurerm_subnet", "address_prefixes").unwrap();
        assert_eq!(fmt, &ValueFormat::Cidr);
    }

    #[test]
    fn infers_endpoints() {
        let kb = extract(&corpus(), &ExtractConfig::default());
        let nic = kb.resource("azurerm_network_interface").unwrap();
        let ep = nic.endpoint("subnet_id").unwrap();
        assert_eq!(ep.target_type, "azurerm_subnet");
        assert_eq!(ep.target_attr, "id");
    }

    #[test]
    fn collects_locations() {
        let kb = extract(&corpus(), &ExtractConfig::default());
        assert!(kb.locations.contains(&"eastus".to_string()));
    }

    #[test]
    fn respects_min_occurrences() {
        let one = vec![Program::new().with(Resource::new("t", "r").with("sku", "Basic"))];
        let kb = extract(&one, &ExtractConfig::default());
        assert!(kb.resource("t").is_none());
    }
}
