//! The curated Azure provider schema (Class 1–3 base facts).
//!
//! This encodes the subset of the `azurerm` Terraform provider that the
//! paper's 52 popular resource types revolve around: core networking,
//! compute, storage, and gateway resources, with the attribute kinds, enum
//! domains, defaults, reserved values, and endpoint legality that the mining
//! and validation phases consume.

use crate::docs;
use crate::schema::{
    AttrKind::{self, Optional, Required},
    AttrShape::{self, List, ListBlock, Scalar},
    BaseType::{self, Bool, Int, Str},
    KnowledgeBase, SchemaBuilder, ValueFormat,
};

const LOCATIONS: &[&str] = &[
    "eastus",
    "eastus2",
    "westus",
    "westus2",
    "westus3",
    "centralus",
    "northeurope",
    "westeurope",
    "uksouth",
    "southeastasia",
    "japaneast",
    "australiaeast",
];

/// All locations the provider schema knows about.
pub fn locations() -> Vec<String> {
    LOCATIONS.iter().map(|s| s.to_string()).collect()
}

fn cidr_list(b: SchemaBuilder, path: &str, kind: AttrKind) -> SchemaBuilder {
    b.attr(path, kind, List, Str, ValueFormat::Cidr)
}

fn cidr(b: SchemaBuilder, path: &str, kind: AttrKind) -> SchemaBuilder {
    b.attr(path, kind, Scalar, Str, ValueFormat::Cidr)
}

fn bool_attr(b: SchemaBuilder, path: &str, default: bool) -> SchemaBuilder {
    b.attr(
        path,
        Optional,
        Scalar,
        Bool,
        ValueFormat::BoolDefault { default },
    )
}

fn int_attr(b: SchemaBuilder, path: &str, kind: AttrKind, min: i64, max: i64) -> SchemaBuilder {
    b.attr(path, kind, Scalar, Int, ValueFormat::IntRange { min, max })
}

fn block(b: SchemaBuilder, path: &str, kind: AttrKind, shape: AttrShape) -> SchemaBuilder {
    b.attr(path, kind, shape, BaseType::Str, ValueFormat::Plain)
}

/// Builds the Azure knowledge base.
pub fn build() -> KnowledgeBase {
    let mut b = SchemaBuilder::new().locations(LOCATIONS);

    // --- Resource group -------------------------------------------------
    b = b
        .resource("azurerm_resource_group")
        .req_str("name")
        .location()
        .id();

    // --- Virtual network (VPC) ------------------------------------------
    b = b
        .resource("azurerm_virtual_network")
        .req_str("name")
        .location()
        .endpoint(
            "resource_group_name",
            Required,
            "azurerm_resource_group",
            "name",
            false,
        )
        .id();
    b = cidr_list(b, "address_space", Required);
    b = b.opt_str("dns_servers");

    // --- Subnet ----------------------------------------------------------
    b = b
        .resource("azurerm_subnet")
        .attr(
            "name",
            Required,
            Scalar,
            Str,
            ValueFormat::ReservedName {
                reserved: docs::RESERVED_SUBNETS
                    .iter()
                    .map(|(n, _)| n.to_string())
                    .collect(),
            },
        )
        .endpoint(
            "resource_group_name",
            Required,
            "azurerm_resource_group",
            "name",
            false,
        )
        .endpoint(
            "virtual_network_name",
            Required,
            "azurerm_virtual_network",
            "name",
            false,
        )
        .id();
    b = cidr_list(b, "address_prefixes", Required);
    b = block(b, "delegation", Optional, Scalar);
    b = b
        .opt_str("delegation.name")
        .opt_str("delegation.service_delegation.name");

    // --- Network interface (NIC) -----------------------------------------
    b = b
        .resource("azurerm_network_interface")
        .req_str("name")
        .location()
        .endpoint(
            "resource_group_name",
            Required,
            "azurerm_resource_group",
            "name",
            false,
        )
        .id();
    b = block(b, "ip_configuration", Required, ListBlock);
    b = b
        .req_str("ip_configuration.name")
        .endpoint(
            "ip_configuration.subnet_id",
            Required,
            "azurerm_subnet",
            "id",
            false,
        )
        .enum_attr(
            "ip_configuration.private_ip_address_allocation",
            Required,
            &["Dynamic", "Static"],
            None,
        )
        .opt_str("ip_configuration.private_ip_address")
        .endpoint(
            "ip_configuration.public_ip_address_id",
            Optional,
            "azurerm_public_ip",
            "id",
            false,
        );

    // --- Public IP ---------------------------------------------------------
    b = b
        .resource("azurerm_public_ip")
        .req_str("name")
        .location()
        .endpoint(
            "resource_group_name",
            Required,
            "azurerm_resource_group",
            "name",
            false,
        )
        .enum_attr("sku", Optional, &["Basic", "Standard"], Some("Basic"))
        .enum_attr("allocation_method", Required, &["Static", "Dynamic"], None)
        .id();

    // --- Network security group (SG) ----------------------------------------
    b = b
        .resource("azurerm_network_security_group")
        .req_str("name")
        .location()
        .endpoint(
            "resource_group_name",
            Required,
            "azurerm_resource_group",
            "name",
            false,
        )
        .id();
    b = block(b, "security_rule", Optional, ListBlock);
    b = b
        .req_str("security_rule.name")
        .enum_attr(
            "security_rule.direction",
            Required,
            &["Inbound", "Outbound"],
            None,
        )
        .enum_attr("security_rule.access", Required, &["Allow", "Deny"], None)
        .enum_attr(
            "security_rule.protocol",
            Required,
            &["Tcp", "Udp", "Icmp", "*"],
            None,
        )
        .attr(
            "security_rule.source_port_range",
            Optional,
            Scalar,
            Str,
            ValueFormat::Port,
        )
        .attr(
            "security_rule.destination_port_range",
            Optional,
            Scalar,
            Str,
            ValueFormat::Port,
        )
        .opt_str("security_rule.source_address_prefix")
        .opt_str("security_rule.destination_address_prefix");
    b = int_attr(b, "security_rule.priority", Required, 100, 4096);

    b = b
        .resource("azurerm_subnet_network_security_group_association")
        .endpoint("subnet_id", Required, "azurerm_subnet", "id", false)
        .endpoint(
            "network_security_group_id",
            Required,
            "azurerm_network_security_group",
            "id",
            false,
        )
        .id();

    // --- Virtual machine (VM) ------------------------------------------------
    b = b
        .resource("azurerm_linux_virtual_machine")
        .req_str("name")
        .location()
        .endpoint(
            "resource_group_name",
            Required,
            "azurerm_resource_group",
            "name",
            false,
        )
        .enum_attr("size", Required, &docs::vm_sku_names(), None)
        .req_str("admin_username")
        .opt_str("admin_password")
        .enum_attr("priority", Optional, &["Regular", "Spot"], Some("Regular"))
        .enum_attr("eviction_policy", Optional, &["Deallocate", "Delete"], None)
        .endpoint(
            "network_interface_ids",
            Required,
            "azurerm_network_interface",
            "id",
            true,
        )
        .endpoint(
            "availability_set_id",
            Optional,
            "azurerm_availability_set",
            "id",
            false,
        )
        .enum_attr(
            "create_option",
            Optional,
            &["Image", "Attach"],
            Some("Image"),
        )
        .id();
    b = bool_attr(b, "disable_password_authentication", true);
    b = block(b, "os_disk", Required, Scalar);
    b = b
        .opt_str("os_disk.name")
        .enum_attr(
            "os_disk.caching",
            Required,
            &["None", "ReadOnly", "ReadWrite"],
            None,
        )
        .enum_attr(
            "os_disk.storage_account_type",
            Required,
            &["Standard_LRS", "StandardSSD_LRS", "Premium_LRS"],
            None,
        );
    b = block(b, "source_image_reference", Optional, Scalar);
    b = b
        .opt_str("source_image_reference.publisher")
        .opt_str("source_image_reference.offer")
        .opt_str("source_image_reference.sku")
        .opt_str("source_image_reference.version")
        .opt_str("zone");

    // --- Managed disk / attachment ----------------------------------------------
    b = b
        .resource("azurerm_managed_disk")
        .req_str("name")
        .location()
        .endpoint(
            "resource_group_name",
            Required,
            "azurerm_resource_group",
            "name",
            false,
        )
        .enum_attr(
            "storage_account_type",
            Required,
            &[
                "Standard_LRS",
                "StandardSSD_LRS",
                "Premium_LRS",
                "UltraSSD_LRS",
            ],
            None,
        )
        .enum_attr(
            "create_option",
            Required,
            &["Empty", "Copy", "FromImage"],
            None,
        )
        .endpoint(
            "source_resource_id",
            Optional,
            "azurerm_managed_disk",
            "id",
            false,
        )
        .id();
    b = int_attr(b, "disk_size_gb", Optional, 1, 32767);

    b = b
        .resource("azurerm_virtual_machine_data_disk_attachment")
        .endpoint(
            "virtual_machine_id",
            Required,
            "azurerm_linux_virtual_machine",
            "id",
            false,
        )
        .endpoint(
            "managed_disk_id",
            Required,
            "azurerm_managed_disk",
            "id",
            false,
        )
        .enum_attr(
            "caching",
            Required,
            &["None", "ReadOnly", "ReadWrite"],
            None,
        )
        .id();
    b = int_attr(b, "lun", Required, 0, 63);

    // --- VPN gateway family ---------------------------------------------------
    b = b
        .resource("azurerm_virtual_network_gateway")
        .req_str("name")
        .location()
        .endpoint(
            "resource_group_name",
            Required,
            "azurerm_resource_group",
            "name",
            false,
        )
        .enum_attr("type", Required, &["Vpn", "ExpressRoute"], None)
        .enum_attr(
            "vpn_type",
            Optional,
            &["RouteBased", "PolicyBased"],
            Some("RouteBased"),
        )
        .enum_attr(
            "sku",
            Required,
            &docs::GW_SKUS.iter().map(|g| g.sku).collect::<Vec<_>>(),
            None,
        )
        .id();
    b = bool_attr(b, "active_active", false);
    b = block(b, "ip_configuration", Required, ListBlock);
    b = b
        .opt_str("ip_configuration.name")
        .endpoint(
            "ip_configuration.public_ip_address_id",
            Required,
            "azurerm_public_ip",
            "id",
            false,
        )
        .endpoint(
            "ip_configuration.subnet_id",
            Required,
            "azurerm_subnet",
            "id",
            false,
        )
        .enum_attr(
            "ip_configuration.private_ip_address_allocation",
            Optional,
            &["Dynamic", "Static"],
            Some("Dynamic"),
        );

    b = b
        .resource("azurerm_local_network_gateway")
        .req_str("name")
        .location()
        .endpoint(
            "resource_group_name",
            Required,
            "azurerm_resource_group",
            "name",
            false,
        )
        .req_str("gateway_address")
        .id();
    b = cidr_list(b, "address_space", Required);

    b = b
        .resource("azurerm_virtual_network_gateway_connection")
        .req_str("name")
        .location()
        .endpoint(
            "resource_group_name",
            Required,
            "azurerm_resource_group",
            "name",
            false,
        )
        .enum_attr(
            "type",
            Required,
            &["IPsec", "Vnet2Vnet", "ExpressRoute"],
            None,
        )
        .endpoint(
            "virtual_network_gateway_id",
            Required,
            "azurerm_virtual_network_gateway",
            "id",
            false,
        )
        .endpoint(
            "peer_virtual_network_gateway_id",
            Optional,
            "azurerm_virtual_network_gateway",
            "id",
            false,
        )
        .endpoint(
            "local_network_gateway_id",
            Optional,
            "azurerm_local_network_gateway",
            "id",
            false,
        )
        .opt_str("shared_key")
        .id();

    b = b
        .resource("azurerm_virtual_network_peering")
        .req_str("name")
        .endpoint(
            "resource_group_name",
            Required,
            "azurerm_resource_group",
            "name",
            false,
        )
        .endpoint(
            "virtual_network_name",
            Required,
            "azurerm_virtual_network",
            "name",
            false,
        )
        .endpoint(
            "remote_virtual_network_id",
            Required,
            "azurerm_virtual_network",
            "id",
            false,
        )
        .id();
    b = bool_attr(b, "allow_forwarded_traffic", false);
    b = bool_attr(b, "allow_gateway_transit", false);

    // --- Routing -----------------------------------------------------------------
    b = b
        .resource("azurerm_route_table")
        .req_str("name")
        .location()
        .endpoint(
            "resource_group_name",
            Required,
            "azurerm_resource_group",
            "name",
            false,
        )
        .id();
    b = bool_attr(b, "bgp_route_propagation_enabled", true);

    b = b
        .resource("azurerm_route")
        .req_str("name")
        .endpoint(
            "resource_group_name",
            Required,
            "azurerm_resource_group",
            "name",
            false,
        )
        .endpoint(
            "route_table_name",
            Required,
            "azurerm_route_table",
            "name",
            false,
        )
        .enum_attr(
            "next_hop_type",
            Required,
            &[
                "VirtualNetworkGateway",
                "VnetLocal",
                "Internet",
                "VirtualAppliance",
                "None",
            ],
            None,
        )
        .opt_str("next_hop_in_ip_address")
        .id();
    b = cidr(b, "address_prefix", Required);

    b = b
        .resource("azurerm_subnet_route_table_association")
        .endpoint("subnet_id", Required, "azurerm_subnet", "id", false)
        .endpoint(
            "route_table_id",
            Required,
            "azurerm_route_table",
            "id",
            false,
        )
        .id();

    // --- Firewall -----------------------------------------------------------------
    b = b
        .resource("azurerm_firewall")
        .req_str("name")
        .location()
        .endpoint(
            "resource_group_name",
            Required,
            "azurerm_resource_group",
            "name",
            false,
        )
        .enum_attr("sku_name", Required, &["AZFW_VNet", "AZFW_Hub"], None)
        .enum_attr(
            "sku_tier",
            Required,
            &["Basic", "Standard", "Premium"],
            None,
        )
        .id();
    b = block(b, "ip_configuration", Required, ListBlock);
    b = b
        .opt_str("ip_configuration.name")
        .endpoint(
            "ip_configuration.subnet_id",
            Required,
            "azurerm_subnet",
            "id",
            false,
        )
        .endpoint(
            "ip_configuration.public_ip_address_id",
            Required,
            "azurerm_public_ip",
            "id",
            false,
        );

    // --- Load balancer ---------------------------------------------------------------
    b = b
        .resource("azurerm_lb")
        .req_str("name")
        .location()
        .endpoint(
            "resource_group_name",
            Required,
            "azurerm_resource_group",
            "name",
            false,
        )
        .enum_attr("sku", Optional, &["Basic", "Standard"], Some("Basic"))
        .id();
    b = block(b, "frontend_ip_configuration", Optional, ListBlock);
    b = b
        .opt_str("frontend_ip_configuration.name")
        .endpoint(
            "frontend_ip_configuration.public_ip_address_id",
            Optional,
            "azurerm_public_ip",
            "id",
            false,
        )
        .endpoint(
            "frontend_ip_configuration.subnet_id",
            Optional,
            "azurerm_subnet",
            "id",
            false,
        );

    b = b
        .resource("azurerm_lb_backend_address_pool")
        .req_str("name")
        .endpoint("loadbalancer_id", Required, "azurerm_lb", "id", false)
        .id();

    b = b
        .resource("azurerm_network_interface_backend_address_pool_association")
        .endpoint(
            "network_interface_id",
            Required,
            "azurerm_network_interface",
            "id",
            false,
        )
        .endpoint(
            "backend_address_pool_id",
            Required,
            "azurerm_lb_backend_address_pool",
            "id",
            false,
        )
        .req_str("ip_configuration_name")
        .id();

    // --- Application gateway ---------------------------------------------------------
    b = b
        .resource("azurerm_application_gateway")
        .req_str("name")
        .location()
        .endpoint(
            "resource_group_name",
            Required,
            "azurerm_resource_group",
            "name",
            false,
        )
        .id();
    b = block(b, "sku", Required, Scalar);
    b = b.enum_attr(
        "sku.name",
        Required,
        &[
            "Standard_Small",
            "Standard_Medium",
            "Standard_v2",
            "WAF_Medium",
            "WAF_v2",
        ],
        None,
    );
    b = b.enum_attr(
        "sku.tier",
        Required,
        &["Standard", "Standard_v2", "WAF", "WAF_v2"],
        None,
    );
    b = int_attr(b, "sku.capacity", Optional, 1, 125);
    b = block(b, "gateway_ip_configuration", Required, ListBlock);
    b = b.opt_str("gateway_ip_configuration.name").endpoint(
        "gateway_ip_configuration.subnet_id",
        Required,
        "azurerm_subnet",
        "id",
        false,
    );
    b = block(b, "frontend_ip_configuration", Required, ListBlock);
    b = b.opt_str("frontend_ip_configuration.name").endpoint(
        "frontend_ip_configuration.public_ip_address_id",
        Required,
        "azurerm_public_ip",
        "id",
        false,
    );
    b = block(b, "backend_address_pool", Required, ListBlock);
    b = b.opt_str("backend_address_pool.name");
    b = block(b, "request_routing_rule", Required, ListBlock);
    b = b.opt_str("request_routing_rule.name").enum_attr(
        "request_routing_rule.rule_type",
        Required,
        &["Basic", "PathBasedRouting"],
        None,
    );
    b = int_attr(b, "request_routing_rule.priority", Optional, 1, 20000);
    b = block(b, "waf_configuration", Optional, Scalar);
    b = bool_attr(b, "waf_configuration.enabled", true);

    b = b
        .resource("azurerm_network_interface_application_gateway_backend_address_pool_association")
        .endpoint(
            "network_interface_id",
            Required,
            "azurerm_network_interface",
            "id",
            false,
        )
        .endpoint(
            "backend_address_pool_id",
            Required,
            "azurerm_application_gateway",
            "backend_address_pool_id",
            false,
        )
        .req_str("ip_configuration_name")
        .id();

    // --- Storage ------------------------------------------------------------------------
    b = b
        .resource("azurerm_storage_account")
        .req_str("name")
        .location()
        .endpoint(
            "resource_group_name",
            Required,
            "azurerm_resource_group",
            "name",
            false,
        )
        .enum_attr("account_tier", Required, &["Standard", "Premium"], None)
        .enum_attr(
            "account_replication_type",
            Required,
            &["LRS", "GRS", "RAGRS", "ZRS", "GZRS", "RAGZRS"],
            None,
        )
        .enum_attr(
            "account_kind",
            Optional,
            &["StorageV2", "Storage", "BlockBlobStorage", "FileStorage"],
            Some("StorageV2"),
        )
        .enum_attr("access_tier", Optional, &["Hot", "Cool"], Some("Hot"))
        .id();

    b = b
        .resource("azurerm_storage_container")
        .req_str("name")
        .endpoint(
            "storage_account_name",
            Required,
            "azurerm_storage_account",
            "name",
            false,
        )
        .enum_attr(
            "container_access_type",
            Optional,
            &["private", "blob", "container"],
            Some("private"),
        )
        .id();

    // --- NAT gateway -----------------------------------------------------------------------
    b = b
        .resource("azurerm_nat_gateway")
        .req_str("name")
        .location()
        .endpoint(
            "resource_group_name",
            Required,
            "azurerm_resource_group",
            "name",
            false,
        )
        .enum_attr("sku_name", Optional, &["Standard"], Some("Standard"))
        .id();

    b = b
        .resource("azurerm_nat_gateway_public_ip_association")
        .endpoint(
            "nat_gateway_id",
            Required,
            "azurerm_nat_gateway",
            "id",
            false,
        )
        .endpoint(
            "public_ip_address_id",
            Required,
            "azurerm_public_ip",
            "id",
            false,
        )
        .id();

    b = b
        .resource("azurerm_subnet_nat_gateway_association")
        .endpoint("subnet_id", Required, "azurerm_subnet", "id", false)
        .endpoint(
            "nat_gateway_id",
            Required,
            "azurerm_nat_gateway",
            "id",
            false,
        )
        .id();

    // --- Availability set / bastion / key vault / DNS --------------------------------------
    b = b
        .resource("azurerm_availability_set")
        .req_str("name")
        .location()
        .endpoint(
            "resource_group_name",
            Required,
            "azurerm_resource_group",
            "name",
            false,
        )
        .id();
    b = int_attr(b, "platform_fault_domain_count", Optional, 1, 3);
    b = bool_attr(b, "managed", true);

    b = b
        .resource("azurerm_bastion_host")
        .req_str("name")
        .location()
        .endpoint(
            "resource_group_name",
            Required,
            "azurerm_resource_group",
            "name",
            false,
        )
        .id();
    b = block(b, "ip_configuration", Required, Scalar);
    b = b
        .opt_str("ip_configuration.name")
        .endpoint(
            "ip_configuration.subnet_id",
            Required,
            "azurerm_subnet",
            "id",
            false,
        )
        .endpoint(
            "ip_configuration.public_ip_address_id",
            Required,
            "azurerm_public_ip",
            "id",
            false,
        );

    b = b
        .resource("azurerm_key_vault")
        .req_str("name")
        .location()
        .endpoint(
            "resource_group_name",
            Required,
            "azurerm_resource_group",
            "name",
            false,
        )
        .enum_attr("sku_name", Required, &["standard", "premium"], None)
        .req_str("tenant_id")
        .id();
    b = bool_attr(b, "purge_protection_enabled", false);

    b = b
        .resource("azurerm_dns_zone")
        .req_str("name")
        .endpoint(
            "resource_group_name",
            Required,
            "azurerm_resource_group",
            "name",
            false,
        )
        .id();

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ValueFormat;

    #[test]
    fn covers_core_types() {
        let kb = build();
        for t in [
            "azurerm_resource_group",
            "azurerm_virtual_network",
            "azurerm_subnet",
            "azurerm_network_interface",
            "azurerm_public_ip",
            "azurerm_linux_virtual_machine",
            "azurerm_virtual_network_gateway",
            "azurerm_application_gateway",
            "azurerm_storage_account",
            "azurerm_firewall",
        ] {
            assert!(kb.is_attended(t), "{t} missing");
        }
        assert!(
            kb.resources.len() >= 30,
            "only {} types",
            kb.resources.len()
        );
    }

    #[test]
    fn subnet_name_is_reserved_format() {
        let kb = build();
        let fmt = kb.format("azurerm_subnet", "name").unwrap();
        match fmt {
            ValueFormat::ReservedName { reserved } => {
                assert!(reserved.contains(&"GatewaySubnet".to_string()));
            }
            other => panic!("unexpected format: {other:?}"),
        }
    }

    #[test]
    fn vm_endpoints_are_class3() {
        let kb = build();
        let vm = kb.resource("azurerm_linux_virtual_machine").unwrap();
        let ep = vm.endpoint("network_interface_ids").unwrap();
        assert_eq!(ep.target_type, "azurerm_network_interface");
        assert!(ep.many);
        let nic = kb.resource("azurerm_network_interface").unwrap();
        let sub = nic.endpoint("ip_configuration.subnet_id").unwrap();
        assert_eq!(sub.target_type, "azurerm_subnet");
        assert!(!sub.many);
    }

    #[test]
    fn public_ip_defaults() {
        let kb = build();
        assert_eq!(
            kb.default_of("azurerm_public_ip", "sku"),
            Some(zodiac_model::Value::s("Basic"))
        );
    }

    #[test]
    fn endpoint_targets_exist_in_kb() {
        let kb = build();
        for rs in kb.resources.values() {
            for ep in rs.endpoints.values() {
                assert!(
                    kb.is_attended(&ep.target_type),
                    "{}.{} targets unknown type {}",
                    rs.rtype,
                    ep.in_endpoint,
                    ep.target_type
                );
            }
        }
    }

    #[test]
    fn attr_counts_vary_by_complexity() {
        let kb = build();
        let vm = kb
            .resource("azurerm_linux_virtual_machine")
            .unwrap()
            .attrs
            .len();
        let peering = kb
            .resource("azurerm_virtual_network_peering")
            .unwrap()
            .attrs
            .len();
        assert!(
            vm > peering,
            "VM ({vm}) should have more attrs than peering ({peering})"
        );
    }
}
