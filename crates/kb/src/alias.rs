//! Short aliases for resource types, matching the paper's notation
//! (`VM`, `NIC`, `SUBNET`, `GW`, ...).

/// Alias table: `(short, full)` pairs.
const ALIASES: &[(&str, &str)] = &[
    ("RG", "azurerm_resource_group"),
    ("VPC", "azurerm_virtual_network"),
    ("SUBNET", "azurerm_subnet"),
    ("NIC", "azurerm_network_interface"),
    ("IP", "azurerm_public_ip"),
    ("SG", "azurerm_network_security_group"),
    ("SGRULE", "azurerm_network_security_rule"),
    (
        "SGASSOC",
        "azurerm_subnet_network_security_group_association",
    ),
    ("VM", "azurerm_linux_virtual_machine"),
    ("DISK", "azurerm_managed_disk"),
    ("ATTACH", "azurerm_virtual_machine_data_disk_attachment"),
    ("GW", "azurerm_virtual_network_gateway"),
    ("LGW", "azurerm_local_network_gateway"),
    ("TUNNEL", "azurerm_virtual_network_gateway_connection"),
    ("PEERING", "azurerm_virtual_network_peering"),
    ("RT", "azurerm_route_table"),
    ("ROUTE", "azurerm_route"),
    ("RTASSOC", "azurerm_subnet_route_table_association"),
    ("FW", "azurerm_firewall"),
    ("LB", "azurerm_lb"),
    ("LBPOOL", "azurerm_lb_backend_address_pool"),
    (
        "LBASSOC",
        "azurerm_network_interface_backend_address_pool_association",
    ),
    ("APPGW", "azurerm_application_gateway"),
    (
        "AGWASSOC",
        "azurerm_network_interface_application_gateway_backend_address_pool_association",
    ),
    ("SA", "azurerm_storage_account"),
    ("CONTAINER", "azurerm_storage_container"),
    ("NAT", "azurerm_nat_gateway"),
    ("NATIP", "azurerm_nat_gateway_public_ip_association"),
    ("NATASSOC", "azurerm_subnet_nat_gateway_association"),
    ("AVSET", "azurerm_availability_set"),
    ("BASTION", "azurerm_bastion_host"),
    ("KV", "azurerm_key_vault"),
    ("DNS", "azurerm_dns_zone"),
];

/// Maps a full resource type to its short alias; falls back to the input.
pub fn short_name(rtype: &str) -> &str {
    ALIASES
        .iter()
        .find(|(_, full)| *full == rtype)
        .map(|(short, _)| *short)
        .unwrap_or(rtype)
}

/// Maps a short alias to the full resource type; falls back to the input.
pub fn long_name(alias: &str) -> &str {
    ALIASES
        .iter()
        .find(|(short, _)| *short == alias)
        .map(|(_, full)| *full)
        .unwrap_or(alias)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        assert_eq!(short_name("azurerm_linux_virtual_machine"), "VM");
        assert_eq!(long_name("VM"), "azurerm_linux_virtual_machine");
        assert_eq!(long_name(short_name("azurerm_subnet")), "azurerm_subnet");
    }

    #[test]
    fn unknown_passes_through() {
        assert_eq!(
            short_name("azurerm_cosmosdb_account"),
            "azurerm_cosmosdb_account"
        );
        assert_eq!(long_name("WHATEVER"), "WHATEVER");
    }

    #[test]
    fn aliases_are_unique() {
        use std::collections::HashSet;
        let shorts: HashSet<_> = ALIASES.iter().map(|(s, _)| s).collect();
        let fulls: HashSet<_> = ALIASES.iter().map(|(_, f)| f).collect();
        assert_eq!(shorts.len(), ALIASES.len());
        assert_eq!(fulls.len(), ALIASES.len());
    }
}
