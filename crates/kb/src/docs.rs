//! Encoded provider documentation tables.
//!
//! The paper's LLM interpolation step asks GPT-4 questions like "for a sf2
//! sku VM, what is the maximum number of NICs allowed?" and requires the
//! model to ground its answer in cloud provider documentation (sku tables).
//! We encode those tables directly; the interpolation oracle in
//! `zodiac-mining` reads them (optionally with injected noise to model
//! hallucination), and the cloud simulator treats them as ground truth.

/// Per-VM-sku limits (Azure VM size documentation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmSkuLimits {
    /// The sku name, e.g. `Standard_F2s_v2`.
    pub sku: &'static str,
    /// Maximum number of NICs attachable.
    pub max_nics: u32,
    /// Maximum number of data disks attachable.
    pub max_data_disks: u32,
}

/// The VM sku limit table.
pub const VM_SKUS: &[VmSkuLimits] = &[
    VmSkuLimits {
        sku: "Standard_B1ls",
        max_nics: 2,
        max_data_disks: 2,
    },
    VmSkuLimits {
        sku: "Standard_B1s",
        max_nics: 2,
        max_data_disks: 2,
    },
    VmSkuLimits {
        sku: "Standard_B2s",
        max_nics: 3,
        max_data_disks: 4,
    },
    VmSkuLimits {
        sku: "Standard_B2ms",
        max_nics: 3,
        max_data_disks: 4,
    },
    VmSkuLimits {
        sku: "Standard_D2s_v3",
        max_nics: 2,
        max_data_disks: 4,
    },
    VmSkuLimits {
        sku: "Standard_D4s_v3",
        max_nics: 2,
        max_data_disks: 8,
    },
    VmSkuLimits {
        sku: "Standard_D8s_v3",
        max_nics: 4,
        max_data_disks: 16,
    },
    VmSkuLimits {
        sku: "Standard_DS1_v2",
        max_nics: 2,
        max_data_disks: 4,
    },
    VmSkuLimits {
        sku: "Standard_DS2_v2",
        max_nics: 2,
        max_data_disks: 8,
    },
    VmSkuLimits {
        sku: "Standard_F2s_v2",
        max_nics: 2,
        max_data_disks: 4,
    },
    VmSkuLimits {
        sku: "Standard_F4s_v2",
        max_nics: 4,
        max_data_disks: 8,
    },
    VmSkuLimits {
        sku: "Standard_F8s_v2",
        max_nics: 4,
        max_data_disks: 16,
    },
    VmSkuLimits {
        sku: "Standard_E2s_v3",
        max_nics: 2,
        max_data_disks: 4,
    },
    VmSkuLimits {
        sku: "Standard_E4s_v3",
        max_nics: 2,
        max_data_disks: 8,
    },
    VmSkuLimits {
        sku: "Standard_E8s_v3",
        max_nics: 4,
        max_data_disks: 16,
    },
    VmSkuLimits {
        sku: "Standard_A1_v2",
        max_nics: 2,
        max_data_disks: 2,
    },
    VmSkuLimits {
        sku: "Standard_A2_v2",
        max_nics: 2,
        max_data_disks: 4,
    },
];

/// Looks up VM sku limits.
pub fn vm_sku(sku: &str) -> Option<&'static VmSkuLimits> {
    VM_SKUS.iter().find(|v| v.sku == sku)
}

/// All known VM sku names.
pub fn vm_sku_names() -> Vec<&'static str> {
    VM_SKUS.iter().map(|v| v.sku).collect()
}

/// Per-gateway-sku limits (Azure VPN gateway documentation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GwSkuLimits {
    /// Gateway sku name.
    pub sku: &'static str,
    /// Maximum site-to-site tunnels.
    pub max_tunnels: u32,
    /// Whether active-active mode is supported.
    pub active_active: bool,
}

/// The gateway sku limit table.
pub const GW_SKUS: &[GwSkuLimits] = &[
    GwSkuLimits {
        sku: "Basic",
        max_tunnels: 10,
        active_active: false,
    },
    GwSkuLimits {
        sku: "VpnGw1",
        max_tunnels: 30,
        active_active: true,
    },
    GwSkuLimits {
        sku: "VpnGw2",
        max_tunnels: 30,
        active_active: true,
    },
    GwSkuLimits {
        sku: "VpnGw3",
        max_tunnels: 30,
        active_active: true,
    },
    GwSkuLimits {
        sku: "Standard",
        max_tunnels: 10,
        active_active: false,
    },
    GwSkuLimits {
        sku: "HighPerformance",
        max_tunnels: 30,
        active_active: true,
    },
];

/// Looks up gateway sku limits.
pub fn gw_sku(sku: &str) -> Option<&'static GwSkuLimits> {
    GW_SKUS.iter().find(|v| v.sku == sku)
}

/// Storage-account replication types legal per account tier
/// (Azure storage redundancy documentation; Premium is latency-optimised and
/// supports only LRS/ZRS — notably *not* GZRS, the paper's §5.1 example 1).
pub fn sa_replication_for_tier(tier: &str) -> &'static [&'static str] {
    match tier {
        "Premium" => &["LRS", "ZRS"],
        _ => &["LRS", "GRS", "RAGRS", "ZRS", "GZRS", "RAGZRS"],
    }
}

/// Region-restricted VM skus (§6 lists region-specific constraints as an
/// avenue of future work; this reproduction implements them): each entry is
/// a sku and the regions where it is *not* offered.
pub const VM_SKU_UNAVAILABLE: &[(&str, &[&str])] = &[
    ("Standard_E8s_v3", &["japaneast", "australiaeast"]),
    ("Standard_D8s_v3", &["japaneast"]),
    ("Standard_F8s_v2", &["uksouth", "japaneast"]),
    ("Standard_B1ls", &["westus3"]),
];

/// True if the VM sku is offered in the region.
pub fn vm_sku_available(sku: &str, region: &str) -> bool {
    VM_SKU_UNAVAILABLE
        .iter()
        .find(|(s, _)| *s == sku)
        .map(|(_, regions)| !regions.contains(&region))
        .unwrap_or(true)
}

/// Reserved subnet names and the single resource type allowed to occupy each.
pub const RESERVED_SUBNETS: &[(&str, &str)] = &[
    ("GatewaySubnet", "azurerm_virtual_network_gateway"),
    ("AzureFirewallSubnet", "azurerm_firewall"),
    ("AzureBastionSubnet", "azurerm_bastion_host"),
];

/// If `name` is a reserved subnet name, the resource type allowed to use it.
pub fn reserved_subnet_owner(name: &str) -> Option<&'static str> {
    RESERVED_SUBNETS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, t)| *t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vm_sku_lookup() {
        let f2 = vm_sku("Standard_F2s_v2").unwrap();
        assert_eq!(f2.max_nics, 2);
        let f4 = vm_sku("Standard_F4s_v2").unwrap();
        assert_eq!(f4.max_nics, 4);
        assert!(vm_sku("Standard_Nope").is_none());
    }

    #[test]
    fn b1ls_allows_two_data_disks() {
        // The paper's Figure 3 example: sku b1ls ⇒ ≤ 2 data disks.
        assert_eq!(vm_sku("Standard_B1ls").unwrap().max_data_disks, 2);
    }

    #[test]
    fn basic_gw_has_no_active_active() {
        let basic = gw_sku("Basic").unwrap();
        assert!(!basic.active_active);
        assert_eq!(basic.max_tunnels, 10);
    }

    #[test]
    fn premium_sa_prohibits_gzrs() {
        assert!(!sa_replication_for_tier("Premium").contains(&"GZRS"));
        assert!(sa_replication_for_tier("Standard").contains(&"GZRS"));
    }

    #[test]
    fn region_availability() {
        assert!(!vm_sku_available("Standard_E8s_v3", "japaneast"));
        assert!(vm_sku_available("Standard_E8s_v3", "eastus"));
        assert!(vm_sku_available("Standard_B1s", "japaneast"));
    }

    #[test]
    fn reserved_subnets() {
        assert_eq!(
            reserved_subnet_owner("GatewaySubnet"),
            Some("azurerm_virtual_network_gateway")
        );
        assert_eq!(reserved_subnet_owner("internal"), None);
    }
}
