//! Property-based tests for CIDR arithmetic, driven by a seeded RNG so every
//! run checks the same (large) sample deterministically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zodiac_model::Cidr;

const CASES: usize = 2_000;

fn arb_cidr(rng: &mut StdRng) -> Cidr {
    let addr: u32 = rng.gen();
    let prefix = rng.gen_range(0..=32u8);
    Cidr::new(addr, prefix).expect("prefix <= 32")
}

#[test]
fn display_parse_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0xC1D4_0001);
    for _ in 0..CASES {
        let c = arb_cidr(&mut rng);
        let parsed: Cidr = c.to_string().parse().expect("displayed CIDR parses");
        assert_eq!(parsed, c);
    }
}

#[test]
fn canonicalisation_is_idempotent() {
    let mut rng = StdRng::seed_from_u64(0xC1D4_0002);
    for _ in 0..CASES {
        let addr: u32 = rng.gen();
        let prefix = rng.gen_range(0..=32u8);
        let a = Cidr::new(addr, prefix).expect("valid");
        let b = Cidr::new(a.addr(), prefix).expect("valid");
        assert_eq!(a, b);
    }
}

#[test]
fn overlap_is_symmetric() {
    let mut rng = StdRng::seed_from_u64(0xC1D4_0003);
    for _ in 0..CASES {
        let a = arb_cidr(&mut rng);
        let b = arb_cidr(&mut rng);
        assert_eq!(a.overlaps(&b), b.overlaps(&a));
    }
}

#[test]
fn self_overlap_and_containment() {
    let mut rng = StdRng::seed_from_u64(0xC1D4_0004);
    for _ in 0..CASES {
        let c = arb_cidr(&mut rng);
        assert!(c.overlaps(&c));
        assert!(c.contains(&c));
    }
}

#[test]
fn containment_implies_overlap() {
    let mut rng = StdRng::seed_from_u64(0xC1D4_0005);
    for _ in 0..CASES {
        let a = arb_cidr(&mut rng);
        let b = arb_cidr(&mut rng);
        if a.contains(&b) {
            assert!(a.overlaps(&b));
        }
    }
}

#[test]
fn containment_is_antisymmetric() {
    let mut rng = StdRng::seed_from_u64(0xC1D4_0006);
    for _ in 0..CASES {
        let a = arb_cidr(&mut rng);
        let b = arb_cidr(&mut rng);
        if a.contains(&b) && b.contains(&a) {
            assert_eq!(a, b);
        }
    }
}

#[test]
fn adjacent_preserves_prefix_and_never_overlaps() {
    let mut rng = StdRng::seed_from_u64(0xC1D4_0007);
    for _ in 0..CASES {
        let c = arb_cidr(&mut rng);
        if c.prefix() == 0 {
            continue; // /0 covers everything.
        }
        let adj = c.adjacent();
        assert_eq!(adj.prefix(), c.prefix());
        assert!(!c.overlaps(&adj), "{} overlaps {}", c, adj);
    }
}

#[test]
fn subnets_are_disjoint_and_contained() {
    let mut rng = StdRng::seed_from_u64(0xC1D4_0008);
    // Fewer cases: the pairwise-disjoint check is quadratic in subnet count.
    for _ in 0..200 {
        let c = arb_cidr(&mut rng);
        let extra = rng.gen_range(1..=6u8);
        let child_prefix = c.prefix().saturating_add(extra).min(32);
        if child_prefix == c.prefix() {
            continue;
        }
        let subs = c.subnets(child_prefix);
        assert!(!subs.is_empty());
        for s in &subs {
            assert!(c.contains(s));
        }
        for (i, a) in subs.iter().enumerate() {
            for b in subs.iter().skip(i + 1) {
                assert!(!a.overlaps(b));
            }
        }
    }
}

#[test]
fn first_last_bound_the_block() {
    let mut rng = StdRng::seed_from_u64(0xC1D4_0009);
    for _ in 0..CASES {
        let c = arb_cidr(&mut rng);
        assert!(c.first() <= c.last());
        assert_eq!(c.first(), c.addr());
    }
}

#[test]
fn overlap_matches_interval_semantics() {
    let mut rng = StdRng::seed_from_u64(0xC1D4_000A);
    for _ in 0..CASES {
        let a = arb_cidr(&mut rng);
        let b = arb_cidr(&mut rng);
        let interval = a.first() <= b.last() && b.first() <= a.last();
        assert_eq!(a.overlaps(&b), interval);
    }
}
