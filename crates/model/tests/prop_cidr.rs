//! Property-based tests for CIDR arithmetic.

use proptest::prelude::*;
use zodiac_model::Cidr;

fn arb_cidr() -> impl Strategy<Value = Cidr> {
    (any::<u32>(), 0u8..=32).prop_map(|(addr, prefix)| Cidr::new(addr, prefix).expect("prefix <= 32"))
}

proptest! {
    #[test]
    fn display_parse_roundtrip(c in arb_cidr()) {
        let parsed: Cidr = c.to_string().parse().expect("displayed CIDR parses");
        prop_assert_eq!(parsed, c);
    }

    #[test]
    fn canonicalisation_is_idempotent(addr in any::<u32>(), prefix in 0u8..=32) {
        let a = Cidr::new(addr, prefix).expect("valid");
        let b = Cidr::new(a.addr(), prefix).expect("valid");
        prop_assert_eq!(a, b);
    }

    #[test]
    fn overlap_is_symmetric(a in arb_cidr(), b in arb_cidr()) {
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
    }

    #[test]
    fn self_overlap_and_containment(c in arb_cidr()) {
        prop_assert!(c.overlaps(&c));
        prop_assert!(c.contains(&c));
    }

    #[test]
    fn containment_implies_overlap(a in arb_cidr(), b in arb_cidr()) {
        if a.contains(&b) {
            prop_assert!(a.overlaps(&b));
        }
    }

    #[test]
    fn containment_is_antisymmetric(a in arb_cidr(), b in arb_cidr()) {
        if a.contains(&b) && b.contains(&a) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn adjacent_preserves_prefix_and_never_overlaps(c in arb_cidr()) {
        prop_assume!(c.prefix() > 0); // /0 covers everything.
        let adj = c.adjacent();
        prop_assert_eq!(adj.prefix(), c.prefix());
        prop_assert!(!c.overlaps(&adj), "{} overlaps {}", c, adj);
    }

    #[test]
    fn subnets_are_disjoint_and_contained(c in arb_cidr(), extra in 1u8..=6) {
        let child_prefix = c.prefix().saturating_add(extra).min(32);
        prop_assume!(child_prefix > c.prefix());
        let subs = c.subnets(child_prefix);
        prop_assert!(!subs.is_empty());
        for s in &subs {
            prop_assert!(c.contains(s));
        }
        for (i, a) in subs.iter().enumerate() {
            for b in subs.iter().skip(i + 1) {
                prop_assert!(!a.overlaps(b));
            }
        }
    }

    #[test]
    fn first_last_bound_the_block(c in arb_cidr()) {
        prop_assert!(c.first() <= c.last());
        prop_assert_eq!(c.first(), c.addr());
    }

    #[test]
    fn overlap_matches_interval_semantics(a in arb_cidr(), b in arb_cidr()) {
        let interval = a.first() <= b.last() && b.first() <= a.last();
        prop_assert_eq!(a.overlaps(&b), interval);
    }
}
