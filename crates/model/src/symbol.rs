//! Interned strings for the hot identifiers of the check pipeline.
//!
//! Resource-type names and attribute paths recur millions of times during
//! mining and validation: every stats key, every candidate check, every
//! scheduler conflict key mentions them. Interning maps each distinct string
//! to a small integer once, so equality and hashing are O(1) `u32`
//! comparisons instead of byte-wise string walks, and every copy of a check
//! shares one allocation.
//!
//! The interner is a global append-only table. Interned strings are leaked
//! (`Box::leak`) so a [`Symbol`] can hand out `&'static str` without
//! lifetimes infecting the AST; the set of distinct identifiers in a run is
//! small (hundreds), so the leak is bounded and intentional.
//!
//! `Ord` deliberately compares the *resolved strings*, not the ids: the
//! pipeline iterates `BTreeMap`s keyed by symbols and its output order must
//! not depend on interning order (which varies with thread scheduling).

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;
use std::ops::Deref;
use std::sync::{Mutex, OnceLock};

/// An interned string. Copyable, 4 bytes, O(1) `Eq`/`Hash`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns `s`, returning its symbol. Idempotent: equal strings always
    /// yield equal symbols.
    pub fn intern(s: &str) -> Symbol {
        let mut int = interner().lock().expect("symbol interner poisoned");
        if let Some(&id) = int.map.get(s) {
            return Symbol(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = int.strings.len() as u32;
        int.strings.push(leaked);
        int.map.insert(leaked, id);
        Symbol(id)
    }

    /// The interned string.
    pub fn as_str(self) -> &'static str {
        interner().lock().expect("symbol interner poisoned").strings[self.0 as usize]
    }
}

impl Deref for Symbol {
    type Target = str;
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for Symbol {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<&String> for Symbol {
    fn from(s: &String) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::intern(&s)
    }
}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for Symbol {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Symbol) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Symbol) -> Ordering {
        if self.0 == other.0 {
            Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl Serialize for Symbol {
    fn serialize(&self) -> serde::Value {
        serde::Value::String(self.as_str().to_string())
    }
}

impl Deserialize for Symbol {
    fn deserialize(v: &serde::Value) -> Result<Symbol, serde::Error> {
        let s = String::deserialize(v)?;
        Ok(Symbol::intern(&s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("azurerm_linux_virtual_machine");
        let b = Symbol::intern("azurerm_linux_virtual_machine");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "azurerm_linux_virtual_machine");
    }

    #[test]
    fn distinct_strings_distinct_symbols() {
        assert_ne!(Symbol::intern("size"), Symbol::intern("location"));
    }

    #[test]
    fn orders_by_string_not_by_interning_order() {
        let z = Symbol::intern("zzz-ordering-probe");
        let a = Symbol::intern("aaa-ordering-probe");
        assert!(a < z, "symbols must sort like their strings");
        let mut map = BTreeMap::new();
        map.insert(z, 1);
        map.insert(a, 2);
        let keys: Vec<&str> = map.keys().map(|s| s.as_str()).collect();
        assert_eq!(keys, vec!["aaa-ordering-probe", "zzz-ordering-probe"]);
    }

    #[test]
    fn compares_with_plain_strings() {
        let s = Symbol::intern("account_tier");
        assert_eq!(s, "account_tier");
        assert_eq!(s, "account_tier".to_string());
        assert!(s.starts_with("account"));
    }

    #[test]
    fn serde_round_trips_as_string() {
        let s = Symbol::intern("network_interface_ids");
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(json, "\"network_interface_ids\"");
        let back: Symbol = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
