//! Core data model shared by every Zodiac crate.
//!
//! This crate defines the representation of a compiled IaC program — the
//! "deployment plan" view that the paper's pipeline operates on — together
//! with attribute values, inter-resource references, and the CIDR arithmetic
//! used throughout mining and validation.
//!
//! The model mirrors Terraform's compiled JSON plan: a [`Program`] is a flat
//! set of [`Resource`]s; each resource has a type (e.g.
//! `azurerm_network_interface`), a local name, and a tree of attribute
//! [`Value`]s. References to attributes of other resources (the edges of the
//! IaC resource graph) are first-class values ([`Value::Ref`]).

pub mod cidr;
pub mod error;
pub mod op;
pub mod program;
pub mod symbol;
pub mod value;

pub use cidr::Cidr;
pub use error::ModelError;
pub use op::CmpOp;
pub use program::{Program, Resource, ResourceId};
pub use symbol::Symbol;
pub use value::{AttrPath, Reference, Value};

/// Result alias used across the model crate.
pub type Result<T> = std::result::Result<T, ModelError>;
