//! IPv4 CIDR arithmetic.
//!
//! Several of the paper's semantic checks are predicates over CIDR ranges —
//! "subnets under the same VPC cannot have overlapping CIDR ranges", "peering
//! VPC CIDRs can't overlap" — so overlap/containment tests and the
//! "adjacent range with the same prefix length" mutation (§4.1, *minimizing
//! changes*) are implemented here once and reused by the knowledge base, the
//! cloud simulator, and the solver.

use crate::error::ModelError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// An IPv4 CIDR block, e.g. `10.0.1.0/24`.
///
/// The address is stored canonicalised: host bits below the prefix are
/// cleared on construction, so `10.0.1.7/24` and `10.0.1.0/24` compare equal.
///
/// # Examples
///
/// ```
/// use zodiac_model::Cidr;
/// let a: Cidr = "10.0.0.0/16".parse().unwrap();
/// let b: Cidr = "10.0.1.0/24".parse().unwrap();
/// assert!(a.contains(&b));
/// assert!(a.overlaps(&b));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Cidr {
    addr: u32,
    prefix: u8,
}

impl Cidr {
    /// Creates a CIDR from a raw address and prefix length.
    ///
    /// Host bits below the prefix are cleared. Returns an error if the
    /// prefix exceeds 32.
    pub fn new(addr: u32, prefix: u8) -> Result<Self, ModelError> {
        if prefix > 32 {
            return Err(ModelError::InvalidCidr(format!("/{prefix}")));
        }
        Ok(Cidr {
            addr: addr & Self::mask(prefix),
            prefix,
        })
    }

    fn mask(prefix: u8) -> u32 {
        if prefix == 0 {
            0
        } else {
            u32::MAX << (32 - prefix)
        }
    }

    /// The network address of this block.
    pub fn addr(&self) -> u32 {
        self.addr
    }

    /// The prefix length of this block.
    pub fn prefix(&self) -> u8 {
        self.prefix
    }

    /// The first address in the block.
    pub fn first(&self) -> u32 {
        self.addr
    }

    /// The last address in the block.
    pub fn last(&self) -> u32 {
        self.addr | !Self::mask(self.prefix)
    }

    /// The number of addresses in the block (saturating at `u32::MAX` for /0).
    pub fn size(&self) -> u32 {
        if self.prefix == 0 {
            u32::MAX
        } else {
            1u32 << (32 - self.prefix)
        }
    }

    /// Returns true if the two blocks share at least one address.
    pub fn overlaps(&self, other: &Cidr) -> bool {
        self.first() <= other.last() && other.first() <= self.last()
    }

    /// Returns true if `other` lies entirely inside `self`.
    pub fn contains(&self, other: &Cidr) -> bool {
        self.prefix <= other.prefix && self.first() <= other.first() && other.last() <= self.last()
    }

    /// The adjacent block with the same prefix length (the paper's minimal
    /// CIDR mutation: "mutating a CIDR value to its adjacent range with the
    /// same prefix length").
    ///
    /// Picks the next-higher block; wraps to the next-lower block when the
    /// next-higher one would overflow the address space.
    pub fn adjacent(&self) -> Cidr {
        let step = self.size();
        let next = self.addr.checked_add(step);
        let addr = match next {
            Some(a) if self.prefix > 0 => a,
            _ => self.addr.wrapping_sub(step),
        };
        Cidr {
            addr: addr & Self::mask(self.prefix),
            prefix: self.prefix,
        }
    }

    /// Splits this block into subnets of the given (longer) prefix length.
    ///
    /// Returns an empty vector if `prefix` is shorter than this block's, and
    /// caps the result at 256 entries to keep enumeration bounded.
    pub fn subnets(&self, prefix: u8) -> Vec<Cidr> {
        if prefix < self.prefix || prefix > 32 {
            return Vec::new();
        }
        let count = 1u64 << (prefix - self.prefix).min(8);
        let step = if prefix == 0 {
            0
        } else {
            1u32 << (32 - prefix)
        };
        (0..count)
            .map(|i| Cidr {
                addr: self.addr + (i as u32) * step,
                prefix,
            })
            .collect()
    }
}

impl FromStr for Cidr {
    type Err = ModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ModelError::InvalidCidr(s.to_string());
        let (ip, prefix) = s.split_once('/').ok_or_else(err)?;
        let prefix: u8 = prefix.parse().map_err(|_| err())?;
        if prefix > 32 {
            return Err(err());
        }
        let mut octets = [0u8; 4];
        let mut n = 0;
        for part in ip.split('.') {
            if n >= 4 {
                return Err(err());
            }
            octets[n] = part.parse().map_err(|_| err())?;
            n += 1;
        }
        if n != 4 {
            return Err(err());
        }
        let addr = u32::from_be_bytes(octets);
        Cidr::new(addr, prefix)
    }
}

impl fmt::Display for Cidr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.addr.to_be_bytes();
        write!(f, "{}.{}.{}.{}/{}", o[0], o[1], o[2], o[3], self.prefix)
    }
}

/// Parses a string as a CIDR, returning `None` on failure.
///
/// Convenience for check evaluation, where non-CIDR strings simply make a
/// CIDR predicate evaluate to false rather than erroring out.
pub fn parse_opt(s: &str) -> Option<Cidr> {
    s.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        let c: Cidr = "10.0.1.0/24".parse().unwrap();
        assert_eq!(c.to_string(), "10.0.1.0/24");
        assert_eq!(c.prefix(), 24);
    }

    #[test]
    fn canonicalises_host_bits() {
        let c: Cidr = "10.0.1.77/24".parse().unwrap();
        assert_eq!(c.to_string(), "10.0.1.0/24");
    }

    #[test]
    fn rejects_bad_cidrs() {
        for s in [
            "10.0.0.0",
            "10.0.0/8",
            "10.0.0.0/33",
            "a.b.c.d/8",
            "10.0.0.0.0/8",
        ] {
            assert!(s.parse::<Cidr>().is_err(), "{s} should fail");
        }
    }

    #[test]
    fn overlap_is_symmetric_and_correct() {
        let a: Cidr = "10.0.0.0/16".parse().unwrap();
        let b: Cidr = "10.0.1.0/24".parse().unwrap();
        let c: Cidr = "10.1.0.0/16".parse().unwrap();
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(!c.overlaps(&b));
    }

    #[test]
    fn containment() {
        let vnet: Cidr = "10.0.0.0/16".parse().unwrap();
        let sub: Cidr = "10.0.2.0/24".parse().unwrap();
        assert!(vnet.contains(&sub));
        assert!(!sub.contains(&vnet));
        assert!(vnet.contains(&vnet));
    }

    #[test]
    fn adjacent_does_not_overlap() {
        let c: Cidr = "10.0.1.0/24".parse().unwrap();
        let adj = c.adjacent();
        assert_eq!(adj.to_string(), "10.0.2.0/24");
        assert!(!c.overlaps(&adj));
        assert_eq!(adj.prefix(), c.prefix());
    }

    #[test]
    fn adjacent_wraps_at_top_of_space() {
        let c: Cidr = "255.255.255.0/24".parse().unwrap();
        let adj = c.adjacent();
        assert_eq!(adj.to_string(), "255.255.254.0/24");
    }

    #[test]
    fn subnets_split() {
        let vnet: Cidr = "10.0.0.0/16".parse().unwrap();
        let subs = vnet.subnets(24);
        assert_eq!(subs.len(), 256);
        assert_eq!(subs[0].to_string(), "10.0.0.0/24");
        assert_eq!(subs[1].to_string(), "10.0.1.0/24");
        for w in subs.windows(2) {
            assert!(!w[0].overlaps(&w[1]));
        }
    }

    #[test]
    fn subnets_rejects_shorter_prefix() {
        let c: Cidr = "10.0.0.0/24".parse().unwrap();
        assert!(c.subnets(16).is_empty());
    }
}
