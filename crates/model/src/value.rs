//! Attribute values, attribute paths, and inter-resource references.

use crate::error::ModelError;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

/// A reference from one resource's attribute to another resource's attribute.
///
/// In Terraform syntax this is `azurerm_subnet.internal.id`; in the compiled
/// plan it is the edge of the IaC resource graph. The attribute on the
/// *referencing* side is the **inbound endpoint**, the referenced attribute
/// (`attr` here, usually `id` or `name`) is the **outbound endpoint** (§3.2).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Reference {
    /// Resource type of the referenced resource, e.g. `azurerm_subnet`.
    pub rtype: String,
    /// Local name of the referenced resource, e.g. `internal`.
    pub name: String,
    /// Attribute of the referenced resource being read, e.g. `id`.
    pub attr: String,
}

impl Reference {
    /// Creates a reference to `rtype.name.attr`.
    pub fn new(rtype: impl Into<String>, name: impl Into<String>, attr: impl Into<String>) -> Self {
        Reference {
            rtype: rtype.into(),
            name: name.into(),
            attr: attr.into(),
        }
    }
}

impl fmt::Display for Reference {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}", self.rtype, self.name, self.attr)
    }
}

impl FromStr for Reference {
    type Err = ModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.splitn(3, '.').collect();
        if parts.len() != 3 || parts.iter().any(|p| p.is_empty()) {
            return Err(ModelError::InvalidReference(s.to_string()));
        }
        Ok(Reference::new(parts[0], parts[1], parts[2]))
    }
}

/// A dotted path addressing a (possibly nested) attribute within a resource.
///
/// Segments are attribute names; list elements are addressed with numeric
/// segments, e.g. `security_rule.0.direction`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AttrPath(pub Vec<String>);

impl AttrPath {
    /// A single-segment path.
    pub fn single(seg: impl Into<String>) -> Self {
        AttrPath(vec![seg.into()])
    }

    /// The leading segment, if the path is non-empty.
    pub fn head(&self) -> Option<&str> {
        self.0.first().map(String::as_str)
    }
}

impl FromStr for AttrPath {
    type Err = ModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() || s.split('.').any(|seg| seg.is_empty()) {
            return Err(ModelError::InvalidAttrPath(s.to_string()));
        }
        Ok(AttrPath(s.split('.').map(str::to_string).collect()))
    }
}

impl fmt::Display for AttrPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0.join("."))
    }
}

/// An attribute value in a compiled IaC program.
///
/// This is a superset of JSON: [`Value::Ref`] carries unresolved
/// inter-resource references so graph construction does not need to re-parse
/// interpolation strings.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Value {
    /// Explicit null (attribute present but empty).
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer (Terraform numbers used by Azure resources are integral).
    Int(i64),
    /// String.
    Str(String),
    /// Ordered list.
    List(Vec<Value>),
    /// Nested block / object, key-ordered for determinism.
    Map(BTreeMap<String, Value>),
    /// Reference to another resource's attribute.
    Ref(Reference),
}

impl Value {
    /// Builds a string value.
    pub fn s(v: impl Into<String>) -> Value {
        Value::Str(v.into())
    }

    /// Builds a reference value to `rtype.name.attr`.
    pub fn r(rtype: &str, name: &str, attr: &str) -> Value {
        Value::Ref(Reference::new(rtype, name, attr))
    }

    /// Returns the string content if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer content if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the boolean content if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the reference if this is a `Ref`.
    pub fn as_ref_value(&self) -> Option<&Reference> {
        match self {
            Value::Ref(r) => Some(r),
            _ => None,
        }
    }

    /// Returns the list contents if this is a `List`.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// Returns the map contents if this is a `Map`.
    pub fn as_map(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// True if the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Navigates a path inside this value.
    ///
    /// Numeric segments index into lists; other segments index into maps.
    pub fn get_path(&self, path: &[String]) -> Option<&Value> {
        let mut cur = self;
        for seg in path {
            cur = match cur {
                Value::Map(m) => m.get(seg)?,
                Value::List(l) => l.get(seg.parse::<usize>().ok()?)?,
                _ => return None,
            };
        }
        Some(cur)
    }

    /// Collects every [`Reference`] reachable inside this value, paired with
    /// the path at which it occurs (relative to this value).
    pub fn collect_refs(&self, base: &AttrPath, out: &mut Vec<(AttrPath, Reference)>) {
        match self {
            Value::Ref(r) => out.push((base.clone(), r.clone())),
            Value::List(l) => {
                for (i, v) in l.iter().enumerate() {
                    let mut p = base.clone();
                    p.0.push(i.to_string());
                    v.collect_refs(&p, out);
                }
            }
            Value::Map(m) => {
                for (k, v) in m {
                    let mut p = base.clone();
                    p.0.push(k.clone());
                    v.collect_refs(&p, out);
                }
            }
            _ => {}
        }
    }

    /// A human-readable rendering used in reports and error messages.
    pub fn render(&self) -> String {
        match self {
            Value::Null => "null".to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Str(s) => format!("\"{s}\""),
            Value::Ref(r) => r.to_string(),
            Value::List(l) => {
                let items: Vec<String> = l.iter().map(Value::render).collect();
                format!("[{}]", items.join(", "))
            }
            Value::Map(m) => {
                let items: Vec<String> = m
                    .iter()
                    .map(|(k, v)| format!("{k} = {}", v.render()))
                    .collect();
                format!("{{{}}}", items.join("; "))
            }
        }
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_roundtrip() {
        let r: Reference = "azurerm_subnet.internal.id".parse().unwrap();
        assert_eq!(r.rtype, "azurerm_subnet");
        assert_eq!(r.name, "internal");
        assert_eq!(r.attr, "id");
        assert_eq!(r.to_string(), "azurerm_subnet.internal.id");
    }

    #[test]
    fn reference_rejects_malformed() {
        assert!("azurerm_subnet.internal".parse::<Reference>().is_err());
        assert!("a..b".parse::<Reference>().is_err());
        assert!("".parse::<Reference>().is_err());
    }

    #[test]
    fn attr_path_parse() {
        let p: AttrPath = "os_disk.name".parse().unwrap();
        assert_eq!(p.0, vec!["os_disk", "name"]);
        assert!("".parse::<AttrPath>().is_err());
        assert!("a..b".parse::<AttrPath>().is_err());
    }

    #[test]
    fn get_path_traverses_maps_and_lists() {
        let mut inner = BTreeMap::new();
        inner.insert("direction".to_string(), Value::s("Inbound"));
        let v = Value::Map(BTreeMap::from([(
            "security_rule".to_string(),
            Value::List(vec![Value::Map(inner)]),
        )]));
        let path: AttrPath = "security_rule.0.direction".parse().unwrap();
        assert_eq!(v.get_path(&path.0), Some(&Value::s("Inbound")));
        let missing: AttrPath = "security_rule.1.direction".parse().unwrap();
        assert_eq!(v.get_path(&missing.0), None);
    }

    #[test]
    fn collect_refs_finds_nested() {
        let v = Value::List(vec![
            Value::r("azurerm_network_interface", "a", "id"),
            Value::Map(BTreeMap::from([(
                "subnet_id".to_string(),
                Value::r("azurerm_subnet", "b", "id"),
            )])),
        ]);
        let mut out = Vec::new();
        v.collect_refs(&AttrPath::single("nic_ids"), &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0.to_string(), "nic_ids.0");
        assert_eq!(out[1].0.to_string(), "nic_ids.1.subnet_id");
        assert_eq!(out[1].1.rtype, "azurerm_subnet");
    }
}
