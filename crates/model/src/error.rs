//! Error types for the model crate.

use std::fmt;

/// Errors produced when constructing or querying model objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A CIDR string could not be parsed.
    InvalidCidr(String),
    /// An attribute path string could not be parsed.
    InvalidAttrPath(String),
    /// A reference string could not be parsed.
    InvalidReference(String),
    /// A resource was declared twice in the same program.
    DuplicateResource(String),
    /// A lookup referred to a resource that does not exist.
    UnknownResource(String),
    /// A pipeline stage received a check whose shape it cannot handle.
    UnsupportedCheck {
        /// What the stage was trying to do.
        stage: &'static str,
        /// The offending check in assertion-language syntax.
        check: String,
    },
    /// An invariant that a pipeline stage relies on did not hold.
    Internal(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidCidr(s) => write!(f, "invalid CIDR: {s}"),
            ModelError::InvalidAttrPath(s) => write!(f, "invalid attribute path: {s}"),
            ModelError::InvalidReference(s) => write!(f, "invalid reference: {s}"),
            ModelError::DuplicateResource(s) => write!(f, "duplicate resource: {s}"),
            ModelError::UnknownResource(s) => write!(f, "unknown resource: {s}"),
            ModelError::UnsupportedCheck { stage, check } => {
                write!(f, "{stage}: unsupported check shape: {check}")
            }
            ModelError::Internal(s) => write!(f, "internal invariant violated: {s}"),
        }
    }
}

impl std::error::Error for ModelError {}
