//! The comparison operators shared by the check language and the solver.
//!
//! The spec AST (`zodiac-spec`) and the finite-domain constraint language
//! (`zodiac-solver`) use the exact same operator set; defining it once here
//! lets the mutation engine pass operators straight from a check into solver
//! constraints without a conversion table.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Comparison / function operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// CIDR ranges share addresses.
    Overlap,
    /// First CIDR contains the second.
    Contain,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Le => "<=",
            CmpOp::Ge => ">=",
            CmpOp::Lt => "<",
            CmpOp::Gt => ">",
            CmpOp::Overlap => "overlap",
            CmpOp::Contain => "contain",
        };
        write!(f, "{s}")
    }
}
