//! Compiled IaC programs and their resources.

use crate::error::ModelError;
use crate::value::{AttrPath, Reference, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identity of a resource inside a program: `(type, local name)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ResourceId {
    /// Resource type, e.g. `azurerm_virtual_machine`.
    pub rtype: String,
    /// Local (block) name, e.g. `web`.
    pub name: String,
}

impl ResourceId {
    /// Creates an id from a type and a local name.
    pub fn new(rtype: impl Into<String>, name: impl Into<String>) -> Self {
        ResourceId {
            rtype: rtype.into(),
            name: name.into(),
        }
    }
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.rtype, self.name)
    }
}

/// A single resource block in a compiled program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Resource {
    /// Resource type, e.g. `azurerm_subnet`.
    pub rtype: String,
    /// Local name of the block.
    pub name: String,
    /// Top-level attributes (values may nest).
    pub attrs: BTreeMap<String, Value>,
}

impl Resource {
    /// Creates an empty resource of the given type and name.
    pub fn new(rtype: impl Into<String>, name: impl Into<String>) -> Self {
        Resource {
            rtype: rtype.into(),
            name: name.into(),
            attrs: BTreeMap::new(),
        }
    }

    /// The identity of this resource.
    pub fn id(&self) -> ResourceId {
        ResourceId::new(&self.rtype, &self.name)
    }

    /// Sets a top-level attribute, builder-style.
    pub fn with(mut self, key: impl Into<String>, value: impl Into<Value>) -> Self {
        self.attrs.insert(key.into(), value.into());
        self
    }

    /// Looks up a (possibly nested) attribute by path.
    pub fn get(&self, path: &AttrPath) -> Option<&Value> {
        let (head, rest) = path.0.split_first()?;
        let v = self.attrs.get(head)?;
        v.get_path(rest)
    }

    /// Looks up a single-segment attribute by name.
    pub fn get_attr(&self, name: &str) -> Option<&Value> {
        self.attrs.get(name)
    }

    /// Sets a (possibly nested) attribute by path, creating intermediate maps.
    ///
    /// Numeric segments index existing list elements; setting past the end of
    /// a list appends. Returns false if the path traverses a scalar.
    pub fn set(&mut self, path: &AttrPath, value: Value) -> bool {
        fn set_inner(cur: &mut Value, path: &[String], value: Value) -> bool {
            let Some((head, rest)) = path.split_first() else {
                *cur = value;
                return true;
            };
            match cur {
                Value::Map(m) => {
                    let slot = m.entry(head.clone()).or_insert(Value::Null);
                    if matches!(slot, Value::Null) && !rest.is_empty() {
                        *slot = Value::Map(BTreeMap::new());
                    }
                    set_inner(slot, rest, value)
                }
                Value::List(l) => {
                    let Ok(idx) = head.parse::<usize>() else {
                        return false;
                    };
                    if idx < l.len() {
                        set_inner(&mut l[idx], rest, value)
                    } else if idx == l.len() {
                        let mut v = if rest.is_empty() {
                            Value::Null
                        } else {
                            Value::Map(BTreeMap::new())
                        };
                        let ok = set_inner(&mut v, rest, value);
                        l.push(v);
                        ok
                    } else {
                        false
                    }
                }
                _ => false,
            }
        }

        let Some((head, rest)) = path.0.split_first() else {
            return false;
        };
        if rest.is_empty() {
            self.attrs.insert(head.clone(), value);
            return true;
        }
        let slot = self.attrs.entry(head.clone()).or_insert(Value::Null);
        if matches!(slot, Value::Null) {
            *slot = Value::Map(BTreeMap::new());
        }
        set_inner(slot, rest, value)
    }

    /// Removes a top-level attribute.
    pub fn unset(&mut self, name: &str) -> Option<Value> {
        self.attrs.remove(name)
    }

    /// All references contained in this resource's attributes, with the
    /// attribute path where each occurs.
    pub fn references(&self) -> Vec<(AttrPath, Reference)> {
        let mut out = Vec::new();
        for (k, v) in &self.attrs {
            v.collect_refs(&AttrPath::single(k.clone()), &mut out);
        }
        out
    }
}

/// A compiled IaC program: an ordered set of resources.
///
/// Resource identities are unique; [`Program::add`] rejects duplicates.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    resources: Vec<Resource>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Adds a resource, rejecting duplicate `(type, name)` pairs.
    pub fn add(&mut self, r: Resource) -> Result<(), ModelError> {
        if self.find(&r.id()).is_some() {
            return Err(ModelError::DuplicateResource(r.id().to_string()));
        }
        self.resources.push(r);
        Ok(())
    }

    /// Builder-style [`Program::add`] that panics on duplicates.
    ///
    /// # Panics
    ///
    /// Panics if a resource with the same identity already exists. Intended
    /// for tests and generators that construct programs from scratch.
    pub fn with(mut self, r: Resource) -> Self {
        self.add(r).expect("duplicate resource in builder");
        self
    }

    /// All resources in declaration order.
    pub fn resources(&self) -> &[Resource] {
        &self.resources
    }

    /// Mutable access to all resources.
    pub fn resources_mut(&mut self) -> &mut Vec<Resource> {
        &mut self.resources
    }

    /// Number of resources.
    pub fn len(&self) -> usize {
        self.resources.len()
    }

    /// True if the program has no resources.
    pub fn is_empty(&self) -> bool {
        self.resources.is_empty()
    }

    /// Finds a resource by identity.
    pub fn find(&self, id: &ResourceId) -> Option<&Resource> {
        self.resources
            .iter()
            .find(|r| r.rtype == id.rtype && r.name == id.name)
    }

    /// Finds a resource by identity, mutably.
    pub fn find_mut(&mut self, id: &ResourceId) -> Option<&mut Resource> {
        self.resources
            .iter_mut()
            .find(|r| r.rtype == id.rtype && r.name == id.name)
    }

    /// All resources of a given type.
    pub fn of_type<'a>(&'a self, rtype: &'a str) -> impl Iterator<Item = &'a Resource> + 'a {
        self.resources.iter().filter(move |r| r.rtype == rtype)
    }

    /// Removes a resource by identity; returns true if it was present.
    pub fn remove(&mut self, id: &ResourceId) -> bool {
        let before = self.resources.len();
        self.resources
            .retain(|r| !(r.rtype == id.rtype && r.name == id.name));
        self.resources.len() != before
    }

    /// Retains only the resources whose ids are in `keep`.
    pub fn retain_ids(&mut self, keep: &std::collections::HashSet<ResourceId>) {
        self.resources.retain(|r| keep.contains(&r.id()));
    }

    /// The distinct resource types present, sorted.
    pub fn types(&self) -> Vec<String> {
        let mut t: Vec<String> = self.resources.iter().map(|r| r.rtype.clone()).collect();
        t.sort();
        t.dedup();
        t
    }

    /// Serialises to the JSON deployment-plan format.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("program serialisation cannot fail")
    }

    /// Parses a program from the JSON deployment-plan format.
    pub fn from_json(s: &str) -> Result<Self, ModelError> {
        serde_json::from_str(s).map_err(|e| ModelError::InvalidReference(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Program {
        Program::new()
            .with(
                Resource::new("azurerm_virtual_network", "vnet")
                    .with("name", "vnet1")
                    .with("location", "eastus"),
            )
            .with(
                Resource::new("azurerm_subnet", "a")
                    .with("name", "internal")
                    .with(
                        "virtual_network_name",
                        Value::r("azurerm_virtual_network", "vnet", "name"),
                    ),
            )
    }

    #[test]
    fn add_rejects_duplicates() {
        let mut p = sample();
        let err = p.add(Resource::new("azurerm_subnet", "a")).unwrap_err();
        assert!(matches!(err, ModelError::DuplicateResource(_)));
    }

    #[test]
    fn find_and_of_type() {
        let p = sample();
        assert!(p.find(&ResourceId::new("azurerm_subnet", "a")).is_some());
        assert!(p.find(&ResourceId::new("azurerm_subnet", "b")).is_none());
        assert_eq!(p.of_type("azurerm_subnet").count(), 1);
    }

    #[test]
    fn nested_set_and_get() {
        let mut r = Resource::new("azurerm_virtual_machine", "vm");
        let path: AttrPath = "os_disk.name".parse().unwrap();
        assert!(r.set(&path, Value::s("osdisk1")));
        assert_eq!(r.get(&path), Some(&Value::s("osdisk1")));
        assert_eq!(
            r.get_attr("os_disk")
                .and_then(|v| v.as_map())
                .map(|m| m.len()),
            Some(1)
        );
    }

    #[test]
    fn set_appends_to_list() {
        let mut r = Resource::new("azurerm_virtual_machine", "vm");
        r.attrs.insert(
            "nic_ids".to_string(),
            Value::List(vec![Value::r("azurerm_network_interface", "a", "id")]),
        );
        let path: AttrPath = "nic_ids.1".parse().unwrap();
        assert!(r.set(&path, Value::r("azurerm_network_interface", "b", "id")));
        assert_eq!(r.get_attr("nic_ids").unwrap().as_list().unwrap().len(), 2);
        // Setting far past the end fails.
        let bad: AttrPath = "nic_ids.9".parse().unwrap();
        assert!(!r.set(&bad, Value::Null));
    }

    #[test]
    fn references_collects_edges() {
        let p = sample();
        let subnet = p.find(&ResourceId::new("azurerm_subnet", "a")).unwrap();
        let refs = subnet.references();
        assert_eq!(refs.len(), 1);
        assert_eq!(refs[0].1.rtype, "azurerm_virtual_network");
    }

    #[test]
    fn json_roundtrip() {
        let p = sample();
        let json = p.to_json();
        let back = Program::from_json(&json).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn remove_and_retain() {
        let mut p = sample();
        assert!(p.remove(&ResourceId::new("azurerm_subnet", "a")));
        assert!(!p.remove(&ResourceId::new("azurerm_subnet", "a")));
        assert_eq!(p.len(), 1);
    }
}
