//! AST for the check specification language.
//!
//! This is the typed check IR shared by the whole pipeline: mining
//! constructs it through [`crate::build`], validation and the CLI consume it
//! directly, and the textual form exists only at the user boundary (parsing
//! user-authored specs, printing reports). Identifiers — variable names,
//! resource types, attribute paths — are interned [`Symbol`]s, so checks
//! hash and compare in O(1) and a cloned check shares no heap allocations.

use serde::{Deserialize, Serialize};
use std::fmt;
use zodiac_kb::short_name;
use zodiac_model::{Symbol, Value};

pub use zodiac_model::CmpOp;

/// A resource variable binding: `r1 : azurerm_linux_virtual_machine`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Binding {
    /// Variable name.
    pub var: Symbol,
    /// Full resource type name.
    pub rtype: Symbol,
}

/// A type specifier `τ ::= t | !t` used by degree aggregations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TypeSpec {
    /// Matches exactly this type.
    Is(Symbol),
    /// Matches every type except this one.
    Not(Symbol),
}

impl TypeSpec {
    /// The underlying type name.
    pub fn type_name(&self) -> &'static str {
        match self {
            TypeSpec::Is(t) | TypeSpec::Not(t) => t.as_str(),
        }
    }

    /// True if this is the negated form.
    pub fn negated(&self) -> bool {
        matches!(self, TypeSpec::Not(_))
    }
}

/// A value term.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Val {
    /// A literal base value.
    Lit(Value),
    /// `r.attr` — an attribute endpoint (dotted path allowed).
    Endpoint {
        /// Variable name.
        var: Symbol,
        /// Dotted attribute path.
        attr: Symbol,
    },
    /// `indegree(r, τ)`.
    InDegree {
        /// Variable name.
        var: Symbol,
        /// Edge-source type filter.
        tau: TypeSpec,
    },
    /// `outdegree(r, τ)`.
    OutDegree {
        /// Variable name.
        var: Symbol,
        /// Edge-target type filter.
        tau: TypeSpec,
    },
    /// `length(r.attr)` — number of elements of a list attribute.
    Length(Box<Val>),
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Expr {
    /// `conn(r1.in → r2.out)`.
    Conn {
        /// Source variable.
        src: Symbol,
        /// Inbound endpoint on the source (indices stripped).
        in_endpoint: Symbol,
        /// Destination variable.
        dst: Symbol,
        /// Outbound attribute on the destination.
        out_attr: Symbol,
    },
    /// `path(r1 → r2)`.
    Path {
        /// Source variable.
        src: Symbol,
        /// Destination variable.
        dst: Symbol,
    },
    /// `coconn(e1, e2)` — both edges exist.
    CoConn {
        /// First edge.
        first: Box<Expr>,
        /// Second edge.
        second: Box<Expr>,
    },
    /// `copath(p1, p2)` — both paths exist.
    CoPath {
        /// First path.
        first: Box<Expr>,
        /// Second path.
        second: Box<Expr>,
    },
    /// `op(val1, val2)` or infix comparison; `negated` renders as `!op(...)`.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        lhs: Val,
        /// Right operand.
        rhs: Val,
        /// Outer negation.
        negated: bool,
    },
}

/// A semantic check: `let bindings in cond ⇒ stmt`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Check {
    /// Quantified resource variables.
    pub bindings: Vec<Binding>,
    /// Condition expression.
    pub cond: Expr,
    /// Statement expression.
    pub stmt: Expr,
}

/// Structural category of a check (Table 2's grouping, minus the
/// mining-provenance "interpolation" class which is not a shape property).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShapeCategory {
    /// Constrains one resource's attributes.
    Intra,
    /// Relates multiple resources without aggregation.
    Inter,
    /// Uses `indegree`/`outdegree`/`length` aggregation.
    InterAgg,
}

impl Check {
    /// The structural category of this check.
    pub fn shape_category(&self) -> ShapeCategory {
        fn val_aggregates(v: &Val) -> bool {
            matches!(
                v,
                Val::InDegree { .. } | Val::OutDegree { .. } | Val::Length(_)
            )
        }
        fn expr_aggregates(e: &Expr) -> bool {
            match e {
                Expr::Cmp { lhs, rhs, .. } => val_aggregates(lhs) || val_aggregates(rhs),
                Expr::CoConn { first, second } | Expr::CoPath { first, second } => {
                    expr_aggregates(first) || expr_aggregates(second)
                }
                _ => false,
            }
        }
        if expr_aggregates(&self.cond) || expr_aggregates(&self.stmt) {
            ShapeCategory::InterAgg
        } else if self.bindings.len() > 1 {
            ShapeCategory::Inter
        } else {
            ShapeCategory::Intra
        }
    }

    /// The declared type of a variable, if bound.
    pub fn type_of(&self, var: &str) -> Option<&'static str> {
        self.bindings
            .iter()
            .find(|b| b.var == *var)
            .map(|b| b.rtype.as_str())
    }

    /// Resource types mentioned in the bindings (deduplicated, in order).
    pub fn types(&self) -> Vec<&'static str> {
        let mut out: Vec<&'static str> = Vec::new();
        for b in &self.bindings {
            if !out.contains(&b.rtype.as_str()) {
                out.push(b.rtype.as_str());
            }
        }
        out
    }

    /// A stable canonical string form, used at text boundaries (reports,
    /// logs, fixtures). In-pipeline dedup hashes the IR directly.
    pub fn canonical(&self) -> String {
        self.to_string()
    }

    /// A 64-bit FNV-1a hash of the canonical form: the candidate's
    /// identity in observability traces and provenance ledgers. Stable
    /// across runs and processes (pure function of the canonical string),
    /// printed as 16 lowercase hex digits at text boundaries.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf29ce484222325;
        const PRIME: u64 = 0x100000001b3;
        let mut hash = OFFSET;
        for byte in self.canonical().bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(PRIME);
        }
        hash
    }
}

/// A stable 64-bit identity for a check *set*: FNV-1a over the per-check
/// canonical fingerprints in order. Used wherever a verdict depends on the
/// whole set at once — the scan memo key (a cache survives check-set swaps
/// without invalidation) and the repair fingerprint (a repair is only
/// meaningful relative to the set it was asked to satisfy).
pub fn check_set_key(checks: &[Check]) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut hash = OFFSET;
    for check in checks {
        for byte in check.fingerprint().to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(PRIME);
        }
    }
    hash
}

/// Escapes a string literal for the check language: backslash-escapes the
/// quote and the backslash itself so every string round-trips through
/// [`crate::parse_check`].
fn escape_str(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "'")?;
    #[cfg(feature = "test-hooks")]
    if crate::test_hooks::literal_escaping_disabled() {
        // Reinstates the pre-IR-refactor bug for mutation-testing the
        // fuzzer: literals print raw, so embedded quotes break re-parsing.
        write!(f, "{s}")?;
        return write!(f, "'");
    }
    for c in s.chars() {
        match c {
            '\'' | '\\' => write!(f, "\\{c}")?,
            _ => write!(f, "{c}")?,
        }
    }
    write!(f, "'")
}

fn fmt_val(v: &Val, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match v {
        Val::Lit(Value::Str(s)) => escape_str(s, f),
        Val::Lit(other) => write!(f, "{}", other.render()),
        Val::Endpoint { var, attr } => write!(f, "{var}.{attr}"),
        Val::InDegree { var, tau } => write!(f, "indegree({var}, {})", fmt_tau(tau)),
        Val::OutDegree { var, tau } => write!(f, "outdegree({var}, {})", fmt_tau(tau)),
        Val::Length(inner) => {
            write!(f, "length(")?;
            fmt_val(inner, f)?;
            write!(f, ")")
        }
    }
}

fn fmt_tau(tau: &TypeSpec) -> String {
    match tau {
        TypeSpec::Is(t) => short_name(t).to_string(),
        TypeSpec::Not(t) => format!("!{}", short_name(t)),
    }
}

/// Prints the interior of a `conn`/`path` edge (no surrounding call syntax),
/// used by the `coconn`/`copath` forms.
fn fmt_edge(e: &Expr, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match e {
        Expr::Conn {
            src,
            in_endpoint,
            dst,
            out_attr,
        } => write!(f, "{src}.{in_endpoint} -> {dst}.{out_attr}"),
        Expr::Path { src, dst } => write!(f, "{src} -> {dst}"),
        // Grammatically co-forms only nest edges; print anything else in
        // full so malformed IR stays visible rather than truncated.
        other => write!(f, "{other}"),
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Conn { .. } => {
                write!(f, "conn(")?;
                fmt_edge(self, f)?;
                write!(f, ")")
            }
            Expr::Path { .. } => {
                write!(f, "path(")?;
                fmt_edge(self, f)?;
                write!(f, ")")
            }
            Expr::CoConn { first, second } => {
                write!(f, "coconn(")?;
                fmt_edge(first, f)?;
                write!(f, ", ")?;
                fmt_edge(second, f)?;
                write!(f, ")")
            }
            Expr::CoPath { first, second } => {
                write!(f, "copath(")?;
                fmt_edge(first, f)?;
                write!(f, ", ")?;
                fmt_edge(second, f)?;
                write!(f, ")")
            }
            Expr::Cmp {
                op,
                lhs,
                rhs,
                negated,
            } => {
                if *negated {
                    write!(f, "!")?;
                }
                match op {
                    CmpOp::Overlap | CmpOp::Contain => {
                        write!(f, "{op}(")?;
                        fmt_val(lhs, f)?;
                        write!(f, ", ")?;
                        fmt_val(rhs, f)?;
                        write!(f, ")")
                    }
                    _ => {
                        fmt_val(lhs, f)?;
                        write!(f, " {op} ")?;
                        fmt_val(rhs, f)
                    }
                }
            }
        }
    }
}

impl fmt::Display for Check {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "let ")?;
        for (i, b) in self.bindings.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}:{}", b.var, short_name(&b.rtype))?;
        }
        write!(f, " in {} => {}", self.cond, self.stmt)
    }
}
