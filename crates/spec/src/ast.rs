//! AST for the check specification language.

use serde::{Deserialize, Serialize};
use std::fmt;
use zodiac_kb::short_name;
use zodiac_model::Value;

/// A resource variable binding: `r1 : azurerm_linux_virtual_machine`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Binding {
    /// Variable name.
    pub var: String,
    /// Full resource type name.
    pub rtype: String,
}

/// A type specifier `τ ::= t | !t` used by degree aggregations.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TypeSpec {
    /// Matches exactly this type.
    Is(String),
    /// Matches every type except this one.
    Not(String),
}

impl TypeSpec {
    /// The underlying type name.
    pub fn type_name(&self) -> &str {
        match self {
            TypeSpec::Is(t) | TypeSpec::Not(t) => t,
        }
    }

    /// True if this is the negated form.
    pub fn negated(&self) -> bool {
        matches!(self, TypeSpec::Not(_))
    }
}

/// Comparison / function operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// CIDR ranges share addresses.
    Overlap,
    /// First CIDR contains the second.
    Contain,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Le => "<=",
            CmpOp::Ge => ">=",
            CmpOp::Lt => "<",
            CmpOp::Gt => ">",
            CmpOp::Overlap => "overlap",
            CmpOp::Contain => "contain",
        };
        write!(f, "{s}")
    }
}

/// A value term.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Val {
    /// A literal base value.
    Lit(Value),
    /// `r.attr` — an attribute endpoint (dotted path allowed).
    Endpoint {
        /// Variable name.
        var: String,
        /// Dotted attribute path.
        attr: String,
    },
    /// `indegree(r, τ)`.
    InDegree {
        /// Variable name.
        var: String,
        /// Edge-source type filter.
        tau: TypeSpec,
    },
    /// `outdegree(r, τ)`.
    OutDegree {
        /// Variable name.
        var: String,
        /// Edge-target type filter.
        tau: TypeSpec,
    },
    /// `length(r.attr)` — number of elements of a list attribute.
    Length(Box<Val>),
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Expr {
    /// `conn(r1.in → r2.out)`.
    Conn {
        /// Source variable.
        src: String,
        /// Inbound endpoint on the source (indices stripped).
        in_endpoint: String,
        /// Destination variable.
        dst: String,
        /// Outbound attribute on the destination.
        out_attr: String,
    },
    /// `path(r1 → r2)`.
    Path {
        /// Source variable.
        src: String,
        /// Destination variable.
        dst: String,
    },
    /// `coconn(e1, e2)` — both edges exist.
    CoConn {
        /// First edge.
        first: Box<Expr>,
        /// Second edge.
        second: Box<Expr>,
    },
    /// `copath(p1, p2)` — both paths exist.
    CoPath {
        /// First path.
        first: Box<Expr>,
        /// Second path.
        second: Box<Expr>,
    },
    /// `op(val1, val2)` or infix comparison; `negated` renders as `!op(...)`.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        lhs: Val,
        /// Right operand.
        rhs: Val,
        /// Outer negation.
        negated: bool,
    },
}

/// A semantic check: `let bindings in cond ⇒ stmt`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Check {
    /// Quantified resource variables.
    pub bindings: Vec<Binding>,
    /// Condition expression.
    pub cond: Expr,
    /// Statement expression.
    pub stmt: Expr,
}

/// Structural category of a check (Table 2's grouping, minus the
/// mining-provenance "interpolation" class which is not a shape property).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShapeCategory {
    /// Constrains one resource's attributes.
    Intra,
    /// Relates multiple resources without aggregation.
    Inter,
    /// Uses `indegree`/`outdegree`/`length` aggregation.
    InterAgg,
}

impl Check {
    /// The structural category of this check.
    pub fn shape_category(&self) -> ShapeCategory {
        fn val_aggregates(v: &Val) -> bool {
            matches!(
                v,
                Val::InDegree { .. } | Val::OutDegree { .. } | Val::Length(_)
            )
        }
        fn expr_aggregates(e: &Expr) -> bool {
            match e {
                Expr::Cmp { lhs, rhs, .. } => val_aggregates(lhs) || val_aggregates(rhs),
                Expr::CoConn { first, second } | Expr::CoPath { first, second } => {
                    expr_aggregates(first) || expr_aggregates(second)
                }
                _ => false,
            }
        }
        if expr_aggregates(&self.cond) || expr_aggregates(&self.stmt) {
            ShapeCategory::InterAgg
        } else if self.bindings.len() > 1 {
            ShapeCategory::Inter
        } else {
            ShapeCategory::Intra
        }
    }

    /// The declared type of a variable, if bound.
    pub fn type_of(&self, var: &str) -> Option<&str> {
        self.bindings
            .iter()
            .find(|b| b.var == var)
            .map(|b| b.rtype.as_str())
    }

    /// Resource types mentioned in the bindings (deduplicated, in order).
    pub fn types(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for b in &self.bindings {
            if !out.contains(&b.rtype.as_str()) {
                out.push(&b.rtype);
            }
        }
        out
    }

    /// A stable canonical string form, used for deduplication.
    pub fn canonical(&self) -> String {
        self.to_string()
    }
}

fn fmt_val(v: &Val, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match v {
        Val::Lit(Value::Str(s)) => write!(f, "'{s}'"),
        Val::Lit(other) => write!(f, "{}", other.render()),
        Val::Endpoint { var, attr } => write!(f, "{var}.{attr}"),
        Val::InDegree { var, tau } => write!(f, "indegree({var}, {})", fmt_tau(tau)),
        Val::OutDegree { var, tau } => write!(f, "outdegree({var}, {})", fmt_tau(tau)),
        Val::Length(inner) => {
            write!(f, "length(")?;
            fmt_val(inner, f)?;
            write!(f, ")")
        }
    }
}

fn fmt_tau(tau: &TypeSpec) -> String {
    match tau {
        TypeSpec::Is(t) => short_name(t).to_string(),
        TypeSpec::Not(t) => format!("!{}", short_name(t)),
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Conn {
                src,
                in_endpoint,
                dst,
                out_attr,
            } => write!(f, "conn({src}.{in_endpoint} -> {dst}.{out_attr})"),
            Expr::Path { src, dst } => write!(f, "path({src} -> {dst})"),
            Expr::CoConn { first, second } => {
                let strip = |e: &Expr| {
                    let s = e.to_string();
                    s.trim_start_matches("conn(")
                        .trim_end_matches(')')
                        .to_string()
                };
                write!(f, "coconn({}, {})", strip(first), strip(second))
            }
            Expr::CoPath { first, second } => {
                let strip = |e: &Expr| {
                    let s = e.to_string();
                    s.trim_start_matches("path(")
                        .trim_end_matches(')')
                        .to_string()
                };
                write!(f, "copath({}, {})", strip(first), strip(second))
            }
            Expr::Cmp {
                op,
                lhs,
                rhs,
                negated,
            } => {
                if *negated {
                    write!(f, "!")?;
                }
                match op {
                    CmpOp::Overlap | CmpOp::Contain => {
                        write!(f, "{op}(")?;
                        fmt_val(lhs, f)?;
                        write!(f, ", ")?;
                        fmt_val(rhs, f)?;
                        write!(f, ")")
                    }
                    _ => {
                        fmt_val(lhs, f)?;
                        write!(f, " {op} ")?;
                        fmt_val(rhs, f)
                    }
                }
            }
        }
    }
}

impl fmt::Display for Check {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "let ")?;
        for (i, b) in self.bindings.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}:{}", b.var, short_name(&b.rtype))?;
        }
        write!(f, " in {} => {}", self.cond, self.stmt)
    }
}
