//! Evaluation of semantic checks over resource graphs.
//!
//! A check `let r₁:t₁,…,rₙ:tₙ in cond ⇒ stmt` is evaluated by enumerating
//! every binding of the variables to *distinct* resources of the declared
//! types and testing `cond` and `stmt` on each. The check **holds** on a
//! program when every binding with a true condition also has a true
//! statement; bindings where `cond ∧ ¬stmt` are **violations**, and bindings
//! where `cond ∧ stmt` are **witnesses** (used by mining statistics and by
//! positive-test-case selection).
//!
//! Attribute endpoints resolve with *multi* semantics: a dotted path descends
//! through nested blocks, fanning out over list elements, so
//! `r.address_prefixes` yields every CIDR in the list and
//! `r.security_rule.priority` yields the priority of every rule. Comparisons
//! are existential over the resolved sets; outer negation flips the result,
//! giving `!overlap(...)` the expected universal reading. When a
//! [`KnowledgeBase`] is supplied, omitted attributes fall back to their
//! provider defaults (Class-2 facts) before defaulting to `Null`.

use crate::ast::{Check, CmpOp, Expr, Val};
use std::collections::BTreeMap;
use zodiac_graph::{NodeIdx, ResourceGraph};
use zodiac_kb::KnowledgeBase;
use zodiac_model::{Cidr, Resource, Symbol, Value};

/// Evaluation context: the graph plus an optional KB for default values.
#[derive(Clone, Copy)]
pub struct EvalContext<'a> {
    /// The resource graph under evaluation.
    pub graph: &'a ResourceGraph,
    /// Knowledge base for Class-2 defaults (optional).
    pub kb: Option<&'a KnowledgeBase>,
}

/// One evaluated binding of a check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    /// Variable → node assignments, keyed by variable name.
    pub binding: BTreeMap<Symbol, NodeIdx>,
    /// Whether the condition held.
    pub cond: bool,
    /// Whether the statement held.
    pub stmt: bool,
}

impl Instance {
    /// True if this instance violates the check (`cond ∧ ¬stmt`).
    pub fn is_violation(&self) -> bool {
        self.cond && !self.stmt
    }

    /// True if this instance witnesses the check (`cond ∧ stmt`).
    pub fn is_witness(&self) -> bool {
        self.cond && self.stmt
    }
}

/// Evaluates a check over all bindings.
pub fn instances(check: &Check, ctx: EvalContext<'_>) -> Vec<Instance> {
    let mut out = Vec::new();
    let candidates: Vec<Vec<NodeIdx>> = check
        .bindings
        .iter()
        .map(|b| ctx.graph.nodes_of_type(&b.rtype).collect())
        .collect();
    let mut assignment: Vec<NodeIdx> = Vec::with_capacity(check.bindings.len());
    enumerate(check, ctx, &candidates, &mut assignment, &mut out);
    out
}

fn enumerate(
    check: &Check,
    ctx: EvalContext<'_>,
    candidates: &[Vec<NodeIdx>],
    assignment: &mut Vec<NodeIdx>,
    out: &mut Vec<Instance>,
) {
    let depth = assignment.len();
    if depth == check.bindings.len() {
        let binding: BTreeMap<Symbol, NodeIdx> = check
            .bindings
            .iter()
            .zip(assignment.iter())
            .map(|(b, &n)| (b.var, n))
            .collect();
        let cond = eval_expr(&check.cond, &binding, ctx);
        let stmt = eval_expr(&check.stmt, &binding, ctx);
        out.push(Instance {
            binding,
            cond,
            stmt,
        });
        return;
    }
    for &node in &candidates[depth] {
        if assignment.contains(&node) {
            continue; // Distinct variables bind distinct resources.
        }
        assignment.push(node);
        enumerate(check, ctx, candidates, assignment, out);
        assignment.pop();
    }
}

/// True if the check holds on the graph (no violating binding).
pub fn holds(check: &Check, ctx: EvalContext<'_>) -> bool {
    instances(check, ctx).iter().all(|i| !i.is_violation())
}

/// All violating bindings.
pub fn violations(check: &Check, ctx: EvalContext<'_>) -> Vec<Instance> {
    instances(check, ctx)
        .into_iter()
        .filter(Instance::is_violation)
        .collect()
}

/// All witnessing bindings.
pub fn witnesses(check: &Check, ctx: EvalContext<'_>) -> Vec<Instance> {
    instances(check, ctx)
        .into_iter()
        .filter(Instance::is_witness)
        .collect()
}

fn eval_expr(expr: &Expr, binding: &BTreeMap<Symbol, NodeIdx>, ctx: EvalContext<'_>) -> bool {
    match expr {
        Expr::Conn {
            src,
            in_endpoint,
            dst,
            out_attr,
        } => {
            let (Some(&s), Some(&d)) = (binding.get(src), binding.get(dst)) else {
                return false;
            };
            ctx.graph
                .conn(s, Some(in_endpoint.as_str()), d, Some(out_attr.as_str()))
        }
        Expr::Path { src, dst } => {
            let (Some(&s), Some(&d)) = (binding.get(src), binding.get(dst)) else {
                return false;
            };
            ctx.graph.path(s, d)
        }
        Expr::CoConn { first, second } | Expr::CoPath { first, second } => {
            eval_expr(first, binding, ctx) && eval_expr(second, binding, ctx)
        }
        Expr::Cmp {
            op,
            lhs,
            rhs,
            negated,
        } => {
            let l = resolve(lhs, binding, ctx);
            let r = resolve(rhs, binding, ctx);
            let result = compare(*op, &l, &r);
            result != *negated
        }
    }
}

/// Resolves a value term to the set of concrete values it denotes.
fn resolve(val: &Val, binding: &BTreeMap<Symbol, NodeIdx>, ctx: EvalContext<'_>) -> Vec<Value> {
    match val {
        Val::Lit(v) => vec![v.clone()],
        Val::Endpoint { var, attr } => {
            let Some(&node) = binding.get(var) else {
                return vec![Value::Null];
            };
            let resource = ctx.graph.resource(node);
            let segs: Vec<String> = attr.split('.').map(str::to_string).collect();
            let mut found = resolve_multi(resource, &segs);
            if found.is_empty() {
                if let Some(kb) = ctx.kb {
                    if let Some(default) = kb.default_of(&resource.rtype, attr.as_str()) {
                        found.push(default);
                    }
                }
            }
            if found.is_empty() {
                found.push(Value::Null);
            }
            found
        }
        Val::InDegree { var, tau } => {
            let Some(&node) = binding.get(var) else {
                return vec![Value::Null];
            };
            vec![Value::Int(
                ctx.graph
                    .distinct_in_neighbors(node, tau.type_name(), tau.negated())
                    as i64,
            )]
        }
        Val::OutDegree { var, tau } => {
            let Some(&node) = binding.get(var) else {
                return vec![Value::Null];
            };
            vec![Value::Int(
                ctx.graph
                    .distinct_out_neighbors(node, tau.type_name(), tau.negated())
                    as i64,
            )]
        }
        Val::Length(inner) => {
            let Val::Endpoint { var, attr } = inner.as_ref() else {
                let vals = resolve(inner, binding, ctx);
                return vec![Value::Int(vals.len() as i64)];
            };
            let Some(&node) = binding.get(var) else {
                return vec![Value::Null];
            };
            let resource = ctx.graph.resource(node);
            let path: Result<zodiac_model::AttrPath, _> = attr.parse();
            let n = match path.ok().and_then(|p| resource.get(&p).cloned()) {
                Some(Value::List(l)) => l.len(),
                Some(Value::Null) | None => 0,
                Some(_) => 1,
            };
            vec![Value::Int(n as i64)]
        }
    }
}

/// Multi-resolution: descends `segs` through `resource`'s attributes,
/// fanning out over list elements at non-index segments.
pub fn resolve_multi(resource: &Resource, segs: &[String]) -> Vec<Value> {
    fn descend(v: &Value, segs: &[String], out: &mut Vec<Value>) {
        let Some((head, rest)) = segs.split_first() else {
            match v {
                // A terminal list fans out into its leaves.
                Value::List(l) => {
                    for item in l {
                        descend(item, &[], out);
                    }
                }
                other => out.push(other.clone()),
            }
            return;
        };
        match v {
            Value::Map(m) => {
                if let Some(inner) = m.get(head) {
                    descend(inner, rest, out);
                }
            }
            Value::List(l) => {
                if let Ok(idx) = head.parse::<usize>() {
                    if let Some(inner) = l.get(idx) {
                        descend(inner, rest, out);
                    }
                } else {
                    for item in l {
                        descend(item, segs, out);
                    }
                }
            }
            _ => {}
        }
    }

    let Some((head, rest)) = segs.split_first() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    if let Some(v) = resource.attrs.get(head) {
        descend(v, rest, &mut out);
    }
    out
}

fn compare(op: CmpOp, lhs: &[Value], rhs: &[Value]) -> bool {
    lhs.iter()
        .any(|l| rhs.iter().any(|r| compare_one(op, l, r)))
}

fn compare_one(op: CmpOp, l: &Value, r: &Value) -> bool {
    match op {
        CmpOp::Eq => values_eq(l, r),
        CmpOp::Ne => !values_eq(l, r),
        CmpOp::Le | CmpOp::Ge | CmpOp::Lt | CmpOp::Gt => {
            let (Some(a), Some(b)) = (l.as_int(), r.as_int()) else {
                return false;
            };
            match op {
                CmpOp::Le => a <= b,
                CmpOp::Ge => a >= b,
                CmpOp::Lt => a < b,
                CmpOp::Gt => a > b,
                _ => unreachable!(),
            }
        }
        CmpOp::Overlap | CmpOp::Contain => {
            let (Some(a), Some(b)) = (as_cidr(l), as_cidr(r)) else {
                return false;
            };
            if op == CmpOp::Overlap {
                a.overlaps(&b)
            } else {
                a.contains(&b)
            }
        }
    }
}

fn values_eq(l: &Value, r: &Value) -> bool {
    match (l, r) {
        // Integer/string cross-comparison tolerates "2" vs 2.
        (Value::Int(a), Value::Str(b)) | (Value::Str(b), Value::Int(a)) => {
            b.parse::<i64>().map(|x| x == *a).unwrap_or(false)
        }
        _ => l == r,
    }
}

fn as_cidr(v: &Value) -> Option<Cidr> {
    v.as_str().and_then(|s| s.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_check;
    use zodiac_model::{Program, Resource};

    fn graph(p: Program) -> ResourceGraph {
        ResourceGraph::build(p)
    }

    fn vm_nic_program(vm_loc: &str, nic_loc: &str) -> Program {
        Program::new()
            .with(
                Resource::new("azurerm_network_interface", "nic")
                    .with("location", nic_loc)
                    .with("subnet_id", Value::r("azurerm_subnet", "s", "id")),
            )
            .with(Resource::new("azurerm_subnet", "s").with("name", "internal"))
            .with(
                Resource::new("azurerm_linux_virtual_machine", "vm")
                    .with("location", vm_loc)
                    .with(
                        "network_interface_ids",
                        Value::List(vec![Value::r("azurerm_network_interface", "nic", "id")]),
                    ),
            )
    }

    fn check_vm_nic_location() -> Check {
        parse_check(
            "let r1:VM, r2:NIC in conn(r1.network_interface_ids -> r2.id) => r1.location == r2.location",
        )
        .unwrap()
    }

    #[test]
    fn conforming_program_holds() {
        let g = graph(vm_nic_program("eastus", "eastus"));
        let ctx = EvalContext {
            graph: &g,
            kb: None,
        };
        assert!(holds(&check_vm_nic_location(), ctx));
        assert_eq!(witnesses(&check_vm_nic_location(), ctx).len(), 1);
    }

    #[test]
    fn violating_program_fails() {
        let g = graph(vm_nic_program("eastus", "westus"));
        let ctx = EvalContext {
            graph: &g,
            kb: None,
        };
        let v = violations(&check_vm_nic_location(), ctx);
        assert_eq!(v.len(), 1);
        assert!(!holds(&check_vm_nic_location(), ctx));
    }

    #[test]
    fn unconnected_resources_satisfy_vacuously() {
        let p = Program::new()
            .with(Resource::new("azurerm_linux_virtual_machine", "vm").with("location", "a"))
            .with(Resource::new("azurerm_network_interface", "nic").with("location", "b"));
        let g = graph(p);
        let ctx = EvalContext {
            graph: &g,
            kb: None,
        };
        assert!(holds(&check_vm_nic_location(), ctx));
        assert!(witnesses(&check_vm_nic_location(), ctx).is_empty());
    }

    #[test]
    fn null_checks_detect_missing_attrs() {
        let check =
            parse_check("let r:VM in r.priority == 'Spot' => r.eviction_policy != null").unwrap();
        let spot_without = Program::new()
            .with(Resource::new("azurerm_linux_virtual_machine", "vm").with("priority", "Spot"));
        let g = graph(spot_without);
        let ctx = EvalContext {
            graph: &g,
            kb: None,
        };
        assert!(!holds(&check, ctx));

        let spot_with = Program::new().with(
            Resource::new("azurerm_linux_virtual_machine", "vm")
                .with("priority", "Spot")
                .with("eviction_policy", "Deallocate"),
        );
        let g2 = graph(spot_with);
        assert!(holds(
            &check,
            EvalContext {
                graph: &g2,
                kb: None
            }
        ));
    }

    #[test]
    fn kb_defaults_apply() {
        // sku omitted on public IP defaults to Basic via the KB.
        let kb = zodiac_kb::azure_kb();
        let check = parse_check("let r:IP in r.allocation_method == 'Dynamic' => r.sku == 'Basic'")
            .unwrap();
        let p = Program::new()
            .with(Resource::new("azurerm_public_ip", "ip").with("allocation_method", "Dynamic"));
        let g = graph(p);
        assert!(holds(
            &check,
            EvalContext {
                graph: &g,
                kb: Some(&kb)
            }
        ));
        // Without the KB the default is unknown and the check is violated.
        assert!(!holds(
            &check,
            EvalContext {
                graph: &g,
                kb: None
            }
        ));
    }

    #[test]
    fn overlap_over_cidr_lists() {
        let check = parse_check(
            "let r1:SUBNET, r2:SUBNET, r3:VPC in \
             coconn(r1.virtual_network_name -> r3.name, r2.virtual_network_name -> r3.name) \
             => !overlap(r1.address_prefixes, r2.address_prefixes)",
        )
        .unwrap();
        let mk = |c1: &str, c2: &str| {
            Program::new()
                .with(Resource::new("azurerm_virtual_network", "v").with("name", "vnet"))
                .with(
                    Resource::new("azurerm_subnet", "a")
                        .with("address_prefixes", Value::List(vec![Value::s(c1)]))
                        .with(
                            "virtual_network_name",
                            Value::r("azurerm_virtual_network", "v", "name"),
                        ),
                )
                .with(
                    Resource::new("azurerm_subnet", "b")
                        .with("address_prefixes", Value::List(vec![Value::s(c2)]))
                        .with(
                            "virtual_network_name",
                            Value::r("azurerm_virtual_network", "v", "name"),
                        ),
                )
        };
        let ok = graph(mk("10.0.1.0/24", "10.0.2.0/24"));
        assert!(holds(
            &check,
            EvalContext {
                graph: &ok,
                kb: None
            }
        ));
        let bad = graph(mk("10.0.1.0/24", "10.0.1.128/25"));
        assert!(!holds(
            &check,
            EvalContext {
                graph: &bad,
                kb: None
            }
        ));
    }

    #[test]
    fn degree_checks() {
        let check = parse_check("let r:VM in r.size == 'Standard_F2s_v2' => indegree(r, NIC) <= 2")
            .unwrap();
        // Degree here counts NICs referencing the VM; build the inverse shape:
        // attachments point from NIC to VM via an attachment-like edge.
        let mut p = Program::new().with(
            Resource::new("azurerm_linux_virtual_machine", "vm").with("size", "Standard_F2s_v2"),
        );
        for i in 0..3 {
            p.add(
                Resource::new("azurerm_network_interface", format!("nic{i}")).with(
                    "attached_vm_id",
                    Value::r("azurerm_linux_virtual_machine", "vm", "id"),
                ),
            )
            .unwrap();
        }
        let g = graph(p);
        assert!(!holds(
            &check,
            EvalContext {
                graph: &g,
                kb: None
            }
        ));
    }

    #[test]
    fn nested_multi_resolution() {
        let check = parse_check(
            "let r:SG in r.security_rule.direction == 'Inbound' => r.security_rule.priority >= 100",
        )
        .unwrap();
        let mut sg = Resource::new("azurerm_network_security_group", "sg");
        sg.attrs.insert(
            "security_rule".into(),
            Value::List(vec![Value::Map(
                [
                    ("direction".to_string(), Value::s("Inbound")),
                    ("priority".to_string(), Value::Int(50)),
                ]
                .into_iter()
                .collect(),
            )]),
        );
        let g = graph(Program::new().with(sg));
        // Existential semantics: priority 50 < 100, so the stmt fails.
        assert!(!holds(
            &check,
            EvalContext {
                graph: &g,
                kb: None
            }
        ));
    }

    #[test]
    fn length_counts_blocks() {
        let check =
            parse_check("let r:GW in r.active_active == true => length(r.ip_configuration) >= 2")
                .unwrap();
        let mut gw = Resource::new("azurerm_virtual_network_gateway", "gw");
        gw.attrs.insert("active_active".into(), Value::Bool(true));
        gw.attrs.insert(
            "ip_configuration".into(),
            Value::List(vec![Value::Map(Default::default())]),
        );
        let g = graph(Program::new().with(gw));
        assert!(!holds(
            &check,
            EvalContext {
                graph: &g,
                kb: None
            }
        ));
    }

    #[test]
    fn distinct_variables_bind_distinct_nodes() {
        // A single subnet must not bind both r1 and r2.
        let check = parse_check("let r1:SUBNET, r2:SUBNET in path(r1 -> r2) => r1.name != r2.name")
            .unwrap();
        let p = Program::new().with(Resource::new("azurerm_subnet", "only").with("name", "x"));
        let g = graph(p);
        assert!(instances(
            &check,
            EvalContext {
                graph: &g,
                kb: None
            }
        )
        .is_empty());
    }
}
