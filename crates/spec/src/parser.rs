//! Parser for the textual form of semantic checks.
//!
//! The concrete syntax follows the paper's listings:
//!
//! ```text
//! let r1:VM, r2:NIC in
//! conn(r1.network_interface_ids -> r2.id) => r1.location == r2.location
//! ```
//!
//! Resource types may be written either as short aliases (`VM`, `NIC`) or as
//! full provider names (`azurerm_linux_virtual_machine`).

use crate::ast::{Binding, Check, CmpOp, Expr, TypeSpec, Val};
use std::fmt;
use zodiac_kb::long_name;
use zodiac_model::{Symbol, Value};

/// A parse failure with a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "check parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Int(i64),
    Sym(&'static str),
}

fn tokenize(src: &str) -> Result<Vec<Tok>, ParseError> {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' | ')' | ',' | ':' | '.' => {
                out.push(Tok::Sym(match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    ':' => ":",
                    _ => ".",
                }));
                i += 1;
            }
            '-' if chars.get(i + 1) == Some(&'>') => {
                out.push(Tok::Sym("->"));
                i += 2;
            }
            '-' if chars.get(i + 1).is_some_and(|c| c.is_ascii_digit()) => {
                let start = i + 1;
                i += 1;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let n: i64 = text
                    .parse()
                    .map_err(|_| ParseError(format!("bad int {text}")))?;
                out.push(Tok::Int(-n));
            }
            '=' if chars.get(i + 1) == Some(&'>') => {
                out.push(Tok::Sym("=>"));
                i += 2;
            }
            '=' if chars.get(i + 1) == Some(&'=') => {
                out.push(Tok::Sym("=="));
                i += 2;
            }
            '!' if chars.get(i + 1) == Some(&'=') => {
                out.push(Tok::Sym("!="));
                i += 2;
            }
            '!' => {
                out.push(Tok::Sym("!"));
                i += 1;
            }
            '<' if chars.get(i + 1) == Some(&'=') => {
                out.push(Tok::Sym("<="));
                i += 2;
            }
            '>' if chars.get(i + 1) == Some(&'=') => {
                out.push(Tok::Sym(">="));
                i += 2;
            }
            '<' => {
                out.push(Tok::Sym("<"));
                i += 1;
            }
            '>' => {
                out.push(Tok::Sym(">"));
                i += 1;
            }
            '\'' | '"' => {
                let quote = c;
                let mut j = i + 1;
                let mut text = String::new();
                loop {
                    match chars.get(j) {
                        None => return Err(ParseError("unterminated string".into())),
                        Some(&ch) if ch == quote => break,
                        // Backslash escapes the next character (the printer
                        // emits `\'` and `\\`; any escaped char is accepted).
                        Some('\\') => match chars.get(j + 1) {
                            Some(&esc) => {
                                text.push(esc);
                                j += 2;
                            }
                            None => return Err(ParseError("unterminated string".into())),
                        },
                        Some(&ch) => {
                            text.push(ch);
                            j += 1;
                        }
                    }
                }
                out.push(Tok::Str(text));
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let n: i64 = text
                    .parse()
                    .map_err(|_| ParseError(format!("bad int {text}")))?;
                out.push(Tok::Int(n));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Tok::Ident(chars[start..i].iter().collect()));
            }
            other => return Err(ParseError(format!("unexpected char {other:?}"))),
        }
    }
    Ok(out)
}

struct P {
    toks: Vec<Tok>,
    pos: usize,
}

impl P {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_sym(&mut self, s: &str) -> Result<(), ParseError> {
        match self.bump() {
            Some(Tok::Sym(t)) if t == s => Ok(()),
            other => Err(ParseError(format!("expected '{s}', found {other:?}"))),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(ParseError(format!("expected {what}, found {other:?}"))),
        }
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Sym(t)) if *t == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// `var(.seg)+` — returns (var, dotted rest).
    fn dotted(&mut self) -> Result<(String, String), ParseError> {
        let var = self.ident("variable")?;
        let mut segs: Vec<String> = Vec::new();
        while self.eat_sym(".") {
            match self.bump() {
                Some(Tok::Ident(s)) => segs.push(s),
                Some(Tok::Int(n)) => segs.push(n.to_string()),
                other => {
                    return Err(ParseError(format!(
                        "expected path segment, found {other:?}"
                    )))
                }
            }
        }
        if segs.is_empty() {
            return Err(ParseError(format!("expected attribute after {var}")));
        }
        Ok((var, segs.join(".")))
    }

    fn type_spec(&mut self) -> Result<TypeSpec, ParseError> {
        let neg = self.eat_sym("!");
        let t = self.ident("type name")?;
        let full = Symbol::intern(long_name(&t));
        Ok(if neg {
            TypeSpec::Not(full)
        } else {
            TypeSpec::Is(full)
        })
    }

    fn val(&mut self) -> Result<Val, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Int(n)) => {
                self.bump();
                Ok(Val::Lit(Value::Int(n)))
            }
            Some(Tok::Str(s)) => {
                self.bump();
                Ok(Val::Lit(Value::Str(s)))
            }
            Some(Tok::Ident(id)) => match id.as_str() {
                "null" => {
                    self.bump();
                    Ok(Val::Lit(Value::Null))
                }
                "true" | "false" => {
                    self.bump();
                    Ok(Val::Lit(Value::Bool(id == "true")))
                }
                "indegree" | "outdegree" => {
                    self.bump();
                    self.expect_sym("(")?;
                    let var = Symbol::intern(&self.ident("variable")?);
                    self.expect_sym(",")?;
                    let tau = self.type_spec()?;
                    self.expect_sym(")")?;
                    Ok(if id == "indegree" {
                        Val::InDegree { var, tau }
                    } else {
                        Val::OutDegree { var, tau }
                    })
                }
                "length" => {
                    self.bump();
                    self.expect_sym("(")?;
                    let inner = self.val()?;
                    self.expect_sym(")")?;
                    Ok(Val::Length(Box::new(inner)))
                }
                _ => {
                    let (var, attr) = self.dotted()?;
                    Ok(Val::Endpoint {
                        var: Symbol::intern(&var),
                        attr: Symbol::intern(&attr),
                    })
                }
            },
            other => Err(ParseError(format!("expected value, found {other:?}"))),
        }
    }

    fn conn_edge(&mut self) -> Result<Expr, ParseError> {
        let (src, in_endpoint) = self.dotted()?;
        self.expect_sym("->")?;
        let (dst, out_attr) = self.dotted()?;
        Ok(Expr::Conn {
            src: Symbol::intern(&src),
            in_endpoint: Symbol::intern(&in_endpoint),
            dst: Symbol::intern(&dst),
            out_attr: Symbol::intern(&out_attr),
        })
    }

    fn path_edge(&mut self) -> Result<Expr, ParseError> {
        let src = Symbol::intern(&self.ident("variable")?);
        self.expect_sym("->")?;
        let dst = Symbol::intern(&self.ident("variable")?);
        Ok(Expr::Path { src, dst })
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let negated = self.eat_sym("!");
        match self.peek().cloned() {
            Some(Tok::Ident(id)) => match id.as_str() {
                "conn" if self.lookahead_call() => {
                    self.bump();
                    self.expect_sym("(")?;
                    let e = self.conn_edge()?;
                    self.expect_sym(")")?;
                    if negated {
                        return Err(ParseError("negated conn is not in the grammar".into()));
                    }
                    Ok(e)
                }
                "path" if self.lookahead_call() => {
                    self.bump();
                    self.expect_sym("(")?;
                    let e = self.path_edge()?;
                    self.expect_sym(")")?;
                    if negated {
                        return Err(ParseError("negated path is not in the grammar".into()));
                    }
                    Ok(e)
                }
                "coconn" if self.lookahead_call() => {
                    self.bump();
                    self.expect_sym("(")?;
                    let first = self.conn_edge()?;
                    self.expect_sym(",")?;
                    let second = self.conn_edge()?;
                    self.expect_sym(")")?;
                    Ok(Expr::CoConn {
                        first: Box::new(first),
                        second: Box::new(second),
                    })
                }
                "copath" if self.lookahead_call() => {
                    self.bump();
                    self.expect_sym("(")?;
                    let first = self.path_edge()?;
                    self.expect_sym(",")?;
                    let second = self.path_edge()?;
                    self.expect_sym(")")?;
                    Ok(Expr::CoPath {
                        first: Box::new(first),
                        second: Box::new(second),
                    })
                }
                "overlap" | "contain" if self.lookahead_call() => {
                    self.bump();
                    self.expect_sym("(")?;
                    let lhs = self.val()?;
                    self.expect_sym(",")?;
                    let rhs = self.val()?;
                    self.expect_sym(")")?;
                    Ok(Expr::Cmp {
                        op: if id == "overlap" {
                            CmpOp::Overlap
                        } else {
                            CmpOp::Contain
                        },
                        lhs,
                        rhs,
                        negated,
                    })
                }
                _ => self.cmp_expr(negated),
            },
            _ => self.cmp_expr(negated),
        }
    }

    fn lookahead_call(&self) -> bool {
        matches!(self.toks.get(self.pos + 1), Some(Tok::Sym("(")))
    }

    fn cmp_expr(&mut self, negated: bool) -> Result<Expr, ParseError> {
        let lhs = self.val()?;
        let op = match self.bump() {
            Some(Tok::Sym("==")) => CmpOp::Eq,
            Some(Tok::Sym("!=")) => CmpOp::Ne,
            Some(Tok::Sym("<=")) => CmpOp::Le,
            Some(Tok::Sym(">=")) => CmpOp::Ge,
            Some(Tok::Sym("<")) => CmpOp::Lt,
            Some(Tok::Sym(">")) => CmpOp::Gt,
            other => return Err(ParseError(format!("expected comparison, found {other:?}"))),
        };
        let rhs = self.val()?;
        Ok(Expr::Cmp {
            op,
            lhs,
            rhs,
            negated,
        })
    }
}

/// Parses a semantic check from its textual form.
pub fn parse_check(src: &str) -> Result<Check, ParseError> {
    let toks = tokenize(src)?;
    let mut p = P { toks, pos: 0 };
    match p.bump() {
        Some(Tok::Ident(kw)) if kw == "let" => {}
        other => return Err(ParseError(format!("expected 'let', found {other:?}"))),
    }
    let mut bindings = Vec::new();
    loop {
        let var = p.ident("variable")?;
        p.expect_sym(":")?;
        let t = p.ident("type")?;
        bindings.push(Binding {
            var: Symbol::intern(&var),
            rtype: Symbol::intern(long_name(&t)),
        });
        if !p.eat_sym(",") {
            break;
        }
        // Allow a trailing comma before `in`, as in the paper's listings.
        if matches!(p.peek(), Some(Tok::Ident(kw)) if kw == "in") {
            break;
        }
    }
    match p.bump() {
        Some(Tok::Ident(kw)) if kw == "in" => {}
        other => return Err(ParseError(format!("expected 'in', found {other:?}"))),
    }
    let cond = p.expr()?;
    p.expect_sym("=>")?;
    let stmt = p.expr()?;
    if p.peek().is_some() {
        return Err(ParseError(format!("trailing tokens: {:?}", p.peek())));
    }
    // All variables used must be bound.
    for var in used_vars(&cond).into_iter().chain(used_vars(&stmt)) {
        if !bindings.iter().any(|b| b.var == var) {
            return Err(ParseError(format!("unbound variable: {var}")));
        }
    }
    Ok(Check {
        bindings,
        cond,
        stmt,
    })
}

fn used_vars(e: &Expr) -> Vec<Symbol> {
    fn from_val(v: &Val, out: &mut Vec<Symbol>) {
        match v {
            Val::Endpoint { var, .. } | Val::InDegree { var, .. } | Val::OutDegree { var, .. } => {
                out.push(*var)
            }
            Val::Length(inner) => from_val(inner, out),
            Val::Lit(_) => {}
        }
    }
    let mut out = Vec::new();
    match e {
        Expr::Conn { src, dst, .. } | Expr::Path { src, dst } => {
            out.push(*src);
            out.push(*dst);
        }
        Expr::CoConn { first, second } | Expr::CoPath { first, second } => {
            out.extend(used_vars(first));
            out.extend(used_vars(second));
        }
        Expr::Cmp { lhs, rhs, .. } => {
            from_val(lhs, &mut out);
            from_val(rhs, &mut out);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_example_vm_nic_location() {
        let c = parse_check(
            "let r1:VM, r2:NIC in conn(r1.network_interface_ids -> r2.id) => r1.location == r2.location",
        )
        .unwrap();
        assert_eq!(c.bindings[0].rtype, "azurerm_linux_virtual_machine");
        assert!(matches!(c.cond, Expr::Conn { .. }));
        assert!(matches!(
            c.stmt,
            Expr::Cmp {
                op: CmpOp::Eq,
                negated: false,
                ..
            }
        ));
    }

    #[test]
    fn fingerprint_is_stable_and_separates_distinct_checks() {
        let a = parse_check("let r:VM in r.priority == 'Spot' => r.evict_policy != null").unwrap();
        let b = parse_check("let r:VM in r.priority == 'Spot' => r.evict_policy == null").unwrap();
        assert_eq!(a.fingerprint(), a.fingerprint());
        assert_ne!(a.fingerprint(), b.fingerprint());
        // Identity survives a print/parse round trip.
        let reparsed = parse_check(&a.canonical()).unwrap();
        assert_eq!(a.fingerprint(), reparsed.fingerprint());
    }

    #[test]
    fn parses_spot_vm_check() {
        let c = parse_check("let r:VM in r.priority == 'Spot' => r.evict_policy != null").unwrap();
        assert_eq!(c.bindings.len(), 1);
        assert!(matches!(
            &c.stmt,
            Expr::Cmp {
                op: CmpOp::Ne,
                rhs: Val::Lit(Value::Null),
                ..
            }
        ));
    }

    #[test]
    fn parses_degree_checks() {
        let c = parse_check("let r:VM in r.size == 'Standard_F2s_v2' => indegree(r, NIC) <= 2")
            .unwrap();
        assert!(matches!(
            &c.stmt,
            Expr::Cmp {
                op: CmpOp::Le,
                lhs: Val::InDegree { .. },
                ..
            }
        ));
        let c2 = parse_check(
            "let r1:GW, r2:SUBNET in conn(r1.ip_configuration.subnet_id -> r2.id) => outdegree(r2, !GW) == 0",
        )
        .unwrap();
        match &c2.stmt {
            Expr::Cmp {
                lhs: Val::OutDegree { tau, .. },
                ..
            } => assert!(tau.negated()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_overlap_negated() {
        let c = parse_check(
            "let r1:SUBNET, r2:SUBNET, r3:VPC in \
             coconn(r1.virtual_network_name -> r3.name, r2.virtual_network_name -> r3.name) \
             => !overlap(r1.address_prefixes, r2.address_prefixes)",
        )
        .unwrap();
        assert!(matches!(
            &c.stmt,
            Expr::Cmp {
                op: CmpOp::Overlap,
                negated: true,
                ..
            }
        ));
    }

    #[test]
    fn parses_copath() {
        let c = parse_check("let r1:NIC, r2:NIC, r3:VPC in copath(r1 -> r3, r2 -> r3) => r1.location == r2.location").unwrap();
        assert!(matches!(c.cond, Expr::CoPath { .. }));
    }

    #[test]
    fn display_roundtrips() {
        for src in [
            "let r:VM in r.priority == 'Spot' => r.eviction_policy != null",
            "let r1:VM, r2:NIC in conn(r1.network_interface_ids -> r2.id) => r1.location == r2.location",
            "let r1:GW, r2:SUBNET in conn(r1.ip_configuration.subnet_id -> r2.id) => outdegree(r2, !GW) == 0",
            "let r1:SUBNET, r2:SUBNET, r3:VPC in coconn(r1.virtual_network_name -> r3.name, r2.virtual_network_name -> r3.name) => !overlap(r1.address_prefixes, r2.address_prefixes)",
            "let r:SA in r.account_tier == 'Premium' => r.account_replication_type != 'GZRS'",
        ] {
            let c = parse_check(src).unwrap();
            let rendered = c.to_string();
            let again = parse_check(&rendered).unwrap();
            assert_eq!(c, again, "roundtrip failed for: {src} -> {rendered}");
        }
    }

    #[test]
    fn rejects_unbound_variable() {
        let err = parse_check("let r:VM in r.priority == 'Spot' => q.x != null").unwrap_err();
        assert!(err.0.contains("unbound"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_check("not a check").is_err());
        assert!(parse_check("let r:VM in r.a == ").is_err());
        assert!(parse_check("let r:VM in r.a == 'x' => r.b == 'y' extra").is_err());
    }

    #[test]
    fn parses_full_type_names() {
        let c = parse_check(
            "let r:azurerm_storage_account in r.account_tier == 'Premium' => r.access_tier == 'Hot'",
        )
        .unwrap();
        assert_eq!(c.bindings[0].rtype, "azurerm_storage_account");
    }

    #[test]
    fn parses_length_and_bools() {
        let c =
            parse_check("let r:GW in r.active_active == true => length(r.ip_configuration) >= 2")
                .unwrap();
        assert!(matches!(
            &c.stmt,
            Expr::Cmp {
                lhs: Val::Length(_),
                op: CmpOp::Ge,
                ..
            }
        ));
    }
}
