//! The Zodiac semantic-check specification language (§3.2, Figure 4).
//!
//! A semantic check is `let r₁:t₁, …, rₙ:tₙ in exp₁ ⇒ exp₂`: universally
//! quantified over bindings of the declared resource variables, whenever the
//! condition expression holds the statement expression must hold too.
//! Expressions combine **topological** predicates over the resource graph
//! (`conn`, `path`, `coconn`, `copath`), **aggregation** values
//! (`indegree`, `outdegree`), and comparisons over attribute endpoints
//! (`==`, `!=`, `<=`, `>=`, `<`, `>`, `overlap`, `contain`, `length`).
//!
//! # Examples
//!
//! ```
//! use zodiac_spec::parse_check;
//! let check = parse_check(
//!     "let r1:VM, r2:NIC in \
//!      conn(r1.network_interface_ids -> r2.id) => r1.location == r2.location",
//! )
//! .unwrap();
//! assert_eq!(check.bindings.len(), 2);
//! ```

pub mod ast;
pub mod build;
pub mod eval;
pub mod parser;
#[cfg(feature = "test-hooks")]
pub mod test_hooks;

pub use ast::{check_set_key, Binding, Check, CmpOp, Expr, ShapeCategory, TypeSpec, Val};
pub use eval::{holds, instances, violations, witnesses, EvalContext, Instance};
pub use parser::{parse_check, ParseError};
