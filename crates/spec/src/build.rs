//! Builder API for constructing checks as typed IR.
//!
//! Mining and every later pipeline stage build [`Check`] values with these
//! functions instead of formatting spec text and re-parsing it. The builders
//! do the same normalisation the parser does — resource types are widened to
//! full provider names via [`zodiac_kb::long_name`] — so a check built from
//! a short alias (`"VM"`) is structurally equal to one built from the full
//! name or parsed from text, and two equal checks always print identically.
//!
//! ```
//! use zodiac_spec::build::*;
//! use zodiac_spec::parse_check;
//!
//! let built = check(
//!     [binding("r", "SA")],
//!     eq(endpoint("r", "account_tier"), lit("Premium")),
//!     ne(endpoint("r", "account_replication_type"), lit("GZRS")),
//! );
//! let parsed = parse_check(
//!     "let r:SA in r.account_tier == 'Premium' => r.account_replication_type != 'GZRS'",
//! )
//! .unwrap();
//! assert_eq!(built, parsed);
//! ```

use crate::ast::{Binding, Check, CmpOp, Expr, TypeSpec, Val};
use zodiac_kb::long_name;
use zodiac_model::{Symbol, Value};

/// Builds a check from bindings, condition, and statement.
pub fn check(bindings: impl IntoIterator<Item = Binding>, cond: Expr, stmt: Expr) -> Check {
    Check {
        bindings: bindings.into_iter().collect(),
        cond,
        stmt,
    }
}

/// Binds `var` to a resource type; accepts short aliases or full names.
pub fn binding(var: impl Into<Symbol>, rtype: impl AsRef<str>) -> Binding {
    Binding {
        var: var.into(),
        rtype: Symbol::intern(long_name(rtype.as_ref())),
    }
}

/// Type specifier matching exactly `rtype` (short alias or full name).
pub fn is_type(rtype: impl AsRef<str>) -> TypeSpec {
    TypeSpec::Is(Symbol::intern(long_name(rtype.as_ref())))
}

/// Type specifier matching everything but `rtype`.
pub fn not_type(rtype: impl AsRef<str>) -> TypeSpec {
    TypeSpec::Not(Symbol::intern(long_name(rtype.as_ref())))
}

/// A literal value term.
pub fn lit(v: impl Into<Value>) -> Val {
    Val::Lit(v.into())
}

/// The `null` literal.
pub fn null() -> Val {
    Val::Lit(Value::Null)
}

/// An attribute endpoint `var.attr`.
pub fn endpoint(var: impl Into<Symbol>, attr: impl Into<Symbol>) -> Val {
    Val::Endpoint {
        var: var.into(),
        attr: attr.into(),
    }
}

/// `indegree(var, tau)`.
pub fn indegree(var: impl Into<Symbol>, tau: TypeSpec) -> Val {
    Val::InDegree {
        var: var.into(),
        tau,
    }
}

/// `outdegree(var, tau)`.
pub fn outdegree(var: impl Into<Symbol>, tau: TypeSpec) -> Val {
    Val::OutDegree {
        var: var.into(),
        tau,
    }
}

/// `length(inner)`.
pub fn length(inner: Val) -> Val {
    Val::Length(Box::new(inner))
}

/// A comparison with an explicit operator.
pub fn cmp(op: CmpOp, lhs: Val, rhs: Val) -> Expr {
    Expr::Cmp {
        op,
        lhs,
        rhs,
        negated: false,
    }
}

/// `lhs == rhs`.
pub fn eq(lhs: Val, rhs: Val) -> Expr {
    cmp(CmpOp::Eq, lhs, rhs)
}

/// `lhs != rhs`.
pub fn ne(lhs: Val, rhs: Val) -> Expr {
    cmp(CmpOp::Ne, lhs, rhs)
}

/// `lhs <= rhs`.
pub fn le(lhs: Val, rhs: Val) -> Expr {
    cmp(CmpOp::Le, lhs, rhs)
}

/// `lhs >= rhs`.
pub fn ge(lhs: Val, rhs: Val) -> Expr {
    cmp(CmpOp::Ge, lhs, rhs)
}

/// `overlap(lhs, rhs)`.
pub fn overlap(lhs: Val, rhs: Val) -> Expr {
    cmp(CmpOp::Overlap, lhs, rhs)
}

/// `contain(lhs, rhs)`.
pub fn contain(lhs: Val, rhs: Val) -> Expr {
    cmp(CmpOp::Contain, lhs, rhs)
}

/// Negates a comparison (`!overlap(...)`, `!(a == b)`).
pub fn negate(e: Expr) -> Expr {
    match e {
        Expr::Cmp { op, lhs, rhs, .. } => Expr::Cmp {
            op,
            lhs,
            rhs,
            negated: true,
        },
        other => other,
    }
}

/// A `conn(src.in_endpoint -> dst.out_attr)` edge.
pub fn conn(
    src: impl Into<Symbol>,
    in_endpoint: impl Into<Symbol>,
    dst: impl Into<Symbol>,
    out_attr: impl Into<Symbol>,
) -> Expr {
    Expr::Conn {
        src: src.into(),
        in_endpoint: in_endpoint.into(),
        dst: dst.into(),
        out_attr: out_attr.into(),
    }
}

/// A `path(src -> dst)` reachability edge.
pub fn path(src: impl Into<Symbol>, dst: impl Into<Symbol>) -> Expr {
    Expr::Path {
        src: src.into(),
        dst: dst.into(),
    }
}

/// `coconn(first, second)` — both edges exist.
pub fn coconn(first: Expr, second: Expr) -> Expr {
    Expr::CoConn {
        first: Box::new(first),
        second: Box::new(second),
    }
}

/// `copath(first, second)` — both paths exist.
pub fn copath(first: Expr, second: Expr) -> Expr {
    Expr::CoPath {
        first: Box::new(first),
        second: Box::new(second),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_check;

    #[test]
    fn builders_match_parser_output() {
        let built = check(
            [binding("r1", "VM"), binding("r2", "NIC")],
            conn("r1", "network_interface_ids", "r2", "id"),
            eq(endpoint("r1", "location"), endpoint("r2", "location")),
        );
        let parsed = parse_check(
            "let r1:VM, r2:NIC in conn(r1.network_interface_ids -> r2.id) => r1.location == r2.location",
        )
        .unwrap();
        assert_eq!(built, parsed);
        assert_eq!(built.to_string(), parsed.to_string());
    }

    #[test]
    fn short_and_long_type_names_build_equal_checks() {
        let short = binding("r", "VM");
        let long = binding("r", "azurerm_linux_virtual_machine");
        assert_eq!(short, long);
        assert_eq!(is_type("VM"), is_type("azurerm_linux_virtual_machine"));
    }

    #[test]
    fn degree_builders_round_trip() {
        let built = check(
            [binding("r1", "GW"), binding("r2", "SUBNET")],
            conn("r1", "ip_configuration.subnet_id", "r2", "id"),
            eq(indegree("r2", not_type("GW")), lit(0)),
        );
        let parsed = parse_check(
            "let r1:GW, r2:SUBNET in conn(r1.ip_configuration.subnet_id -> r2.id) => indegree(r2, !GW) == 0",
        )
        .unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn negate_flips_cmp_only() {
        let e = negate(overlap(
            endpoint("r1", "address_prefixes"),
            endpoint("r2", "address_prefixes"),
        ));
        assert!(matches!(e, Expr::Cmp { negated: true, .. }));
        let c = negate(conn("r1", "a", "r2", "b"));
        assert!(matches!(c, Expr::Conn { .. }));
    }
}
