//! Runtime-toggleable fault hooks for mutation-testing the test suite.
//!
//! Only compiled under the `test-hooks` cargo feature, and every hook
//! defaults to *off*, so enabling the feature alone never changes
//! behaviour. The testkit flips a hook on to reintroduce a historical bug
//! and asserts that its differential oracle catches it — a sanity check
//! that the fuzzer has teeth (a fuzzer that passes with a known bug
//! reinstated is worthless).
//!
//! Hooks are process-global atomics: a test that enables one must run in
//! its own integration-test binary (its own process) so parallel tests in
//! the same binary are not poisoned.

use std::sync::atomic::{AtomicBool, Ordering};

/// When set, [`crate::ast`]'s printer skips backslash-escaping of `'` and
/// `\` in string literals — the exact bug fixed in the check-IR refactor,
/// where quoted values printed as invalid spec text and died in re-parsing.
static DISABLE_LITERAL_ESCAPING: AtomicBool = AtomicBool::new(false);

/// Enables or disables the literal-escaping bug. Returns the previous
/// state so tests can restore it.
pub fn set_disable_literal_escaping(on: bool) -> bool {
    DISABLE_LITERAL_ESCAPING.swap(on, Ordering::SeqCst)
}

/// True when the literal-escaping bug is active.
pub fn literal_escaping_disabled() -> bool {
    DISABLE_LITERAL_ESCAPING.load(Ordering::SeqCst)
}
