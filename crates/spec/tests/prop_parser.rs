//! Property-based test: every syntactically valid check AST renders to text
//! that parses back to the same AST.

use proptest::prelude::*;
use zodiac_spec::{parse_check, Binding, Check, CmpOp, Expr, TypeSpec, Val};
use zodiac_model::Value;

fn arb_type() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("azurerm_linux_virtual_machine".to_string()),
        Just("azurerm_network_interface".to_string()),
        Just("azurerm_subnet".to_string()),
        Just("azurerm_virtual_network".to_string()),
        Just("azurerm_storage_account".to_string()),
        "azurerm_[a-z]{3,10}".prop_map(|s| s),
    ]
}

fn arb_attr() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-z][a-z_]{0,10}",
        ("[a-z][a-z_]{0,8}", "[a-z][a-z_]{0,8}").prop_map(|(a, b)| format!("{a}.{b}")),
    ]
    .prop_filter("reserved words break parsing", |s| {
        !s.split('.').any(|seg| {
            matches!(
                seg,
                "in" | "let" | "conn" | "path" | "coconn" | "copath" | "overlap" | "contain"
                    | "length" | "indegree" | "outdegree" | "null" | "true" | "false"
            )
        })
    })
}

fn arb_lit() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1000i64..100000).prop_map(Value::Int),
        "[a-zA-Z0-9_./*-]{0,12}".prop_map(Value::s),
    ]
}

fn var(i: usize) -> String {
    format!("r{}", i + 1)
}

fn arb_val(nvars: usize) -> BoxedStrategy<Val> {
    let v = 0..nvars;
    prop_oneof![
        arb_lit().prop_map(Val::Lit),
        (v.clone(), arb_attr()).prop_map(|(i, attr)| Val::Endpoint { var: var(i), attr }),
        (v.clone(), arb_type(), any::<bool>()).prop_map(|(i, t, neg)| Val::InDegree {
            var: var(i),
            tau: if neg { TypeSpec::Not(t) } else { TypeSpec::Is(t) },
        }),
        (v.clone(), arb_type(), any::<bool>()).prop_map(|(i, t, neg)| Val::OutDegree {
            var: var(i),
            tau: if neg { TypeSpec::Not(t) } else { TypeSpec::Is(t) },
        }),
        (v, arb_attr()).prop_map(|(i, attr)| Val::Length(Box::new(Val::Endpoint {
            var: var(i),
            attr,
        }))),
    ]
    .boxed()
}

fn arb_cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Le),
        Just(CmpOp::Ge),
        Just(CmpOp::Lt),
        Just(CmpOp::Gt),
        Just(CmpOp::Overlap),
        Just(CmpOp::Contain),
    ]
}

fn arb_conn(nvars: usize) -> BoxedStrategy<Expr> {
    (0..nvars, arb_attr(), 0..nvars, arb_attr()).prop_map(|(s, i, d, o)| Expr::Conn {
        src: var(s),
        in_endpoint: i,
        dst: var(d),
        out_attr: o,
    })
    .boxed()
}

fn arb_expr(nvars: usize) -> BoxedStrategy<Expr> {
    prop_oneof![
        arb_conn(nvars),
        (0..nvars, 0..nvars).prop_map(|(s, d)| Expr::Path {
            src: var(s),
            dst: var(d)
        }),
        (arb_conn(nvars), arb_conn(nvars)).prop_map(|(a, b)| Expr::CoConn {
            first: Box::new(a),
            second: Box::new(b)
        }),
        (0..nvars, 0..nvars, 0..nvars, 0..nvars).prop_map(|(a, b, c, d)| Expr::CoPath {
            first: Box::new(Expr::Path { src: var(a), dst: var(b) }),
            second: Box::new(Expr::Path { src: var(c), dst: var(d) }),
        }),
        (arb_cmp_op(), arb_val(nvars), arb_val(nvars), any::<bool>()).prop_map(
            |(op, lhs, rhs, negated)| {
                // The grammar only negates function-style comparisons; infix
                // comparisons express negation through the operator itself.
                let negated = negated && matches!(op, CmpOp::Overlap | CmpOp::Contain);
                Expr::Cmp { op, lhs, rhs, negated }
            }
        ),
    ]
    .boxed()
}

fn arb_check() -> impl Strategy<Value = Check> {
    (1usize..=3)
        .prop_flat_map(|nvars| {
            (
                prop::collection::vec(arb_type(), nvars..=nvars),
                arb_expr(nvars),
                arb_expr(nvars),
            )
        })
        .prop_map(|(types, cond, stmt)| Check {
            bindings: types
                .into_iter()
                .enumerate()
                .map(|(i, rtype)| Binding { var: var(i), rtype })
                .collect(),
            cond,
            stmt,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn display_parse_roundtrip(check in arb_check()) {
        let text = check.to_string();
        let parsed = parse_check(&text)
            .unwrap_or_else(|e| panic!("rendered check must parse: {e}\n{text}"));
        prop_assert_eq!(parsed, check, "text: {}", text);
    }
}
