//! Property-based tests over the check IR: every syntactically valid check
//! AST renders to text that parses back to the same AST, and the printed
//! form is *canonical* — two structurally equal checks print identically,
//! however they were constructed (builders, struct literals, short or full
//! type names, or a parse of the printed text). Checks come from a seeded
//! RNG so every run replays the same sample.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zodiac_model::{Symbol, Value};
use zodiac_spec::{parse_check, Binding, Check, CmpOp, Expr, TypeSpec, Val};

fn arb_type(rng: &mut StdRng) -> Symbol {
    let name = match rng.gen_range(0..6u8) {
        0 => "azurerm_linux_virtual_machine".to_string(),
        1 => "azurerm_network_interface".to_string(),
        2 => "azurerm_subnet".to_string(),
        3 => "azurerm_virtual_network".to_string(),
        4 => "azurerm_storage_account".to_string(),
        _ => {
            let len = rng.gen_range(3..=10usize);
            let tail: String = (0..len)
                .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
                .collect();
            format!("azurerm_{tail}")
        }
    };
    Symbol::intern(&name)
}

fn reserved(seg: &str) -> bool {
    matches!(
        seg,
        "in" | "let"
            | "conn"
            | "path"
            | "coconn"
            | "copath"
            | "overlap"
            | "contain"
            | "length"
            | "indegree"
            | "outdegree"
            | "null"
            | "true"
            | "false"
    )
}

fn attr_segment(rng: &mut StdRng, max_tail: usize) -> String {
    loop {
        let len = rng.gen_range(1..=max_tail + 1);
        let mut s = String::with_capacity(len);
        s.push((b'a' + rng.gen_range(0..26u8)) as char);
        for _ in 1..len {
            const TAIL: &[u8] = b"abcdefghijklmnopqrstuvwxyz_";
            s.push(TAIL[rng.gen_range(0..TAIL.len())] as char);
        }
        if !reserved(&s) {
            return s;
        }
    }
}

fn arb_attr(rng: &mut StdRng) -> Symbol {
    let attr = if rng.gen_bool(0.5) {
        attr_segment(rng, 10)
    } else {
        format!("{}.{}", attr_segment(rng, 8), attr_segment(rng, 8))
    };
    Symbol::intern(&attr)
}

fn arb_lit(rng: &mut StdRng) -> Value {
    match rng.gen_range(0..4u8) {
        0 => Value::Null,
        1 => Value::Bool(rng.gen_bool(0.5)),
        2 => Value::Int(rng.gen_range(-1000i64..100000)),
        _ => {
            // Includes the quote and backslash so string literals exercise
            // the printer's escaping and the tokenizer's escape handling.
            const CHARS: &[u8] =
                b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_./*-'\\\" ";
            let len = rng.gen_range(0..=12usize);
            let s: String = (0..len)
                .map(|_| CHARS[rng.gen_range(0..CHARS.len())] as char)
                .collect();
            Value::s(s)
        }
    }
}

fn var(i: usize) -> Symbol {
    Symbol::intern(&format!("r{}", i + 1))
}

fn arb_tau(rng: &mut StdRng) -> TypeSpec {
    let t = arb_type(rng);
    if rng.gen_bool(0.5) {
        TypeSpec::Not(t)
    } else {
        TypeSpec::Is(t)
    }
}

fn arb_val(rng: &mut StdRng, nvars: usize) -> Val {
    match rng.gen_range(0..5u8) {
        0 => Val::Lit(arb_lit(rng)),
        1 => Val::Endpoint {
            var: var(rng.gen_range(0..nvars)),
            attr: arb_attr(rng),
        },
        2 => Val::InDegree {
            var: var(rng.gen_range(0..nvars)),
            tau: arb_tau(rng),
        },
        3 => Val::OutDegree {
            var: var(rng.gen_range(0..nvars)),
            tau: arb_tau(rng),
        },
        _ => Val::Length(Box::new(Val::Endpoint {
            var: var(rng.gen_range(0..nvars)),
            attr: arb_attr(rng),
        })),
    }
}

fn arb_cmp_op(rng: &mut StdRng) -> CmpOp {
    match rng.gen_range(0..8u8) {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Le,
        3 => CmpOp::Ge,
        4 => CmpOp::Lt,
        5 => CmpOp::Gt,
        6 => CmpOp::Overlap,
        _ => CmpOp::Contain,
    }
}

fn arb_conn(rng: &mut StdRng, nvars: usize) -> Expr {
    Expr::Conn {
        src: var(rng.gen_range(0..nvars)),
        in_endpoint: arb_attr(rng),
        dst: var(rng.gen_range(0..nvars)),
        out_attr: arb_attr(rng),
    }
}

fn arb_expr(rng: &mut StdRng, nvars: usize) -> Expr {
    match rng.gen_range(0..5u8) {
        0 => arb_conn(rng, nvars),
        1 => Expr::Path {
            src: var(rng.gen_range(0..nvars)),
            dst: var(rng.gen_range(0..nvars)),
        },
        2 => Expr::CoConn {
            first: Box::new(arb_conn(rng, nvars)),
            second: Box::new(arb_conn(rng, nvars)),
        },
        3 => Expr::CoPath {
            first: Box::new(Expr::Path {
                src: var(rng.gen_range(0..nvars)),
                dst: var(rng.gen_range(0..nvars)),
            }),
            second: Box::new(Expr::Path {
                src: var(rng.gen_range(0..nvars)),
                dst: var(rng.gen_range(0..nvars)),
            }),
        },
        _ => {
            let op = arb_cmp_op(rng);
            // The grammar only negates function-style comparisons; infix
            // comparisons express negation through the operator itself.
            let negated = rng.gen_bool(0.5) && matches!(op, CmpOp::Overlap | CmpOp::Contain);
            Expr::Cmp {
                op,
                lhs: arb_val(rng, nvars),
                rhs: arb_val(rng, nvars),
                negated,
            }
        }
    }
}

fn arb_check(rng: &mut StdRng) -> Check {
    let nvars = rng.gen_range(1..=3usize);
    Check {
        bindings: (0..nvars)
            .map(|i| Binding {
                var: var(i),
                rtype: arb_type(rng),
            })
            .collect(),
        cond: arb_expr(rng, nvars),
        stmt: arb_expr(rng, nvars),
    }
}

#[test]
fn display_parse_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x5bec_0001);
    for case in 0..256 {
        let check = arb_check(&mut rng);
        let text = check.to_string();
        let parsed = parse_check(&text)
            .unwrap_or_else(|e| panic!("case {case}: rendered check must parse: {e}\n{text}"));
        assert_eq!(parsed, check, "case {case}: text: {text}");
    }
}

#[test]
fn printing_is_canonical() {
    // Structural equality must imply identical printed text: a deep clone, a
    // parse of the printed form, and an independently built equal check all
    // render byte-for-byte the same.
    let mut rng = StdRng::seed_from_u64(0x5bec_0002);
    for case in 0..128 {
        let check = arb_check(&mut rng);
        let text = check.to_string();

        let cloned = check.clone();
        assert_eq!(
            cloned.to_string(),
            text,
            "case {case}: clone must print equal"
        );

        if let Ok(parsed) = parse_check(&text) {
            assert_eq!(parsed, check, "case {case}");
            assert_eq!(
                parsed.to_string(),
                text,
                "case {case}: reparse must print identically"
            );
        }
    }
}

#[test]
fn short_alias_and_full_name_print_identically() {
    use zodiac_spec::build::{binding, check, endpoint, eq, lit};
    let via_alias = check(
        [binding("r", "VM")],
        eq(endpoint("r", "priority"), lit("Spot")),
        eq(endpoint("r", "eviction_policy"), lit("Deallocate")),
    );
    let via_full = check(
        [binding("r", "azurerm_linux_virtual_machine")],
        eq(endpoint("r", "priority"), lit("Spot")),
        eq(endpoint("r", "eviction_policy"), lit("Deallocate")),
    );
    assert_eq!(via_alias, via_full);
    assert_eq!(via_alias.to_string(), via_full.to_string());
}

#[test]
fn hashes_agree_with_equality() {
    use std::collections::HashSet;
    let mut rng = StdRng::seed_from_u64(0x5bec_0003);
    let mut set: HashSet<Check> = HashSet::new();
    let mut checks = Vec::new();
    for _ in 0..64 {
        let c = arb_check(&mut rng);
        set.insert(c.clone());
        checks.push(c);
    }
    for c in &checks {
        assert!(set.contains(c), "equal checks must hash equal: {c}");
    }
}
