//! Deployment partial order over the resource graph.
//!
//! A resource that references another must be deployed *after* it: Terraform
//! creates `azurerm_virtual_network` before the `azurerm_subnet` that names
//! it. The same order gives the validation scheduler its *evaluation partial
//! order* (§4.2, O4): checks anchored on resources deployed earlier are
//! evaluated first, which breaks reasoning loops among inter-resource checks.

use crate::{NodeIdx, ResourceGraph};
use std::collections::HashSet;
use std::fmt;

/// Errors from order computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrderError {
    /// The reference graph contains a cycle through the listed nodes.
    Cycle(Vec<NodeIdx>),
}

impl fmt::Display for OrderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrderError::Cycle(nodes) => write!(f, "dependency cycle through nodes {nodes:?}"),
        }
    }
}

impl std::error::Error for OrderError {}

/// Computes a deployment order: every resource appears after all resources
/// it references. Ties are broken by declaration order, making the result
/// deterministic.
pub fn deploy_order(graph: &ResourceGraph) -> Result<Vec<NodeIdx>, OrderError> {
    let n = graph.len();
    // depends_on[i] = number of outgoing edges whose target is not yet placed.
    let mut remaining: Vec<usize> = (0..n)
        .map(|i| {
            let mut targets: Vec<NodeIdx> = graph.out_edges(i).map(|e| e.dst).collect();
            targets.sort_unstable();
            targets.dedup();
            targets.iter().filter(|&&t| t != i).count()
        })
        .collect();
    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    loop {
        let mut advanced = false;
        for i in 0..n {
            if !placed[i] && remaining[i] == 0 {
                placed[i] = true;
                order.push(i);
                advanced = true;
                // Unblock nodes that reference i.
                for e in graph.in_edges(i) {
                    if e.src != i && !placed[e.src] {
                        // Recount distinct unplaced targets of e.src lazily.
                        let mut targets: Vec<NodeIdx> =
                            graph.out_edges(e.src).map(|x| x.dst).collect();
                        targets.sort_unstable();
                        targets.dedup();
                        remaining[e.src] = targets
                            .iter()
                            .filter(|&&t| t != e.src && !placed[t])
                            .count();
                    }
                }
            }
        }
        if order.len() == n {
            return Ok(order);
        }
        if !advanced {
            let cycle: Vec<NodeIdx> = (0..n).filter(|&i| !placed[i]).collect();
            return Err(OrderError::Cycle(cycle));
        }
    }
}

/// All nodes reachable from `start` following edge direction — the resources
/// `start` (transitively) depends on, *excluding* `start` itself.
pub fn ancestors(graph: &ResourceGraph, start: NodeIdx) -> HashSet<NodeIdx> {
    let mut out = HashSet::new();
    let mut stack: Vec<NodeIdx> = graph.out_edges(start).map(|e| e.dst).collect();
    while let Some(cur) = stack.pop() {
        if out.insert(cur) {
            stack.extend(graph.out_edges(cur).map(|e| e.dst));
        }
    }
    out.remove(&start);
    out
}

/// All nodes that (transitively) reference `start`, excluding `start` —
/// the resources that must be destroyed/recreated if `start` is recreated.
pub fn descendants(graph: &ResourceGraph, start: NodeIdx) -> HashSet<NodeIdx> {
    let mut out = HashSet::new();
    let mut stack: Vec<NodeIdx> = graph.in_edges(start).map(|e| e.src).collect();
    while let Some(cur) = stack.pop() {
        if out.insert(cur) {
            stack.extend(graph.in_edges(cur).map(|e| e.src));
        }
    }
    out.remove(&start);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use zodiac_model::{Program, Resource, ResourceId, Value};

    fn chain() -> ResourceGraph {
        // vm → nic → subnet → vnet
        let p = Program::new()
            .with(Resource::new("azurerm_virtual_machine", "vm").with(
                "network_interface_ids",
                Value::List(vec![Value::r("azurerm_network_interface", "nic", "id")]),
            ))
            .with(
                Resource::new("azurerm_network_interface", "nic")
                    .with("subnet_id", Value::r("azurerm_subnet", "s", "id")),
            )
            .with(Resource::new("azurerm_subnet", "s").with(
                "virtual_network_name",
                Value::r("azurerm_virtual_network", "vnet", "name"),
            ))
            .with(Resource::new("azurerm_virtual_network", "vnet"));
        ResourceGraph::build(p)
    }

    #[test]
    fn deploy_order_respects_dependencies() {
        let g = chain();
        let order = deploy_order(&g).unwrap();
        let pos = |t: &str, n: &str| {
            let idx = g.node(&ResourceId::new(t, n)).unwrap();
            order.iter().position(|&x| x == idx).unwrap()
        };
        assert!(pos("azurerm_virtual_network", "vnet") < pos("azurerm_subnet", "s"));
        assert!(pos("azurerm_subnet", "s") < pos("azurerm_network_interface", "nic"));
        assert!(pos("azurerm_network_interface", "nic") < pos("azurerm_virtual_machine", "vm"));
    }

    #[test]
    fn detects_cycles() {
        let p = Program::new()
            .with(Resource::new("a", "x").with("r", Value::r("b", "y", "id")))
            .with(Resource::new("b", "y").with("r", Value::r("a", "x", "id")));
        let g = ResourceGraph::build(p);
        assert!(matches!(deploy_order(&g), Err(OrderError::Cycle(_))));
    }

    #[test]
    fn ancestors_and_descendants() {
        let g = chain();
        let vm = g
            .node(&ResourceId::new("azurerm_virtual_machine", "vm"))
            .unwrap();
        let vnet = g
            .node(&ResourceId::new("azurerm_virtual_network", "vnet"))
            .unwrap();
        assert_eq!(ancestors(&g, vm).len(), 3);
        assert!(ancestors(&g, vm).contains(&vnet));
        assert!(ancestors(&g, vnet).is_empty());
        assert_eq!(descendants(&g, vnet).len(), 3);
        assert!(descendants(&g, vnet).contains(&vm));
        assert!(descendants(&g, vm).is_empty());
    }

    #[test]
    fn self_reference_does_not_deadlock() {
        let p = Program::new().with(Resource::new("azurerm_managed_disk", "a").with(
            "source_resource_id",
            Value::r("azurerm_managed_disk", "a", "id"),
        ));
        let g = ResourceGraph::build(p);
        assert!(deploy_order(&g).is_ok());
    }
}
