//! The IaC resource graph and its topological queries.
//!
//! Semantic checks are "assertions over a graph, where nodes represent cloud
//! resources and edges represent resource-level composition" (§3.2). This
//! crate builds that graph from a compiled [`Program`]: every
//! [`zodiac_model::Value::Ref`] inside a resource's attributes becomes a
//! directed edge from the referencing resource (its *inbound endpoint*) to
//! the referenced resource (its *outbound endpoint*).
//!
//! On top of the graph it implements the query primitives of the check
//! language — `conn`, `path`, `coconn`, `copath`, `indegree`, `outdegree` —
//! plus the *deployment partial order* (§4.2) used by both the cloud
//! simulator and the validation scheduler.

mod order;

pub use order::{ancestors, deploy_order, descendants, OrderError};

use zodiac_model::{AttrPath, Program, Reference, Resource, ResourceId};

/// Index of a resource node within a [`ResourceGraph`].
pub type NodeIdx = usize;

/// A directed edge: `src`'s attribute (`in_path`) references `dst`'s
/// attribute (`out_attr`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// Referencing resource (the edge tail).
    pub src: NodeIdx,
    /// Referenced resource (the edge head).
    pub dst: NodeIdx,
    /// Exact attribute path in `src` where the reference occurs,
    /// e.g. `ip_configuration.0.subnet_id`.
    pub in_path: AttrPath,
    /// Normalised inbound endpoint name: `in_path` with list indices
    /// stripped, e.g. `ip_configuration.subnet_id`.
    pub in_endpoint: String,
    /// Outbound endpoint attribute on `dst`, e.g. `id`.
    pub out_attr: String,
}

/// A resource graph over a compiled program.
///
/// The graph borrows nothing: it indexes into the program passed to
/// [`ResourceGraph::build`], which it stores by value, so it can outlive the
/// original.
#[derive(Debug, Clone)]
pub struct ResourceGraph {
    program: Program,
    edges: Vec<Edge>,
    /// Outgoing edge indices per node.
    out_adj: Vec<Vec<usize>>,
    /// Incoming edge indices per node.
    in_adj: Vec<Vec<usize>>,
}

/// Normalises an attribute path into an endpoint name by dropping numeric
/// (list-index) segments: `nic_ids.0` → `nic_ids`,
/// `ip_configuration.0.subnet_id` → `ip_configuration.subnet_id`.
pub fn endpoint_name(path: &AttrPath) -> String {
    path.0
        .iter()
        .filter(|seg| seg.parse::<usize>().is_err())
        .cloned()
        .collect::<Vec<_>>()
        .join(".")
}

impl ResourceGraph {
    /// Builds the graph for a program.
    ///
    /// References to resources not present in the program (dangling
    /// references) produce no edge; the cloud simulator reports them
    /// separately as deploy-time "not found" failures.
    pub fn build(program: Program) -> Self {
        let n = program.len();
        let mut edges = Vec::new();
        let mut out_adj = vec![Vec::new(); n];
        let mut in_adj = vec![Vec::new(); n];
        for (src, r) in program.resources().iter().enumerate() {
            for (path, reference) in r.references() {
                if let Some(dst) = program
                    .resources()
                    .iter()
                    .position(|t| t.rtype == reference.rtype && t.name == reference.name)
                {
                    let e = Edge {
                        src,
                        dst,
                        in_endpoint: endpoint_name(&path),
                        in_path: path,
                        out_attr: reference.attr.clone(),
                    };
                    out_adj[src].push(edges.len());
                    in_adj[dst].push(edges.len());
                    edges.push(e);
                }
            }
        }
        ResourceGraph {
            program,
            edges,
            out_adj,
            in_adj,
        }
    }

    /// The underlying program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Number of resource nodes.
    pub fn len(&self) -> usize {
        self.program.len()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.program.is_empty()
    }

    /// The resource at a node index.
    pub fn resource(&self, idx: NodeIdx) -> &Resource {
        &self.program.resources()[idx]
    }

    /// Finds the node index of a resource id.
    pub fn node(&self, id: &ResourceId) -> Option<NodeIdx> {
        self.program
            .resources()
            .iter()
            .position(|r| r.rtype == id.rtype && r.name == id.name)
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Outgoing edges of a node.
    pub fn out_edges(&self, idx: NodeIdx) -> impl Iterator<Item = &Edge> + '_ {
        self.out_adj[idx].iter().map(move |&e| &self.edges[e])
    }

    /// Incoming edges of a node.
    pub fn in_edges(&self, idx: NodeIdx) -> impl Iterator<Item = &Edge> + '_ {
        self.in_adj[idx].iter().map(move |&e| &self.edges[e])
    }

    /// Node indices of all resources of a given type.
    pub fn nodes_of_type<'a>(&'a self, rtype: &'a str) -> impl Iterator<Item = NodeIdx> + 'a {
        self.program
            .resources()
            .iter()
            .enumerate()
            .filter(move |(_, r)| r.rtype == rtype)
            .map(|(i, _)| i)
    }

    /// **conn**(r1.in → r2.out): true if `src` has an edge to `dst` whose
    /// endpoints match. `None` endpoint filters accept any endpoint.
    pub fn conn(
        &self,
        src: NodeIdx,
        in_endpoint: Option<&str>,
        dst: NodeIdx,
        out_attr: Option<&str>,
    ) -> bool {
        self.out_edges(src).any(|e| {
            e.dst == dst
                && in_endpoint.is_none_or(|ep| e.in_endpoint == ep)
                && out_attr.is_none_or(|oa| e.out_attr == oa)
        })
    }

    /// **path**(r1 → r2): true if `dst` is reachable from `src` following
    /// edge direction. A node is reachable from itself.
    pub fn path(&self, src: NodeIdx, dst: NodeIdx) -> bool {
        if src == dst {
            return true;
        }
        let mut seen = vec![false; self.len()];
        let mut stack = vec![src];
        seen[src] = true;
        while let Some(cur) = stack.pop() {
            for e in self.out_edges(cur) {
                if e.dst == dst {
                    return true;
                }
                if !seen[e.dst] {
                    seen[e.dst] = true;
                    stack.push(e.dst);
                }
            }
        }
        false
    }

    /// **indegree**(r, τ): number of incoming edges whose source resource
    /// matches the type specifier (`type_name` with `negated == false`
    /// matches that type; `negated == true` matches every *other* type).
    pub fn indegree(&self, idx: NodeIdx, type_name: &str, negated: bool) -> usize {
        self.in_edges(idx)
            .filter(|e| (self.resource(e.src).rtype == type_name) != negated)
            .count()
    }

    /// **outdegree**(r, τ): number of outgoing edges whose destination
    /// resource matches the type specifier.
    ///
    /// Note the paper's convention in examples like "no other resource can
    /// share subnet with GW" uses outdegree of the *subnet* counted over
    /// incoming attachments; we follow the formal definition (outgoing
    /// edges), and the check compiler picks the right orientation.
    pub fn outdegree(&self, idx: NodeIdx, type_name: &str, negated: bool) -> usize {
        self.out_edges(idx)
            .filter(|e| (self.resource(e.dst).rtype == type_name) != negated)
            .count()
    }

    /// Distinct resources of matching type with an edge *into* `idx`.
    ///
    /// Used for degree checks phrased over attachments ("a NIC could only be
    /// attached to one VM" counts VMs, not edges).
    pub fn distinct_in_neighbors(&self, idx: NodeIdx, type_name: &str, negated: bool) -> usize {
        let mut srcs: Vec<NodeIdx> = self
            .in_edges(idx)
            .filter(|e| (self.resource(e.src).rtype == type_name) != negated)
            .map(|e| e.src)
            .collect();
        srcs.sort_unstable();
        srcs.dedup();
        srcs.len()
    }

    /// Distinct resources of matching type that `idx` has an edge *to*.
    pub fn distinct_out_neighbors(&self, idx: NodeIdx, type_name: &str, negated: bool) -> usize {
        let mut dsts: Vec<NodeIdx> = self
            .out_edges(idx)
            .filter(|e| (self.resource(e.dst).rtype == type_name) != negated)
            .map(|e| e.dst)
            .collect();
        dsts.sort_unstable();
        dsts.dedup();
        dsts.len()
    }

    /// Resolves a reference to a node index, if the target exists.
    pub fn resolve(&self, reference: &Reference) -> Option<NodeIdx> {
        self.node(&ResourceId::new(&reference.rtype, &reference.name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zodiac_model::Value;

    /// vnet ← subnet ← nic ← vm, plus a second nic on the same subnet.
    fn sample() -> ResourceGraph {
        let p = Program::new()
            .with(Resource::new("azurerm_virtual_network", "vnet").with("name", "v"))
            .with(Resource::new("azurerm_subnet", "s").with(
                "virtual_network_name",
                Value::r("azurerm_virtual_network", "vnet", "name"),
            ))
            .with(
                Resource::new("azurerm_network_interface", "nic1")
                    .with("subnet_id", Value::r("azurerm_subnet", "s", "id")),
            )
            .with(
                Resource::new("azurerm_network_interface", "nic2")
                    .with("subnet_id", Value::r("azurerm_subnet", "s", "id")),
            )
            .with(Resource::new("azurerm_virtual_machine", "vm").with(
                "network_interface_ids",
                Value::List(vec![Value::r("azurerm_network_interface", "nic1", "id")]),
            ));
        ResourceGraph::build(p)
    }

    #[test]
    fn builds_edges_with_endpoints() {
        let g = sample();
        assert_eq!(g.edges().len(), 4);
        let vm = g
            .node(&ResourceId::new("azurerm_virtual_machine", "vm"))
            .unwrap();
        let edge = g.out_edges(vm).next().unwrap();
        assert_eq!(edge.in_endpoint, "network_interface_ids");
        assert_eq!(edge.in_path.to_string(), "network_interface_ids.0");
        assert_eq!(edge.out_attr, "id");
    }

    #[test]
    fn conn_matches_endpoints() {
        let g = sample();
        let nic1 = g
            .node(&ResourceId::new("azurerm_network_interface", "nic1"))
            .unwrap();
        let s = g.node(&ResourceId::new("azurerm_subnet", "s")).unwrap();
        assert!(g.conn(nic1, Some("subnet_id"), s, Some("id")));
        assert!(g.conn(nic1, None, s, None));
        assert!(!g.conn(s, None, nic1, None));
        assert!(!g.conn(nic1, Some("wrong"), s, None));
    }

    #[test]
    fn path_is_transitive() {
        let g = sample();
        let vm = g
            .node(&ResourceId::new("azurerm_virtual_machine", "vm"))
            .unwrap();
        let vnet = g
            .node(&ResourceId::new("azurerm_virtual_network", "vnet"))
            .unwrap();
        assert!(g.path(vm, vnet));
        assert!(!g.path(vnet, vm));
        assert!(g.path(vm, vm));
    }

    #[test]
    fn degrees() {
        let g = sample();
        let s = g.node(&ResourceId::new("azurerm_subnet", "s")).unwrap();
        let nic1 = g
            .node(&ResourceId::new("azurerm_network_interface", "nic1"))
            .unwrap();
        assert_eq!(g.indegree(s, "azurerm_network_interface", false), 2);
        assert_eq!(g.indegree(s, "azurerm_network_interface", true), 0);
        assert_eq!(g.indegree(nic1, "azurerm_virtual_machine", false), 1);
        assert_eq!(g.outdegree(nic1, "azurerm_subnet", false), 1);
        assert_eq!(
            g.distinct_in_neighbors(s, "azurerm_network_interface", false),
            2
        );
    }

    #[test]
    fn dangling_references_produce_no_edge() {
        let p = Program::new().with(
            Resource::new("azurerm_network_interface", "nic")
                .with("subnet_id", Value::r("azurerm_subnet", "ghost", "id")),
        );
        let g = ResourceGraph::build(p);
        assert!(g.edges().is_empty());
    }

    #[test]
    fn endpoint_name_strips_indices() {
        let p: AttrPath = "ip_configuration.0.subnet_id".parse().unwrap();
        assert_eq!(endpoint_name(&p), "ip_configuration.subnet_id");
    }
}
